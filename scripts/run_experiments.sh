#!/usr/bin/env bash
# Regenerate every experiment in DESIGN.md §7 and store outputs under
# target/experiments/. EXPERIMENTS.md records a snapshot of these.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p target/experiments
experiments=(
  e1_qf_polytime e2_mon2sat_hardness e3_exact_fp_sharp_p e4_karp_luby
  e5_prob_kdnf e6_existential_fptras e7_four_colour e8_ptime_estimator
  e9_metafinite e10_crossover e11_positive_only e12_cq_planner
  e13_expression_complexity e14_serve_throughput e15_job_scheduler
  e16_fault_storm e17_store_scale e18_safe_plan
)
for e in "${experiments[@]}"; do
  echo "== $e =="
  cargo run --release -q -p qrel-bench --features experiments --bin "$e" \
    | tee "target/experiments/$e.txt"
  echo
done
