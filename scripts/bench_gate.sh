#!/usr/bin/env bash
# Emit fresh BENCH_<exp>.json reports from the perf-instrumented
# experiment bins and gate them against the baselines committed at the
# repo root. Exit 1 on any >threshold regression (see DESIGN.md §15).
#
# Usage: scripts/bench_gate.sh [out_dir] [threshold]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-target/bench-out}"
THRESHOLD="${2:-0.15}"
mkdir -p "$OUT"

for e in e3_exact_fp_sharp_p e5_prob_kdnf e10_crossover; do
  echo "== $e =="
  QREL_BENCH_DIR="$OUT" \
    cargo run --release -q -p qrel-bench --features experiments --bin "$e"
  echo
done

cargo run --release -q -p qrel-bench --bin bench_gate -- . "$OUT" "$THRESHOLD"
