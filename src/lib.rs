//! # qrel — The Complexity of Query Reliability
//!
//! A Rust implementation of the model and algorithms of
//!
//! > Erich Grädel, Yuri Gurevich, Colin Hirsch.
//! > *The Complexity of Query Reliability.* PODS 1998.
//!
//! An *unreliable database* `𝔇 = (𝔄, μ)` is an observed finite relational
//! structure `𝔄` plus an error probability `μ(Rā)` per atomic fact. It
//! induces a distribution `ν` over possible actual databases; the
//! *reliability* of a k-ary query `ψ` is
//! `R_ψ(𝔇) = 1 − E|ψ^𝔄 Δ ψ^𝔅| / n^k`.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`arith`] — exact big-integer / big-rational arithmetic;
//! * [`logic`] — FO/SO formulas, a query parser, propositional normal
//!   forms, threshold encodings, monotone 2-CNF;
//! * [`db`] — finite structures, fact indexing, stratified Datalog;
//! * [`eval`] — model checking, existential grounding, the [`eval::Query`] trait;
//! * [`prob`] — the `(𝔄, μ)` model, possible worlds, sampling, the `g` normalizer;
//! * [`count`] — exact #SAT / Prob-DNF oracles, Karp–Luby FPTRAS, sample bounds;
//! * [`core`] — the paper's reliability algorithms and hardness reductions;
//! * [`plan`] — the safe-plan compiler: hierarchical self-join-free
//!   queries answered exactly in PTIME over fact probabilities, never
//!   enumerating worlds;
//! * [`budget`] — cooperative work budgets, cancellation, [`budget::QrelError`];
//! * [`runtime`] — the budgeted [`runtime::Solver`] with the graceful
//!   degradation ladder;
//! * [`metafinite`] — functional databases with aggregates (Section 6);
//! * [`serve`] — the engine as a networked service: std-only HTTP/1.1
//!   with admission control, result caching, and Prometheus metrics.
//!
//! ## Quick example
//!
//! ```
//! use qrel::prelude::*;
//!
//! // An observed friendship graph with one dubious edge.
//! let db = DatabaseBuilder::new()
//!     .universe_names(["ann", "bob", "cal"])
//!     .relation("Friend", 2)
//!     .tuples("Friend", [vec![0, 1], vec![1, 2]])
//!     .build();
//! let mut ud = UnreliableDatabase::reliable(db);
//! ud.set_error(&Fact::new(0, vec![1, 2]), BigRational::from_ratio(1, 10))
//!     .unwrap();
//!
//! // ψ = "someone is friends with cal"
//! let q = FoQuery::parse("exists x. Friend(x, 'cal')").unwrap();
//! let report = exact_reliability(&ud, &q).unwrap();
//! assert_eq!(report.reliability, BigRational::from_ratio(9, 10));
//! ```

pub use qrel_arith as arith;
pub use qrel_budget as budget;
pub use qrel_core as core;
pub use qrel_count as count;
pub use qrel_db as db;
pub use qrel_eval as eval;
pub use qrel_logic as logic;
pub use qrel_metafinite as metafinite;
pub use qrel_oracle as oracle;
pub use qrel_plan as plan;
pub use qrel_prob as prob;
pub use qrel_runtime as runtime;
pub use qrel_serve as serve;
pub use qrel_store as store;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use qrel_arith::{BigInt, BigRational, BigUint};
    pub use qrel_core::{
        absolute::{find_unreliability_witness, is_absolutely_reliable},
        exact::{counting_certificate, exact_probability, exact_reliability},
        existential::{existential_probability_exact, existential_probability_fptras, Route},
        prob_dnf::ProbDnfReduction,
        ptime_estimator::{direct_probability, PaddingEstimator},
        quantifier_free::qf_reliability,
        reductions,
        reliability_approx::approximate_reliability,
    };
    pub use qrel_count::{count_mon2sat, dnf_probability_shannon, naive_mc_probability, KarpLuby};
    pub use qrel_db::{
        datalog::DatalogProgram, Database, DatabaseBuilder, Element, Fact, Relation, Universe,
    };
    pub use qrel_eval::{eval_sentence, ground_existential, DatalogQuery, FnQuery, FoQuery, Query};
    pub use qrel_logic::{
        mon2sat::Monotone2Sat, parser::parse_formula, Formula, Fragment, Term, Vocabulary,
    };
    pub use qrel_metafinite::{
        EntryDistribution, FunctionalDatabase, MTerm, MultisetOp, ROp, UnreliableFunctionalDatabase,
    };
    pub use qrel_plan::{compile as compile_plan, pairwise_hierarchical, Plan};
    pub use qrel_prob::{ErrorModel, UnreliableDatabase, WorldSampler};
    pub use qrel_runtime::{
        Budget, CancelToken, Confidence, Method, QrelError, Resource, SolveReport, Solver,
    };
}
