//! `qrel` — command-line interface for query reliability.
//!
//! ```text
//! qrel check       --db spec.json
//! qrel worlds      --db spec.json [--limit N]
//! qrel probability --db spec.json --query "exists x. S(x)"
//!                  [--method exact|fptras|padding] [--eps E] [--delta D] [--seed S]
//! qrel reliability --db spec.json --query "S(x)" [--free x,y]
//!                  [--method auto|plan|exact|qf|fptras|padding|mc]
//!                  [--timeout-ms T] [--max-worlds N] [--max-samples N] [--max-terms N]
//!                  [--eps E] [--delta D] [--seed S] [--threads T]
//! qrel explain     --query "exists x. S(x)" [--free x,y]
//! qrel serve       [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!                  [--cache-mb MB] [--preload spec.json,spec2.json]
//!                  [--store DIR]
//! qrel store       init    --dir DIR
//!                  ingest  --dir DIR --dataset NAME --db spec.json
//!                  dump    --dir DIR --dataset NAME
//!                  compact --dir DIR [--dataset NAME]
//! qrel fuzz        [--seeds N] [--budget-ms M] [--start-seed S]
//!                  [--eps E] [--delta D] [--corpus DIR] [--families f1,f2]
//!                  [--sample true|false] [--serve true|false]
//!                  [--chaos true|false] [--chaos-pairs N] [--chaos-timeout-ms T]
//! qrel example-spec
//! qrel version
//! ```
//!
//! The database spec format is documented in `qrel::prob::spec` (see
//! `qrel example-spec` for a starter file).
//!
//! Exit codes for `reliability`: `0` = the answer carries the strongest
//! guarantee the requested method offers (exact for `auto`), `2` = the
//! solver degraded — an approximate or partial answer under `auto`, or a
//! budget trip — and `1` = hard failure (bad spec, bad query, no method
//! produced any estimate).

use qrel::prelude::*;
use qrel::prob::UnreliableDatabaseSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::process::ExitCode;
use std::time::Duration;

/// Exit code for a degraded (approximate or partial) answer — distinct
/// from `1`, which signals hard failure.
const EXIT_DEGRADED: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `qrel help` for usage");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    flags: HashMap<String, String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        }
        Ok(Options { flags })
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects a number")),
        }
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer")),
        }
    }
}

fn load_spec(path: &str) -> Result<UnreliableDatabase, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let spec: UnreliableDatabaseSpec =
        serde_json::from_str(&text).map_err(|e| format!("bad spec JSON: {e}"))?;
    spec.build().map_err(|e| format!("invalid spec: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        print_help();
        return Ok(ExitCode::SUCCESS);
    };
    // `store` carries its own action word (`store init --dir …`), so it
    // dispatches before the flag parser sees the non-flag argument.
    if command == "store" {
        return cmd_store(&args[1..]);
    }
    let opts = Options::parse(&args[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => {
            print_help();
            Ok(ExitCode::SUCCESS)
        }
        "example-spec" => {
            print_example_spec();
            Ok(ExitCode::SUCCESS)
        }
        "version" | "--version" | "-V" => {
            print_version();
            Ok(ExitCode::SUCCESS)
        }
        "serve" => cmd_serve(&opts),
        "fuzz" => cmd_fuzz(&opts),
        "check" => cmd_check(&opts).map(|()| ExitCode::SUCCESS),
        "worlds" => cmd_worlds(&opts).map(|()| ExitCode::SUCCESS),
        "probability" => cmd_probability(&opts).map(|()| ExitCode::SUCCESS),
        "reliability" => cmd_reliability(&opts),
        "explain" => cmd_explain(&opts),
        "marginals" => cmd_marginals(&opts).map(|()| ExitCode::SUCCESS),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn print_help() {
    println!(
        "qrel — query reliability on unreliable databases \
         (Grädel/Gurevich/Hirsch, PODS 1998)\n\n\
         commands:\n\
         \x20 check        --db spec.json\n\
         \x20 worlds       --db spec.json [--limit N]\n\
         \x20 probability  --db spec.json --query Q [--method exact|fptras|padding]\n\
         \x20              [--eps E] [--delta D] [--seed S]\n\
         \x20 reliability  --db spec.json --query Q [--free x,y]\n\
         \x20              [--method auto|plan|exact|qf|fptras|padding|mc]\n\
         \x20              [--timeout-ms T] [--max-worlds N] [--max-samples N] [--max-terms N]\n\
         \x20              [--eps E] [--delta D] [--seed S] [--threads T] [--json true]\n\
         \x20              (--threads never changes the answer: fixed shard count,\n\
         \x20               per-shard seed-split RNGs; --json true prints the exact\n\
         \x20               wire body POST /v1/solve would return, errors included)\n\
         \x20 marginals    --db spec.json --query Q [--free x,y]\n\
         \x20 explain      --query Q [--free x,y]\n\
         \x20              (print the extensional safe plan the compiler would\n\
         \x20               run, or the reason the query is outside the safe\n\
         \x20               class; exit 2 when unsafe)\n\
         \x20 serve        [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
         \x20              [--sched-workers N] [--tenant-cap N] [--reserved-workers N]\n\
         \x20              [--job-retain N] [--cache-mb MB] [--preload spec.json,spec2.json]\n\
         \x20              [--shutdown-grace-ms T] [--self-heal true|false]\n\
         \x20              [--breaker-threshold N] [--watchdog-ms T] [--store DIR]\n\
         \x20              (exit 3 when the shutdown drain had to force-cancel work;\n\
         \x20               --store serves a persistent store and enables the\n\
         \x20               /v1/datasets mutation API)\n\
         \x20 store        init    --dir DIR\n\
         \x20              ingest  --dir DIR --dataset NAME --db spec.json\n\
         \x20              dump    --dir DIR --dataset NAME\n\
         \x20              compact --dir DIR [--dataset NAME]\n\
         \x20              (durable on-disk datasets: checksummed columnar segments,\n\
         \x20               crash-safe commits, incremental db-hash)\n\
         \x20 fuzz         [--seeds N] [--budget-ms M] [--start-seed S]\n\
         \x20              [--eps E] [--delta D] [--corpus DIR] [--families f1,f2]\n\
         \x20              [--sample true|false] [--serve true|false]\n\
         \x20              [--chaos true|false] [--chaos-pairs N] [--chaos-timeout-ms T]\n\
         \x20              (differential+metamorphic oracle across every engine;\n\
         \x20               --chaos round-trips pairs with a seeded fault plan armed\n\
         \x20               and asserts the fail-closed invariant;\n\
         \x20               exit 1 + shrunk repro path on any discrepancy)\n\
         \x20 example-spec\n\
         \x20 version\n\n\
         reliability exit codes: 0 = full-guarantee answer, \
         2 = degraded (approximate/partial), 1 = hard failure\n"
    );
}

fn print_version() {
    // The build script is free to inject a hash via QREL_GIT_HASH; a
    // plain `cargo build` prints only the crate version.
    match option_env!("QREL_GIT_HASH") {
        Some(hash) => println!("qrel {} ({hash})", env!("CARGO_PKG_VERSION")),
        None => println!("qrel {}", env!("CARGO_PKG_VERSION")),
    }
}

fn cmd_serve(opts: &Options) -> Result<ExitCode, String> {
    let mut config = qrel::serve::ServerConfig::default();
    if let Some(addr) = opts.get("addr") {
        config.addr = addr.to_string();
    }
    config.workers = opts.get_u64("workers", config.workers as u64)?.max(1) as usize;
    config.queue_cap = opts.get_u64("queue-cap", config.queue_cap as u64)?.max(1) as usize;
    config.sched_workers = opts.get_u64("sched-workers", config.sched_workers as u64)? as usize;
    config.per_tenant_cap = opts
        .get_u64("tenant-cap", config.per_tenant_cap as u64)?
        .max(1) as usize;
    config.reserved_workers =
        opts.get_u64("reserved-workers", config.reserved_workers as u64)? as usize;
    config.job_retain_cap = opts
        .get_u64("job-retain", config.job_retain_cap as u64)?
        .max(1) as usize;
    let default_mb = (config.cache_bytes / (1024 * 1024)) as u64;
    config.cache_bytes = opts.get_u64("cache-mb", default_mb)? as usize * 1024 * 1024;
    if let Some(list) = opts.get("preload") {
        config.preload = list
            .split(',')
            .map(|p| std::path::PathBuf::from(p.trim()))
            .collect();
    }
    if let Some(dir) = opts.get("store") {
        config.store = Some(std::path::PathBuf::from(dir));
    }
    let grace_ms = opts.get_u64(
        "shutdown-grace-ms",
        config.shutdown_grace.as_millis() as u64,
    )?;
    config.shutdown_grace = std::time::Duration::from_millis(grace_ms);
    config.self_heal = parse_bool(opts, "self-heal", config.self_heal)?;
    config.breaker_threshold =
        opts.get_u64("breaker-threshold", config.breaker_threshold as u64)? as u32;
    let watchdog_ms = opts.get_u64("watchdog-ms", config.watchdog_period.as_millis() as u64)?;
    config.watchdog_period = std::time::Duration::from_millis(watchdog_ms);
    qrel::serve::install_shutdown_signals();
    let server = qrel::serve::Server::bind(config).map_err(|e| e.to_string())?;
    println!("qrel-serve listening on http://{}", server.local_addr());
    let names = server.dataset_names();
    if !names.is_empty() {
        println!("preloaded datasets: {}", names.join(", "));
    }
    println!(
        "endpoints: POST /v1/jobs, GET /v1/jobs, GET /v1/jobs/{{id}}, \
         GET /v1/jobs/{{id}}/result, DELETE /v1/jobs/{{id}}, \
         POST /v1/solve, GET /v1/datasets, \
         POST|DELETE /v1/datasets/{{name}}/facts, GET /healthz, GET /metrics"
    );
    let report = server.run().map_err(|e| e.to_string())?;
    if report.forced {
        // Forced drain: grace expired or the watchdog shot in-flight
        // work while draining. Distinguishable from a clean exit.
        eprintln!(
            "drain was forced ({} watchdog cancels)",
            report.watchdog_cancels
        );
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_store(args: &[String]) -> Result<ExitCode, String> {
    use qrel::store::Store;
    let Some(action) = args.first() else {
        return Err("store needs an action: init | ingest | dump | compact".into());
    };
    let opts = Options::parse(&args[1..])?;
    let dir = std::path::PathBuf::from(opts.required("dir")?);
    match action.as_str() {
        "init" => {
            Store::init(&dir).map_err(|e| e.to_string())?;
            println!("initialised empty store at {}", dir.display());
        }
        "ingest" => {
            let mut store = Store::open(&dir).map_err(|e| e.to_string())?;
            let name = opts.required("dataset")?;
            let path = opts.required("db")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            let spec: UnreliableDatabaseSpec =
                serde_json::from_str(&text).map_err(|e| format!("bad spec JSON: {e}"))?;
            let stats = store.ingest_spec(name, &spec).map_err(|e| e.to_string())?;
            println!(
                "ingested {name:?}: {} rows, {} live facts, db-hash {:016x} ({}ms)",
                stats.rows, stats.live_facts, stats.db_hash, stats.elapsed_ms
            );
        }
        "dump" => {
            let store = Store::open(&dir).map_err(|e| e.to_string())?;
            let name = opts.required("dataset")?;
            let mut ds = store.load(name).map_err(|e| e.to_string())?;
            let spec = ds.dump_spec().map_err(|e| e.to_string())?;
            println!(
                "{}",
                serde_json::to_string_pretty(&spec).expect("spec serializes")
            );
        }
        "compact" => {
            let mut store = Store::open(&dir).map_err(|e| e.to_string())?;
            let names = match opts.get("dataset") {
                Some(one) => vec![one.to_string()],
                None => store.dataset_names(),
            };
            for name in names {
                let stats = store.compact(&name).map_err(|e| e.to_string())?;
                println!(
                    "compacted {name:?}: {} live rows, db-hash {:016x} ({}ms)",
                    stats.rows, stats.db_hash, stats.elapsed_ms
                );
            }
        }
        other => {
            return Err(format!(
                "unknown store action {other:?} (init | ingest | dump | compact)"
            ))
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_bool(opts: &Options, name: &str, default: bool) -> Result<bool, String> {
    match opts.get(name) {
        None => Ok(default),
        Some("true") => Ok(true),
        Some("false") => Ok(false),
        Some(other) => Err(format!("--{name} expects true or false, got {other:?}")),
    }
}

fn cmd_fuzz(opts: &Options) -> Result<ExitCode, String> {
    use qrel::oracle::{run_fuzz, serve_round_trip, FuzzConfig, FAMILIES};

    let families: Vec<String> = match opts.get("families") {
        None => FAMILIES.iter().map(|s| s.to_string()).collect(),
        Some(list) => {
            let picked: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
            for f in &picked {
                if !FAMILIES.contains(&f.as_str()) {
                    return Err(format!("unknown family {f:?} (available: {FAMILIES:?})"));
                }
            }
            picked
        }
    };
    let cfg = FuzzConfig {
        seeds: opts.get_u64("seeds", 200)?,
        start_seed: opts.get_u64("start-seed", 1)?,
        budget_ms: opts
            .get("budget-ms")
            .map(|_| opts.get_u64("budget-ms", 0))
            .transpose()?,
        eps: opts.get_f64("eps", 0.25)?,
        delta: opts.get_f64("delta", 0.2)?,
        corpus_dir: Some(std::path::PathBuf::from(
            opts.get("corpus").unwrap_or("tests/corpus"),
        )),
        families,
        sample: parse_bool(opts, "sample", true)?,
    };
    let report = run_fuzz(&cfg);
    print!("{}", report.summary());

    let mut clean = report.clean();
    if parse_bool(opts, "serve", false)? {
        // Round-trip a capped slice of the same seed range through a
        // live POST /v1/solve and demand HTTP ≡ library bit-equality.
        let cap = cfg.seeds.min(32);
        let cases: Vec<qrel::oracle::FuzzCase> = (0..cap)
            .map(|i| {
                let family = &cfg.families[(i % cfg.families.len() as u64) as usize];
                qrel::oracle::generate(cfg.start_seed + i, family)
            })
            .filter(|c| c.db.is_some())
            .collect();
        let serve = serve_round_trip(&cases)?;
        println!(
            "serve round-trip: {} cases, {} mismatches",
            serve.cases,
            serve.mismatches.len()
        );
        for m in &serve.mismatches {
            println!("  DISCREPANCY [{}] {}", m.check, m.detail);
            clean = false;
        }
    }

    if parse_bool(opts, "chaos", false)? {
        // Chaos mode: same round trip, but with a seeded fault plan
        // armed per pair. The server must stay fail-closed: bit-identical
        // answers or explicitly tagged degradation/errors, and no request
        // outliving its deadline past the watchdog + injected stalls.
        let chaos_cfg = qrel::oracle::ChaosConfig {
            pairs: opts.get_u64("chaos-pairs", 500)?,
            start_seed: cfg.start_seed,
            timeout_ms: opts.get_u64("chaos-timeout-ms", 2_000)?,
            corpus_dir: cfg.corpus_dir.clone(),
        };
        let chaos = qrel::oracle::run_chaos(&chaos_cfg);
        println!(
            "chaos: {} (case, plan) pairs, {} violations",
            chaos.pairs,
            chaos.violations.len()
        );
        for v in &chaos.violations {
            println!("  VIOLATION [{}] {}", v.kind, v.detail);
            println!("    plan: {}", v.plan.to_json());
            if let Some(p) = &v.path {
                println!("    repro: {}", p.display());
            }
            clean = false;
        }
    }

    Ok(if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn print_example_spec() {
    let db = DatabaseBuilder::new()
        .universe_names(["alice", "bob", "carol"])
        .relation("Knows", 2)
        .relation("Admin", 1)
        .tuples("Knows", [vec![0, 1], vec![1, 2]])
        .tuples("Admin", [vec![0]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_error(&Fact::new(0, vec![1, 2]), BigRational::from_ratio(1, 10))
        .unwrap();
    ud.set_error(&Fact::new(1, vec![2]), BigRational::from_ratio(1, 4))
        .unwrap();
    let spec = UnreliableDatabaseSpec::from_model(&ud);
    println!("{}", serde_json::to_string_pretty(&spec).unwrap());
}

fn cmd_check(opts: &Options) -> Result<(), String> {
    let ud = load_spec(opts.required("db")?)?;
    println!("spec OK");
    println!("universe size: {}", ud.size());
    println!(
        "relations: {}",
        ud.observed()
            .vocabulary()
            .symbols()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("stored tuples: {}", ud.observed().tuple_count());
    println!("atomic facts: {}", ud.indexer().total());
    let u = ud.uncertain_facts().len();
    println!("uncertain facts: {u}");
    match ud.world_count() {
        Some(w) => println!("possible worlds: {w}"),
        None => println!("possible worlds: 2^{u} (beyond u64)"),
    }
    Ok(())
}

/// A world ranked by probability, ordered for the bounded min-heap in
/// [`cmd_worlds`] (ties broken toward keeping the earliest world).
struct RankedWorld {
    p: BigRational,
    seq: u64,
    world: Database,
}

impl PartialEq for RankedWorld {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for RankedWorld {}
impl PartialOrd for RankedWorld {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RankedWorld {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lower probability = "greater" so BinaryHeap pops the weakest
        // survivor first; among equals, evict the later world.
        other.p.cmp(&self.p).then(self.seq.cmp(&other.seq))
    }
}

fn cmd_worlds(opts: &Options) -> Result<(), String> {
    let ud = load_spec(opts.required("db")?)?;
    let limit = opts.get_u64("limit", 16)? as usize;
    let u = ud.uncertain_facts().len();
    if u > 20 {
        return Err(format!(
            "{u} uncertain facts — enumeration would not fit; ≤ 20 supported"
        ));
    }
    // Stream the worlds through a bounded min-heap: memory is O(limit),
    // not O(2^u), so `--limit 5` on a 20-fact spec never materialises a
    // million world structs.
    let mut heap: BinaryHeap<RankedWorld> = BinaryHeap::with_capacity(limit + 1);
    let mut total = 0u64;
    for (world, p) in ud.worlds() {
        let seq = total;
        total += 1;
        if heap.len() == limit {
            // Cheap pre-check: skip the clone when this world cannot
            // enter the top-`limit`.
            if let Some(weakest) = heap.peek() {
                if p <= weakest.p {
                    continue;
                }
            }
        }
        heap.push(RankedWorld { p, seq, world });
        if heap.len() > limit {
            heap.pop();
        }
    }
    let mut top = heap.into_vec();
    top.sort_by(|a, b| b.p.cmp(&a.p).then(a.seq.cmp(&b.seq)));
    println!("{total} worlds (showing up to {limit}, most probable first):\n");
    for (i, ranked) in top.iter().enumerate() {
        println!(
            "world #{i}: probability {} (≈ {:.6})",
            ranked.p,
            ranked.p.to_f64()
        );
        println!("{}", ranked.world);
    }
    Ok(())
}

fn parse_query(opts: &Options) -> Result<(Formula, Vec<String>), String> {
    let src = opts.required("query")?;
    let f = parse_formula(src).map_err(|e| e.to_string())?;
    let free = match opts.get("free") {
        Some(spec) => spec.split(',').map(|s| s.trim().to_string()).collect(),
        None => f.free_vars(),
    };
    {
        let mut sorted: Vec<String> = free.clone();
        sorted.sort();
        if sorted != f.free_vars() {
            return Err(format!(
                "--free {:?} does not match the query's free variables {:?}",
                free,
                f.free_vars()
            ));
        }
    }
    Ok((f, free))
}

fn cmd_probability(opts: &Options) -> Result<(), String> {
    let ud = load_spec(opts.required("db")?)?;
    let (f, free) = parse_query(opts)?;
    if !free.is_empty() {
        return Err("probability requires a Boolean query (no free variables)".into());
    }
    let method = opts.get("method").unwrap_or("exact");
    if !matches!(method, "exact" | "fptras" | "padding") {
        return Err(format!("unknown method {method:?}"));
    }
    let eps = opts.get_f64("eps", 0.05)?;
    let delta = opts.get_f64("delta", 0.05)?;
    let seed = opts.get_u64("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let q = FoQuery::new(f.clone());
    let observed = q.eval_sentence(ud.observed()).map_err(|e| e.to_string())?;
    println!("observed answer: {observed}");
    match method {
        "exact" => {
            let p = exact_probability(&ud, &q).map_err(|e| e.to_string())?;
            println!("Pr[𝔅 ⊨ ψ] = {p} (≈ {:.6})", p.to_f64());
        }
        "fptras" => {
            let est = existential_probability_fptras(&ud, &f, eps, delta, Route::Direct, &mut rng)
                .map_err(|e| e.to_string())?;
            println!("Pr[𝔅 ⊨ ψ] ≈ {est:.6}   (FPTRAS, ε = {eps}, δ = {delta})");
        }
        "padding" => {
            let est = PaddingEstimator::default_xi();
            let rep = est
                .estimate_probability(&ud, &q, eps, delta, &mut rng)
                .map_err(|e| e.to_string())?;
            println!(
                "Pr[𝔅 ⊨ ψ] ≈ {:.6}   (Thm 5.12 padding, {} samples)",
                rep.estimate, rep.samples
            );
        }
        other => return Err(format!("unknown method {other:?}")),
    }
    Ok(())
}

/// `qrel explain`: compile (or decline) the query and print the plan
/// tree. Purely symbolic — no database needed; the plan depends only on
/// the query's shape. Exit 0 with the tree when safe, exit 2 with the
/// decline reason when provably unsafe (mirroring the degraded-answer
/// code: the query is still solvable, just not extensionally).
fn cmd_explain(opts: &Options) -> Result<ExitCode, String> {
    let (f, free) = parse_query(opts)?;
    match qrel::plan::compile(&f) {
        Ok(plan) => {
            println!("safe plan ({} nodes) for {f}", plan.node_count());
            if !free.is_empty() {
                println!("free variables: {}", free.join(", "));
            }
            println!("{plan}");
            Ok(ExitCode::SUCCESS)
        }
        Err(reason) => {
            println!("no safe plan for {f}");
            println!("reason: {reason}");
            println!("(Method::Auto falls back to the enumeration/sampling ladder)");
            Ok(ExitCode::from(EXIT_DEGRADED))
        }
    }
}

fn cmd_marginals(opts: &Options) -> Result<(), String> {
    let ud = load_spec(opts.required("db")?)?;
    let (f, free) = parse_query(opts)?;
    let q = FoQuery::with_free_order(f, free);
    let marginals = qrel::core::exact::answer_marginals(&ud, &q).map_err(|e| e.to_string())?;
    let observed = q.answers(ud.observed()).map_err(|e| e.to_string())?;
    println!("tuple marginals Pr[ā ∈ ψ^𝔅] (exact):");
    for (t, m) in marginals {
        if m.is_zero() {
            continue;
        }
        let names: Vec<&str> = t
            .iter()
            .map(|&e| ud.observed().universe().name(e))
            .collect();
        let mark = if observed.contains(&t) {
            "∈ ψ^𝔄"
        } else {
            "∉ ψ^𝔄"
        };
        println!("  ({}) {mark}: {m} (≈ {:.6})", names.join(", "), m.to_f64());
    }
    Ok(())
}

/// Assemble the [`Budget`] from `--timeout-ms` / `--max-worlds` /
/// `--max-samples` / `--max-terms`.
fn build_budget(opts: &Options) -> Result<Budget, String> {
    let mut budget = Budget::unlimited();
    if let Some(ms) = opts.get("timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| "--timeout-ms expects milliseconds".to_string())?;
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = opts.get("max-worlds") {
        let n: u64 = n
            .parse()
            .map_err(|_| "--max-worlds expects an integer".to_string())?;
        budget = budget.with_max_worlds(n);
    }
    if let Some(n) = opts.get("max-samples") {
        let n: u64 = n
            .parse()
            .map_err(|_| "--max-samples expects an integer".to_string())?;
        budget = budget.with_max_samples(n);
    }
    if let Some(n) = opts.get("max-terms") {
        let n: u64 = n
            .parse()
            .map_err(|_| "--max-terms expects an integer".to_string())?;
        budget = budget.with_max_terms(n);
    }
    Ok(budget)
}

fn cmd_reliability(opts: &Options) -> Result<ExitCode, String> {
    let ud = load_spec(opts.required("db")?)?;
    let (f, free) = parse_query(opts)?;
    let method_name = opts.get("method").unwrap_or("auto");
    let method = Method::parse(method_name).ok_or_else(|| {
        format!("unknown method {method_name:?} (auto|plan|exact|qf|fptras|padding|mc)")
    })?;
    let eps = opts.get_f64("eps", 0.05)?;
    let delta = opts.get_f64("delta", 0.05)?;
    let seed = opts.get_u64("seed", 0)?;
    let budget = build_budget(opts)?;
    let mut solver = Solver::new()
        .with_method(method)
        .with_accuracy(eps, delta)
        .with_seed(seed);
    if let Some(t) = opts.get("threads") {
        let t: usize = t
            .parse()
            .ok()
            .filter(|&t| t > 0)
            .ok_or_else(|| "--threads expects a positive integer".to_string())?;
        solver = solver.with_threads(t);
    }
    let q = FoQuery::with_free_order(f, free);
    let json = parse_bool(opts, "json", false)?;
    let report = match solver.solve(&ud, &q, &budget) {
        Ok(r) => r,
        Err(e) => {
            if json {
                // Same failure, same wire shape: the envelope the HTTP
                // solve endpoint would attach to its 422.
                let body = qrel::serve::error_body(422, &e.to_string(), None);
                println!("{}", String::from_utf8(body).expect("envelope is UTF-8"));
                return Ok(ExitCode::FAILURE);
            }
            return Err(e.to_string());
        }
    };

    if json {
        // One serializer for every surface: this is byte-for-byte the
        // body `POST /v1/solve` (and a job result fetch) returns for
        // the same request, so scripts can switch transports freely.
        let body = qrel::serve::solve_response_body(&report);
        println!("{}", String::from_utf8(body).expect("report body is UTF-8"));
        let degraded = report.is_degraded()
            || (method == Method::Auto && !matches!(report.confidence, Confidence::Exact));
        return Ok(if degraded {
            ExitCode::from(EXIT_DEGRADED)
        } else {
            ExitCode::SUCCESS
        });
    }

    match (&report.exact, report.bounds) {
        (Some(r), _) => {
            println!("R_ψ = {} (≈ {:.6})", r, r.to_f64());
        }
        (None, Some((lo, hi))) => {
            println!(
                "R_ψ ≈ {:.6}   (bounded: {lo:.6} ≤ R_ψ ≤ {hi:.6})",
                report.reliability
            );
        }
        (None, None) => {
            println!("R_ψ ≈ {:.6}", report.reliability);
        }
    }
    println!(
        "method: {}   confidence: {}",
        report.method, report.confidence
    );
    println!("trace: {}", report.trace_line());
    println!(
        "spent: {} worlds, {} samples, {} DNF terms, {}ms",
        report.worlds,
        report.samples,
        report.terms,
        report.elapsed.as_millis()
    );

    // Under `auto` the strongest possible answer is the exact rational,
    // so anything approximate counts as degraded; an explicit sampling
    // method that delivered its (ε, δ) guarantee is what was asked for.
    let degraded = report.is_degraded()
        || (method == Method::Auto && !matches!(report.confidence, Confidence::Exact));
    Ok(if degraded {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    })
}
