//! Corpus replay: every case under `tests/corpus/` — hand-planted
//! regressions and shrunk repros committed by `qrel fuzz` — is re-run
//! through the full differential and metamorphic oracle on every
//! `cargo test`. A case that once exposed a discrepancy stays green
//! forever only because the bug stays fixed.
//!
//! Replay is deterministic (samplers off): the exact engines must agree
//! bit-for-bit and every metamorphic law must hold, with no statistical
//! tolerance to hide behind.

use qrel::oracle::{check_case, check_metamorphic, FuzzCase};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every `.json` file in the corpus, sorted for stable output.
///
/// Chaos repros (`chaos-*.json`, written by `qrel fuzz --chaos`) are
/// skipped: they wrap the case in a `{check, plan, case}` envelope so
/// the fault plan replays alongside the instance, and are re-run by
/// the chaos harness rather than the plain differential oracle.
fn corpus_cases() -> Vec<(String, FuzzCase)> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .filter(|p| {
            !p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("chaos-"))
        })
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text =
                std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
            let case = FuzzCase::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, case)
        })
        .collect()
}

#[test]
fn corpus_is_nonempty_and_well_formed() {
    let cases = corpus_cases();
    assert!(
        cases.len() >= 3,
        "corpus must keep its hand-planted regressions"
    );
    for (name, case) in &cases {
        case.build_db()
            .unwrap_or_else(|e| panic!("{name}: malformed: {e}"));
        assert!(
            !case.note.is_empty(),
            "{name}: every corpus case must say why it exists"
        );
    }
}

#[test]
fn hand_planted_regressions_are_present() {
    let names: Vec<String> = corpus_cases().into_iter().map(|(n, _)| n).collect();
    for required in [
        "regression-mu-one-flip.json",
        "regression-nondyadic-thirds.json",
        "regression-nearzero-dnf.json",
        "regression-universal-padding.json",
        "regression-dyadic-overflow.json",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "missing hand-planted corpus file {required} (have {names:?})"
        );
    }
}

#[test]
fn every_corpus_case_replays_clean() {
    let mut problems = Vec::new();
    for (name, case) in corpus_cases() {
        // ε/δ only shape sampler envelopes, which are off here; the
        // values are irrelevant to the deterministic checks.
        match check_case(&case, 0.25, 0.2, false) {
            Ok(out) => {
                for f in out.failures {
                    problems.push(format!("{name}: [{}] {}", f.check, f.detail));
                }
            }
            Err(e) => problems.push(format!("{name}: harness: {e}")),
        }
        match check_metamorphic(&case) {
            Ok(fails) => {
                for f in fails {
                    problems.push(format!("{name}: [{}] {}", f.check, f.detail));
                }
            }
            Err(e) => problems.push(format!("{name}: harness-meta: {e}")),
        }
    }
    assert!(
        problems.is_empty(),
        "corpus replay found {} discrepancies:\n{}",
        problems.len(),
        problems.join("\n")
    );
}

#[test]
fn corpus_cases_stay_replayable_after_round_trip() {
    // Committing a repro must never lose information: serialize each
    // case back out and verify the round trip is the identity.
    for (name, case) in corpus_cases() {
        let back = FuzzCase::from_json(&case.to_json()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(back, case, "{name}: JSON round trip altered the case");
    }
}
