//! Statistical-guarantee harness: the (ε, δ) contracts of the sampling
//! estimators are *testable claims*, not documentation. Each test runs
//! many independently seeded trials of one estimator at its own
//! theorem-dictated sample budget, counts the trials whose error
//! exceeds ε, and requires the empirical failure rate to stay at or
//! below δ plus binomial slack.
//!
//! Every trial goes through the sharded (parallel) engine, so the suite
//! certifies the guarantee on exactly the code path the solver runs —
//! the deterministic seed-split sampling path — not on a serial twin.

use qrel::arith::BigRational;
use qrel::count::bounds::hoeffding_samples;
use qrel::count::naive_mc::naive_mc_probability_sharded;
use qrel::count::{dnf_probability_shannon, KarpLuby};
use qrel::logic::prop::{Dnf, Lit};
use qrel::prelude::{
    exact_probability, DatabaseBuilder, Fact, FoQuery, PaddingEstimator, UnreliableDatabase,
};
use qrel_par::{split_seed, DEFAULT_SHARDS};

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// Maximum failures tolerated in `trials` Bernoulli(δ) draws: the mean
/// plus three standard deviations. A correct estimator trips this with
/// probability < 0.2% — and the theorems' constants are conservative
/// enough that observed failure counts sit far below even the mean.
fn binomial_threshold(trials: u64, delta: f64) -> u64 {
    let n = trials as f64;
    (n * delta + 3.0 * (n * delta * (1.0 - delta)).sqrt()).ceil() as u64
}

/// A 6-variable, 3-term DNF at p = 1/3 — small enough that each trial
/// is cheap, non-trivial enough that the estimate actually varies.
fn test_dnf() -> (Dnf, Vec<BigRational>) {
    let d = Dnf::from_terms([
        vec![Lit::pos(0), Lit::pos(1)],
        vec![Lit::pos(2), Lit::neg(3)],
        vec![Lit::pos(4), Lit::pos(5)],
    ]);
    let probs = vec![r(1, 3); 6];
    (d, probs)
}

#[test]
fn karp_luby_sharded_meets_its_relative_epsilon_delta_contract() {
    let (d, probs) = test_dnf();
    let exact = dnf_probability_shannon(&d, &probs).to_f64();
    let kl = KarpLuby::new(&d, &probs);
    let (eps, delta) = (0.1, 0.2);
    let samples = kl.samples_for(eps, delta);
    let trials = 80u64;
    let failures = (0..trials)
        .filter(|&i| {
            let rep = kl.run_sharded(samples, split_seed(0x5747_0001, i), DEFAULT_SHARDS, 4);
            (rep.estimate - exact).abs() / exact > eps
        })
        .count() as u64;
    let allowed = binomial_threshold(trials, delta);
    assert!(
        failures <= allowed,
        "Karp–Luby missed its relative-ε bound in {failures}/{trials} trials \
         (δ = {delta} allows at most {allowed})"
    );
}

#[test]
fn naive_mc_sharded_meets_its_hoeffding_contract() {
    let (d, probs) = test_dnf();
    let exact = dnf_probability_shannon(&d, &probs).to_f64();
    let (eps, delta) = (0.1, 0.2);
    let samples = hoeffding_samples(eps, delta);
    let trials = 200u64;
    let failures = (0..trials)
        .filter(|&i| {
            let est = naive_mc_probability_sharded(
                &d,
                &probs,
                samples,
                split_seed(0x5747_0002, i),
                DEFAULT_SHARDS,
                4,
            );
            (est - exact).abs() > eps
        })
        .count() as u64;
    let allowed = binomial_threshold(trials, delta);
    assert!(
        failures <= allowed,
        "naive MC missed its absolute-ε bound in {failures}/{trials} trials \
         (δ = {delta} allows at most {allowed})"
    );
}

#[test]
fn padding_estimator_sharded_meets_its_absolute_epsilon_delta_contract() {
    // Two uncertain E-facts over a 2-element universe, each present with
    // probability 1/2: the closed query below holds iff both edges are
    // in, so ν(ψ) = 1/4 — mid-range, and each Monte-Carlo world costs
    // almost nothing, so the Lemma 5.11 budget × trials stays fast.
    let db = DatabaseBuilder::new()
        .universe_size(2)
        .relation("E", 2)
        .tuples("E", [vec![0, 1], vec![1, 0]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 2)).unwrap();
    ud.set_error(&Fact::new(0, vec![1, 0]), r(1, 2)).unwrap();
    let query = FoQuery::parse("exists x y. E(x,y) & E(y,x)").unwrap();
    let exact = exact_probability(&ud, &query).unwrap().to_f64();
    assert!((exact - 0.25).abs() < 1e-12);

    let (eps, delta) = (0.2, 0.2);
    let est = PaddingEstimator::default_xi();
    let trials = 40u64;
    let failures = (0..trials)
        .filter(|&i| {
            let rep = est
                .estimate_probability_sharded(
                    &ud,
                    &query,
                    eps,
                    delta,
                    split_seed(0x5747_0003, i),
                    DEFAULT_SHARDS,
                    4,
                )
                .unwrap();
            (rep.estimate - exact).abs() > eps
        })
        .count() as u64;
    let allowed = binomial_threshold(trials, delta);
    assert!(
        failures <= allowed,
        "padding estimator missed its absolute-ε bound in {failures}/{trials} trials \
         (δ = {delta} allows at most {allowed})"
    );
}
