//! Integration tests for the serving layer: an in-process server hit
//! over real TCP sockets, plus a binary-level graceful-shutdown check.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use qrel::prelude::*;
use qrel::prob::UnreliableDatabaseSpec;
use qrel::serve::{protocol, Server, ServerConfig, ServerHandle};

fn data_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/data")).join(name)
}

/// One-shot HTTP client: returns (status, headers, body).
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    http_raw(addr, raw.as_bytes())
}

/// Send raw bytes, read the full response.
fn http_raw(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<(String, String)>, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(raw).unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(": "))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

fn boot(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..config
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run().unwrap();
    });
    (addr, handle, join)
}

fn uncertain16_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        preload: vec![data_path("uncertain16.json")],
        ..ServerConfig::default()
    }
}

/// Scrape one un-labelled counter value from Prometheus text.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn solve_matches_the_library_oracle_bit_for_bit() {
    let (addr, handle, join) = boot(uncertain16_config());
    let (status, _, body) = http(
        addr,
        "POST",
        "/v1/solve",
        r#"{"dataset":"uncertain16","query":"exists x. S(x)","method":"exact"}"#,
    );
    assert_eq!(status, 200, "{body}");

    // Reproduce the server's solve exactly: same method, accuracy,
    // seed, thread count, and an untripped deadline budget — then the
    // response body must equal the library report's serialization
    // byte for byte.
    let text = std::fs::read_to_string(data_path("uncertain16.json")).unwrap();
    let spec: UnreliableDatabaseSpec = serde_json::from_str(&text).unwrap();
    let ud = spec.build().unwrap();
    let q = FoQuery::parse("exists x. S(x)").unwrap();
    let budget = Budget::with_deadline_from_now(Duration::from_millis(30_000));
    let report = Solver::new()
        .with_method(Method::Exact)
        .with_accuracy(0.05, 0.05)
        .with_seed(0)
        .with_threads(1)
        .solve(&ud, &q, &budget)
        .unwrap();
    let expected = String::from_utf8(protocol::solve_response_body(&report)).unwrap();
    assert_eq!(body, expected);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cache_hit_is_bit_identical_and_visible_in_metrics() {
    let (addr, handle, join) = boot(uncertain16_config());
    let req = r#"{"dataset":"uncertain16","query":"exists x. S(x)","method":"fptras","seed":7}"#;

    let (s1, h1, b1) = http(addr, "POST", "/v1/solve", req);
    assert_eq!(s1, 200, "{b1}");
    assert_eq!(header(&h1, "X-Qrel-Cache"), Some("miss"));

    let (s2, h2, b2) = http(addr, "POST", "/v1/solve", req);
    assert_eq!(s2, 200);
    assert_eq!(header(&h2, "X-Qrel-Cache"), Some("hit"));
    assert_eq!(
        b1, b2,
        "cache hit must be byte-identical to the fresh solve"
    );

    // A different seed is a different cache entry, and a different answer
    // stream — it must not alias.
    let other = r#"{"dataset":"uncertain16","query":"exists x. S(x)","method":"fptras","seed":8}"#;
    let (s3, h3, _) = http(addr, "POST", "/v1/solve", other);
    assert_eq!(s3, 200);
    assert_eq!(header(&h3, "X-Qrel-Cache"), Some("miss"));

    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(metric(&metrics, "qrel_cache_hits_total"), 1);
    assert_eq!(metric(&metrics, "qrel_cache_misses_total"), 2);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn inline_db_and_preloaded_dataset_share_cache_entries() {
    // The canonical database hash is computed from the *re-serialized*
    // spec, so posting the dataset file's contents inline must hit the
    // entry a named solve populated.
    let (addr, handle, join) = boot(uncertain16_config());
    let named = r#"{"dataset":"uncertain16","query":"exists x. S(x)","method":"exact"}"#;
    let (s1, h1, b1) = http(addr, "POST", "/v1/solve", named);
    assert_eq!(s1, 200, "{b1}");
    assert_eq!(header(&h1, "X-Qrel-Cache"), Some("miss"));

    let spec_text = std::fs::read_to_string(data_path("uncertain16.json")).unwrap();
    let inline = format!(
        r#"{{"db":{},"query":"exists x. S(x)","method":"exact"}}"#,
        spec_text
    );
    let (s2, h2, b2) = http(addr, "POST", "/v1/solve", &inline);
    assert_eq!(s2, 200, "{b2}");
    assert_eq!(header(&h2, "X-Qrel-Cache"), Some("hit"));
    assert_eq!(b1, b2);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_oversized_and_unroutable_requests() {
    let (addr, handle, join) = boot(uncertain16_config());

    // 400: not JSON, bad fields, unknown dataset, bad query syntax.
    assert_eq!(http(addr, "POST", "/v1/solve", "not json").0, 400);
    assert_eq!(
        http(addr, "POST", "/v1/solve", r#"{"query":"S(x)"}"#).0,
        400
    );
    let (s, _, b) = http(
        addr,
        "POST",
        "/v1/solve",
        r#"{"dataset":"nope","query":"exists x. S(x)"}"#,
    );
    assert_eq!(s, 400);
    assert!(b.contains("unknown dataset"), "{b}");
    assert_eq!(
        http(
            addr,
            "POST",
            "/v1/solve",
            r#"{"dataset":"uncertain16","query":"exists x. ("}"#
        )
        .0,
        400
    );

    // 413: a declared body beyond the cap is refused from its headers
    // alone — no body bytes are sent at all.
    let (s, _, b) = http_raw(
        addr,
        b"POST /v1/solve HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n",
    );
    assert_eq!(s, 413, "{b}");

    // 404 / 405.
    assert_eq!(http(addr, "GET", "/v2/solve", "").0, 404);
    assert_eq!(http(addr, "DELETE", "/v1/solve", "").0, 405);
    assert_eq!(http(addr, "POST", "/metrics", "").0, 405);

    handle.shutdown();
    join.join().unwrap();
}

/// A request guaranteed to hold a worker for ~`timeout_ms`: forced
/// exact enumeration over 2^28 worlds trips its deadline and answers
/// with a partial.
fn slow_solve_body(timeout_ms: u64, seed: u64) -> String {
    let names: Vec<String> = (0..28).map(|i| format!("\"e{i}\"")).collect();
    let tuples: Vec<String> = (0..28).map(|i| format!("[{i}]")).collect();
    let errors: Vec<String> = (0..28)
        .map(|i| format!("{{\"relation\":\"S\",\"tuple\":[{i}],\"mu\":\"1/2\"}}"))
        .collect();
    format!(
        "{{\"db\":{{\"database\":{{\"vocab\":{{\"symbols\":[{{\"name\":\"S\",\"arity\":1}}]}},\
         \"universe\":{{\"names\":[{}]}},\
         \"relations\":[{{\"arity\":1,\"tuples\":[{}]}}]}},\
         \"model\":\"full\",\"errors\":[{}]}},\
         \"query\":\"exists x. S(x)\",\"method\":\"exact\",\
         \"timeout_ms\":{timeout_ms},\"seed\":{seed}}}",
        names.join(","),
        tuples.join(","),
        errors.join(",")
    )
}

#[test]
fn saturation_produces_429_and_counts_rejections() {
    let (addr, handle, join) = boot(ServerConfig {
        workers: 1,
        queue_cap: 1,
        ..uncertain16_config()
    });
    let clients: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || http(addr, "POST", "/v1/solve", &slow_solve_body(700, i)))
        })
        .collect();
    let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let rejected = results.iter().filter(|(s, _, _)| *s == 429).count();
    assert!(rejected >= 1, "no 429 under saturation: {results:?}");
    assert!(
        results.iter().any(|(s, _, _)| *s == 200),
        "nothing served: {results:?}"
    );
    for (status, headers, _) in &results {
        if *status == 429 {
            // Dynamic backpressure hint: queue depth over drain rate,
            // clamped to 1..=30 — the contract is the range, not a
            // hardcoded constant.
            let secs: u64 = header(headers, "Retry-After")
                .expect("429 carries Retry-After")
                .parse()
                .expect("Retry-After is an integer");
            assert!((1..=30).contains(&secs), "Retry-After = {secs}");
        }
    }

    // The queue has drained; the rejections are on the meter.
    let (_, _, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(metric(&metrics, "qrel_rejected_total"), rejected as u64);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn metrics_are_monotone_across_requests() {
    let (addr, handle, join) = boot(uncertain16_config());
    let (_, _, before) = http(addr, "GET", "/metrics", "");
    let misses_before = metric(&before, "qrel_cache_misses_total");
    let count_before = metric(&before, "qrel_solve_latency_seconds_count");

    for _ in 0..3 {
        let (s, _, _) = http(
            addr,
            "POST",
            "/v1/solve",
            r#"{"dataset":"uncertain16","query":"S(x)","method":"qf"}"#,
        );
        assert_eq!(s, 200);
    }

    let (_, _, after) = http(addr, "GET", "/metrics", "");
    // One miss (first solve), then hits; exactly one real solve ran.
    assert_eq!(metric(&after, "qrel_cache_misses_total"), misses_before + 1);
    assert_eq!(metric(&after, "qrel_cache_hits_total"), 2);
    assert_eq!(
        metric(&after, "qrel_solve_latency_seconds_count"),
        count_before + 1
    );
    assert!(
        after.contains("qrel_solve_total{method=\"qf\"} 1"),
        "{after}"
    );
    assert!(
        after.contains("qrel_http_requests_total{endpoint=\"/v1/solve\",status=\"200\"} 3"),
        "{after}"
    );

    handle.shutdown();
    join.join().unwrap();
}

/// Binary-level check: `qrel serve` on an ephemeral port answers
/// `/healthz` and exits cleanly (status 0) on SIGTERM.
#[cfg(unix)]
#[test]
fn binary_serves_and_shuts_down_on_sigterm() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_qrel"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--preload",
            data_path("example.json").to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");

    // The first stdout line announces the bound address.
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr: SocketAddr = banner
        .rsplit("http://")
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("unparseable banner: {banner}"));

    let (status, _, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("example"), "{body}");

    // SIGTERM → graceful drain → exit 0.
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success());
    let mut waited = Duration::ZERO;
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        assert!(
            waited < Duration::from_secs(10),
            "server did not exit on SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(50));
        waited += Duration::from_millis(50);
    };
    assert!(status.success(), "exit status: {status:?}");
}

/// Binary-level forced-drain check: SIGTERM lands while a long solve is
/// in flight and the shutdown grace is too short for it to finish
/// gracefully — the drain escalates (hard-cancel), the solve still
/// answers, and the process exits 3 instead of 0 so operators can tell
/// a clean drain from a forced one.
#[cfg(unix)]
#[test]
fn binary_sigterm_during_long_solve_forces_drain_and_exits_3() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_qrel"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--shutdown-grace-ms",
            "200",
            "--watchdog-ms",
            "100",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");

    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr: SocketAddr = banner
        .rsplit("http://")
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("unparseable banner: {banner}"));

    // Occupy the single worker with a solve that wants ~5s.
    let slow =
        std::thread::spawn(move || http(addr, "POST", "/v1/solve", &slow_solve_body(5000, 0)));
    std::thread::sleep(Duration::from_millis(300));

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success());

    // The in-flight solve is hard-cancelled past the grace period but
    // still gets an explicit response — degraded 200 or tagged 422,
    // never a dropped connection.
    let (status, _, body) = slow.join().unwrap();
    assert!(status == 200 || status == 422, "{status}: {body}");

    let mut waited = Duration::ZERO;
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        assert!(
            waited < Duration::from_secs(10),
            "server did not exit after forced drain"
        );
        std::thread::sleep(Duration::from_millis(50));
        waited += Duration::from_millis(50);
    };
    // Exit 3 = forced drain, distinguishing it from the clean SIGTERM
    // exit (0) the idle test above observes.
    assert_eq!(status.code(), Some(3), "exit status: {status:?}");
}
