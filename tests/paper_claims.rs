//! One integration test per theorem of the paper: each asserts the
//! theorem's *claim* on concrete instances (the miniature version of the
//! experiments in `EXPERIMENTS.md`).

use qrel::core::reductions::four_col::{lemma_query, reduce as reduce_graph, Graph};
use qrel::core::reductions::mon2sat::{recover_count, reduce};
use qrel::count::bounds::{hoeffding_samples, karp_luby_t};
use qrel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// Proposition 3.1: quantifier-free reliability scales polynomially —
/// growing the database must not blow up the per-tuple atom count, and
/// the runtime across a doubling of n stays near the n^k trend.
#[test]
fn prop_3_1_qf_polynomial_scaling() {
    let f = parse_formula("E(x,y) & S(x) & !S(y)").unwrap();
    let free = vec!["x".to_string(), "y".to_string()];
    let mut timings = Vec::new();
    for n in [4usize, 8, 16] {
        let db = DatabaseBuilder::new()
            .universe_size(n)
            .relation("E", 2)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_uniform_error(r(1, 7)).unwrap();
        let start = Instant::now();
        let rep = qf_reliability(&ud, &f, &free).unwrap();
        timings.push(start.elapsed().as_secs_f64());
        // The 2^{n(ψ)} constant never grows with the database.
        assert_eq!(rep.max_atoms_per_tuple, 3);
    }
    // Quadratic query: 4x tuples per doubling; allow up to ~12x wall
    // time per step to absorb noise, which still rules out exponential
    // growth in n (which would be ≥ 2^{48} across these sizes).
    assert!(timings[2] < timings[0].max(1e-4) * 400.0);
}

/// Proposition 3.2: the expected error of the fixed conjunctive query
/// counts monotone-2-SAT models exactly.
#[test]
fn prop_3_2_reduction_counts_exactly() {
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..5 {
        let f = Monotone2Sat::random(6, 7, &mut rng);
        let inst = reduce(&f);
        let q = FoQuery::new(inst.query.clone());
        let h = exact_reliability(&inst.ud, &q).unwrap().expected_error;
        assert_eq!(recover_count(&inst, &h).to_u64(), Some(count_mon2sat(&f)));
    }
}

/// Theorem 4.2: the g-normalized accepting-path count is integral, and
/// the world space size matches 2^{uncertain}.
#[test]
fn thm_4_2_counting_certificate() {
    let db = DatabaseBuilder::new()
        .universe_size(2)
        .relation("E", 2)
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 3)).unwrap();
    ud.set_error(&Fact::new(0, vec![1, 0]), r(2, 7)).unwrap();
    ud.set_error(&Fact::new(0, vec![0, 0]), r(5, 12)).unwrap();
    let q = FoQuery::new(parse_formula("exists x y. E(x,y)").unwrap());
    let cert = counting_certificate(&ud, &q).unwrap();
    // g = 3·7·12 (denominators of ν per fact; μ=0 facts contribute 1).
    assert_eq!(cert.g, BigUint::from_u64(3 * 7 * 12));
    let p = exact_probability(&ud, &q).unwrap();
    let recovered = BigRational::new(
        BigInt::from_biguint(cert.accepting_paths.clone()),
        BigInt::from_biguint(cert.g.clone()),
    );
    assert_eq!(p, recovered);
    assert_eq!(ud.worlds().count(), 8);
}

/// Theorem 5.2/5.3: Karp–Luby and the Prob-kDNF reduction hit relative
/// accuracy on an instance whose probability is far too small for naive
/// Monte-Carlo with the same budget.
#[test]
fn thm_5_3_fptras_beats_naive_mc_on_small_probabilities() {
    use qrel::logic::prop::{Dnf, Lit};
    // Pr[φ] = 2·(1/4)^10 − (1/4)^20 ≈ 1.9e-6.
    let d = Dnf::from_terms([
        (0..10).map(Lit::pos).collect::<Vec<_>>(),
        (10..20).map(Lit::pos).collect::<Vec<_>>(),
    ]);
    let probs = vec![r(1, 4); 20];
    let exact = dnf_probability_shannon(&d, &probs).to_f64();
    let mut rng = StdRng::seed_from_u64(53);

    let kl = KarpLuby::new(&d, &probs);
    let report = kl.run(0.05, 0.01, &mut rng);
    let rel_err = (report.estimate - exact).abs() / exact;
    assert!(rel_err < 0.1, "Karp–Luby rel err {rel_err}");

    // Naive MC with the same sample budget sees ~0 hits.
    let naive = qrel::count::naive_mc::naive_mc_probability_with_samples(
        &d,
        &probs,
        report.samples,
        &mut rng,
    );
    let naive_rel_err = (naive - exact).abs() / exact;
    assert!(
        naive_rel_err > 0.5,
        "naive MC unexpectedly accurate: {naive_rel_err}"
    );
}

/// Theorem 5.4 + Corollary 5.5: the existential FPTRAS drives an
/// absolute-error reliability estimate for a binary query.
#[test]
fn thm_5_4_cor_5_5_reliability_estimate() {
    let db = DatabaseBuilder::new()
        .universe_size(3)
        .relation("E", 2)
        .tuples("E", [vec![0, 1], vec![1, 2]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_relation_error("E", r(1, 6)).unwrap();
    let f = parse_formula("exists z. E(x,z) & E(z,y)").unwrap();
    let free = vec!["x".to_string(), "y".to_string()];
    let exact = exact_reliability(&ud, &FoQuery::with_free_order(f.clone(), free.clone()))
        .unwrap()
        .reliability
        .to_f64();
    let mut rng = StdRng::seed_from_u64(54);
    let rep = approximate_reliability(&ud, &f, &free, 0.1, 0.1, Route::Direct, &mut rng).unwrap();
    assert!((rep.reliability - exact).abs() <= 0.1);
}

/// Lemma 5.9: the 4-colourability reduction decides correctly on both a
/// positive and a negative instance.
#[test]
fn lemma_5_9_four_colourability() {
    let q = FoQuery::new(lemma_query());
    let yes = reduce_graph(&Graph::complete(4));
    assert!(!is_absolutely_reliable(&yes, &q).unwrap());
    let no = reduce_graph(&Graph::complete(5));
    assert!(is_absolutely_reliable(&no, &q).unwrap());
}

/// Theorem 5.12: the padding estimator achieves its absolute-error bound
/// on a Datalog query, its sample count matches Lemma 5.11's formula,
/// and the padded-expectation identity holds exactly.
#[test]
fn thm_5_12_padding_estimator() {
    let db = DatabaseBuilder::new()
        .universe_size(4)
        .relation("E", 2)
        .tuples("E", [vec![0, 1], vec![1, 2], vec![2, 3]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_relation_error("E", r(1, 8)).unwrap();

    // Boolean: "3 is reachable from 0".
    let reach = FnQuery::boolean(|db| {
        DatalogQuery::parse("T(y) :- E(0,y). T(z) :- T(y), E(y,z).", "T")
            .unwrap()
            .eval(db, &[3])
            .unwrap()
    });
    let exact = exact_probability(&ud, &reach).unwrap();

    let est = PaddingEstimator::new(r(1, 4));
    // Identity ν(ψ') = ξ² + (ξ−ξ²)ν(ψ), checked with exact rationals.
    let padded = est.padded_expectation(&exact);
    let xi = r(1, 4);
    assert_eq!(
        padded,
        xi.mul_ref(&xi)
            .add_ref(&xi.sub_ref(&xi.mul_ref(&xi)).mul_ref(&exact))
    );

    // Sample formula: t = ⌈9/(2ξ(ε/2)²)·ln(1/δ)⌉.
    assert_eq!(est.samples_for(0.2, 0.1), karp_luby_t(0.25, 0.1, 0.1));
    // The padding premium over Hoeffding is real.
    assert!(est.samples_for(0.2, 0.1) > hoeffding_samples(0.2, 0.1));

    let mut rng = StdRng::seed_from_u64(55);
    let rep = est
        .estimate_probability(&ud, &reach, 0.08, 0.05, &mut rng)
        .unwrap();
    assert!(
        (rep.estimate - exact.to_f64()).abs() <= 0.08,
        "estimate {} vs exact {}",
        rep.estimate,
        exact.to_f64()
    );
}

/// Theorem 6.2: metafinite quantifier-free reliability matches the
/// exhaustive engine, and aggregate reliability is computable exactly.
#[test]
fn thm_6_2_metafinite() {
    use qrel::metafinite::reliability::{
        exact_reliability as meta_exact, qf_reliability as meta_qf,
    };
    let mut db = FunctionalDatabase::new(3);
    db.add_function_values("f", 1, vec![r(1, 1), r(2, 1), r(3, 1)]);
    let mut ud = UnreliableFunctionalDatabase::reliable(db);
    ud.set_distribution(
        "f",
        &[1],
        EntryDistribution::new(vec![(r(2, 1), r(1, 2)), (r(5, 1), r(1, 2))]).unwrap(),
    );
    let t = MTerm::apply(
        ROp::CharLe,
        [MTerm::func("f", ["x"]), MTerm::constant(2, 1)],
    );
    let fast = meta_qf(&ud, &t, &["x".to_string()]).unwrap();
    let slow = meta_exact(&ud, &t, &["x".to_string()]).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast.expected_error, r(1, 2)); // only entry f(1) flips the flag

    let agg = MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::func("f", ["x"]));
    let rep = meta_exact(&ud, &agg, &[]).unwrap();
    assert_eq!(rep.expected_error, r(1, 2));
}

/// The grounding of Theorem 5.4 is a kDNF with k independent of n.
#[test]
fn thm_5_4_grounding_width_constant() {
    let f = parse_formula("exists x y. E(x,y) & S(x) & !S(y)").unwrap();
    let mut widths = Vec::new();
    for n in [2usize, 4, 6] {
        let db = DatabaseBuilder::new()
            .universe_size(n)
            .relation("E", 2)
            .relation("S", 1)
            .build();
        let g = ground_existential(&db, &f, &HashMap::new(), 1_000_000).unwrap();
        widths.push(g.width());
    }
    assert!(widths.iter().all(|&w| w == widths[0] && w <= 3));
}
