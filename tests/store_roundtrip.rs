//! Store round-trip integration: write → close → reopen must reproduce
//! the in-memory model bit for bit — the canonical db-hash and the solve
//! wire bytes are both pinned — and injected mid-commit crashes must
//! recover to exactly the last published state.

use proptest::prelude::*;
use qrel::prelude::*;
use qrel::prob::UnreliableDatabaseSpec;
use qrel::store::{db_hash_of, Mutation, Store, StoreError};
use qrel_faults::{points, FaultPlan};
use std::path::PathBuf;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qrel-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The exact wire bytes `POST /v1/solve` would return for this model —
/// the strongest possible round-trip pin: if any fact, probability, or
/// even relation ordering drifted through the store, these bytes change.
fn solve_bytes(ud: &UnreliableDatabase, query: &str) -> Vec<u8> {
    let q = FoQuery::parse(query).unwrap();
    let report = Solver::new()
        .with_method(Method::Exact)
        .with_seed(7)
        .with_threads(1)
        .solve(ud, &q, &Budget::unlimited())
        .unwrap();
    qrel::serve::solve_response_body(&report)
}

/// Random database over {E/2, S/1} with uncertain facts on both sides
/// of the observed/absent divide.
fn ud_strategy() -> impl Strategy<Value = UnreliableDatabase> {
    (
        2usize..4,
        proptest::collection::vec(any::<bool>(), 16),
        proptest::collection::vec(any::<bool>(), 4),
        proptest::collection::vec((0usize..20, 1u64..8, 1u64..8), 0..6),
    )
        .prop_map(|(n, adj, marks, errors)| {
            let mut edges = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    if adj[a * n + b] {
                        edges.push(vec![a as u32, b as u32]);
                    }
                }
            }
            let s: Vec<Vec<u32>> = (0..n)
                .filter(|&i| marks[i])
                .map(|i| vec![i as u32])
                .collect();
            let db = DatabaseBuilder::new()
                .universe_size(n)
                .relation("E", 2)
                .relation("S", 1)
                .tuples("E", edges)
                .tuples("S", s)
                .build();
            let mut ud = UnreliableDatabase::reliable(db);
            let total = ud.indexer().total();
            let indexer = ud.indexer().clone();
            for (fi, num, den) in errors {
                let p = if num >= den {
                    r(1, 2)
                } else {
                    r(num as i64, den)
                };
                ud.set_error(&indexer.fact_at(fi % total), p).unwrap();
            }
            ud
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn reopen_is_bit_identical(ud in ud_strategy()) {
        let dir = tmp("prop");
        let spec = UnreliableDatabaseSpec::from_model(&ud);
        let mut store = Store::init(&dir).unwrap();
        let stats = store.ingest_spec("d", &spec).unwrap();
        // The incrementally maintained hash equals the from-scratch one.
        prop_assert_eq!(stats.db_hash, db_hash_of(&ud));
        drop(store);

        let store = Store::open(&dir).unwrap();
        store.verify("d").unwrap();
        prop_assert_eq!(store.dataset("d").unwrap().db_hash, db_hash_of(&ud));
        let mut ds = store.load("d").unwrap();
        let rebuilt = ds.build().unwrap();
        prop_assert_eq!(db_hash_of(&rebuilt), db_hash_of(&ud));
        for q in [
            "exists x. S(x)",
            "exists x. exists y. E(x,y) & S(y)",
            "forall x. S(x) | exists y. E(x,y)",
        ] {
            prop_assert_eq!(solve_bytes(&rebuilt, q), solve_bytes(&ud, q));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_solve_bytes(ud in ud_strategy()) {
        let dir = tmp("compact");
        let spec = UnreliableDatabaseSpec::from_model(&ud);
        let mut store = Store::init(&dir).unwrap();
        store.ingest_spec("d", &spec).unwrap();
        // Churn: flip a fact on and back off so dead rows accumulate,
        // then compact down to the live set.
        // Snapshot S(0)'s current state so the undo restores it exactly
        // (it may already be present, uncertain, or default).
        let (was_present, was_mu) = store.load("d").unwrap().fact_state("S", &[0]).unwrap();
        let was_mu = if was_mu.is_empty() { "0".to_string() } else { was_mu };
        let batch = [Mutation::set("S", vec![0], true, "1/3")];
        let undo = [Mutation::set("S", vec![0], was_present, &was_mu)];
        let before = store.dataset("d").unwrap().db_hash;
        let with_fact = store.commit("d", &batch).unwrap().db_hash;
        let restored = store.commit("d", &undo).unwrap().db_hash;
        // XOR algebra: mutate-then-undo restores the original hash.
        prop_assert_eq!(restored, before);
        if !(was_present && was_mu == "1/3") {
            prop_assert_ne!(with_fact, before);
        }
        store.compact("d").unwrap();
        store.verify("d").unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        let rebuilt = store.load("d").unwrap().build().unwrap();
        prop_assert_eq!(solve_bytes(&rebuilt, "exists x. S(x)"),
                        solve_bytes(&ud, "exists x. S(x)"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A commit killed mid-flight — after the segment lands but before the
/// manifest publishes, or with only half the segment image written —
/// must leave the published state untouched, and a cold reopen must GC
/// the debris and verify clean. The two store fault points simulate the
/// kill at exactly the two distinct on-disk danger windows.
#[test]
fn killed_mid_commit_recovers_to_published_state() {
    for (tag, point) in [
        ("torn", points::STORE_SEGMENT_TORN_WRITE),
        ("crash", points::STORE_COMMIT_CRASH),
    ] {
        let dir = tmp(tag);
        let mut store = Store::init(&dir).unwrap();
        store
            .create_dataset(
                "d",
                vec!["a".into(), "b".into()],
                vec![("S".to_string(), 1)],
                "full",
            )
            .unwrap();
        let first = store
            .commit("d", &[Mutation::set("S", vec![0], true, "1/2")])
            .unwrap();
        store.verify("d").unwrap();

        // Arm the kill: the next commit must abort without publishing.
        let plan = FaultPlan::new(0xDEAD).with_rule(point, 1.0, 0, 1);
        let guard = plan.arm();
        let batch = [Mutation::set("S", vec![1], true, "1/4")];
        match store.commit("d", &batch) {
            Err(StoreError::Injected(_)) => {}
            other => panic!("{tag}: expected injected abort, got {other:?}"),
        }
        drop(guard);

        // Cold reopen: the aborted commit is invisible, debris is GC'd,
        // and the surviving state still verifies bit-identical.
        let mut store = Store::open(&dir).unwrap();
        store.verify("d").unwrap();
        let entry = store.dataset("d").unwrap();
        assert_eq!(entry.db_hash, first.db_hash, "{tag}");
        assert_eq!(entry.live_facts, 1, "{tag}");
        for leftover in std::fs::read_dir(dir.join("segments")).unwrap() {
            let name = leftover.unwrap().file_name();
            let name = name.to_string_lossy().into_owned();
            assert!(!name.ends_with(".tmp"), "{tag}: GC left debris {name}");
        }
        // The same batch lands cleanly once the faults are gone.
        let redo = store.commit("d", &batch).unwrap();
        assert_eq!(redo.live_facts, 2, "{tag}");
        store.verify("d").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
