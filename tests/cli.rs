//! Integration tests for the `qrel` CLI binary.

use std::process::Command;

fn qrel(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_qrel"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Like [`qrel`], but exposes the raw exit code — the reliability
/// command distinguishes 0 (full guarantee), 2 (degraded), 1 (hard
/// failure).
fn qrel_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_qrel"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_example_spec() -> tempfile_path::TempPath {
    let (ok, spec, _) = qrel(&["example-spec"]);
    assert!(ok);
    tempfile_path::write(&spec)
}

/// Minimal temp-file helper (std only).
mod tempfile_path {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    impl TempPath {
        pub fn as_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    pub fn write(contents: &str) -> TempPath {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "qrel-cli-test-{}-{:x}.json",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::write(&p, contents).unwrap();
        TempPath(p)
    }
}

#[test]
fn help_runs() {
    let (ok, stdout, _) = qrel(&["help"]);
    assert!(ok);
    assert!(stdout.contains("reliability"));
    // No args also prints help.
    let (ok2, stdout2, _) = qrel(&[]);
    assert!(ok2);
    assert!(stdout2.contains("commands"));
}

#[test]
fn example_spec_is_valid_json_and_checks() {
    let spec = write_example_spec();
    let (ok, stdout, _) = qrel(&["check", "--db", spec.as_str()]);
    assert!(ok);
    assert!(stdout.contains("spec OK"));
    assert!(stdout.contains("uncertain facts: 2"));
}

#[test]
fn exact_probability_and_reliability() {
    let spec = write_example_spec();
    let (ok, stdout, _) = qrel(&[
        "probability",
        "--db",
        spec.as_str(),
        "--query",
        "exists x y. Knows(x, y)",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Pr[𝔅 ⊨ ψ] = 1 "), "{stdout}");

    let (ok, stdout, _) = qrel(&[
        "reliability",
        "--db",
        spec.as_str(),
        "--query",
        "Knows(x, y)",
        "--method",
        "qf",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("R_ψ ="), "{stdout}");
}

#[test]
fn estimators_run_with_seeds() {
    let spec = write_example_spec();
    for method in ["fptras", "padding"] {
        let (ok, stdout, stderr) = qrel(&[
            "probability",
            "--db",
            spec.as_str(),
            "--query",
            "exists x. Admin(x)",
            "--method",
            method,
            "--eps",
            "0.1",
            "--delta",
            "0.1",
            "--seed",
            "7",
        ]);
        assert!(ok, "method {method}: {stderr}");
        assert!(stdout.contains("≈"), "method {method}: {stdout}");
    }
}

#[test]
fn worlds_listing() {
    let spec = write_example_spec();
    let (ok, stdout, _) = qrel(&["worlds", "--db", spec.as_str(), "--limit", "2"]);
    assert!(ok);
    assert!(stdout.contains("4 worlds"));
    assert!(stdout.contains("world #0"));
    assert!(!stdout.contains("world #2"), "limit respected");
}

#[test]
fn error_paths() {
    // Missing file.
    let (ok, _, stderr) = qrel(&["check", "--db", "/nonexistent.json"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
    // Unknown command.
    let (ok, _, stderr) = qrel(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    // Bad query.
    let spec = write_example_spec();
    let (ok, _, stderr) = qrel(&[
        "probability",
        "--db",
        spec.as_str(),
        "--query",
        "exists x. (",
    ]);
    assert!(!ok);
    assert!(stderr.contains("error"));
    // Free variables rejected for probability.
    let (ok, _, stderr) = qrel(&["probability", "--db", spec.as_str(), "--query", "Admin(x)"]);
    assert!(!ok);
    assert!(stderr.contains("Boolean"));
    // Bad --free spec.
    let (ok, _, stderr) = qrel(&[
        "reliability",
        "--db",
        spec.as_str(),
        "--query",
        "Admin(x)",
        "--free",
        "y",
    ]);
    assert!(!ok);
    assert!(stderr.contains("free"));
}

#[test]
fn auto_method_exact_on_small_spec_exits_zero() {
    let spec = write_example_spec();
    let (code, stdout, stderr) = qrel_code(&[
        "reliability",
        "--db",
        spec.as_str(),
        "--query",
        "exists x. Admin(x)",
        "--method",
        "auto",
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    assert!(stdout.contains("R_ψ ="), "{stdout}");
    assert!(stdout.contains("confidence: exact"), "{stdout}");
    assert!(stdout.contains("trace: tried "), "{stdout}");
}

#[test]
fn tight_budget_degrades_with_trace_and_distinct_exit_code() {
    // A self-join, so the plan rung declines; 16 uncertain facts →
    // 2^16 worlds: exact can't fit --max-worlds 100, and the sampling
    // rungs trip on --max-samples 40, so auto must fall down the
    // ladder and report a partial answer.
    let spec = concat!(env!("CARGO_MANIFEST_DIR"), "/data/uncertain16.json");
    let (code, stdout, stderr) = qrel_code(&[
        "reliability",
        "--db",
        spec,
        "--query",
        "exists x y. (S(x) & S(y))",
        "--method",
        "auto",
        "--timeout-ms",
        "200",
        "--max-worlds",
        "100",
        "--max-samples",
        "40",
    ]);
    assert_eq!(code, Some(2), "{stdout}{stderr}");
    assert!(stdout.contains("R_ψ"), "{stdout}");
    assert!(stdout.contains("confidence: partial"), "{stdout}");
    assert!(stdout.contains("trace: tried "), "{stdout}");
    assert!(stdout.contains("fell back to "), "{stdout}");
}

#[test]
fn explicit_exact_method_stays_exact_exit_zero() {
    let spec = write_example_spec();
    let (code, stdout, stderr) = qrel_code(&[
        "reliability",
        "--db",
        spec.as_str(),
        "--query",
        "exists x y. Knows(x, y)",
        "--method",
        "exact",
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    assert!(stdout.contains("R_ψ ="), "{stdout}");
    assert!(stdout.contains("confidence: exact"), "{stdout}");
}

#[test]
fn explicit_sampling_method_with_guarantee_exits_zero() {
    // An explicitly requested sampling method that delivers its (ε, δ)
    // guarantee is the strongest answer the caller asked for: exit 0.
    let spec = write_example_spec();
    let (code, stdout, stderr) = qrel_code(&[
        "reliability",
        "--db",
        spec.as_str(),
        "--query",
        "exists x. Admin(x)",
        "--method",
        "mc",
        "--eps",
        "0.2",
        "--delta",
        "0.1",
        "--seed",
        "7",
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    assert!(stdout.contains("R_ψ ≈"), "{stdout}");
}

#[test]
fn bad_method_is_a_hard_failure_exit_one() {
    let spec = write_example_spec();
    let (code, _, stderr) = qrel_code(&[
        "reliability",
        "--db",
        spec.as_str(),
        "--query",
        "exists x. Admin(x)",
        "--method",
        "bogus",
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("unknown method"), "{stderr}");
}

#[test]
fn deterministic_with_same_seed() {
    let spec = write_example_spec();
    let run = || {
        qrel(&[
            "probability",
            "--db",
            spec.as_str(),
            "--query",
            "exists x. Admin(x)",
            "--method",
            "padding",
            "--seed",
            "42",
        ])
        .1
    };
    assert_eq!(run(), run());
}

/// Satellite of the job-API rearchitecture: the CLI's `--json` output,
/// the HTTP solve body, and the committed golden file are one wire
/// schema, byte for byte. A drift in any serializer shows up here.
#[test]
fn json_output_matches_http_solve_body_and_golden_file() {
    use std::io::{Read, Write};

    let db = concat!(env!("CARGO_MANIFEST_DIR"), "/data/example.json");
    let (code, stdout, stderr) = qrel_code(&[
        "reliability",
        "--db",
        db,
        "--query",
        "exists x. Admin(x)",
        "--method",
        "exact",
        "--json",
        "true",
    ]);
    assert_eq!(code, Some(0), "{stdout}{stderr}");
    let cli_body = stdout
        .strip_suffix('\n')
        .expect("--json output ends with one newline");

    // The same request over HTTP.
    let server = qrel::serve::Server::bind(qrel::serve::ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        preload: vec![std::path::PathBuf::from(db)],
        ..qrel::serve::ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    let body = r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact"}"#;
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(
        format!(
            "POST /v1/solve HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    let (head, http_body) = raw.split_once("\r\n\r\n").expect("complete response");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    handle.shutdown();
    join.join().unwrap();

    assert_eq!(
        cli_body, http_body,
        "CLI --json and POST /v1/solve must emit identical bytes"
    );
    let golden = include_str!("golden/solve_example_exact.json");
    assert_eq!(cli_body, golden, "wire schema drifted from the golden file");
}

/// Satellite of the safe-plan compiler: `qrel explain` output for the
/// canonical query shapes is pinned as golden files. Any change to the
/// plan algebra, the renderer, or the decline messages shows up here.
#[test]
fn explain_plans_match_goldens() {
    let cases: &[(&str, &str, i32)] = &[
        (
            "exists x y. (S(x) & E(x, y))",
            include_str!("golden/explain_safe_chain.txt"),
            0,
        ),
        (
            "exists x y z. (E(x, y) & F(x, z))",
            include_str!("golden/explain_safe_star.txt"),
            0,
        ),
        (
            "exists x y. (S(x) & E(x, y) & T(y))",
            include_str!("golden/explain_unsafe_h0.txt"),
            2,
        ),
        (
            "S(x) & !T(y)",
            include_str!("golden/explain_qf_free.txt"),
            0,
        ),
        (
            "forall x. (S(x) | T(x))",
            include_str!("golden/explain_forall.txt"),
            0,
        ),
        (
            "exists x y. (S(x) & S(y))",
            include_str!("golden/explain_self_join.txt"),
            2,
        ),
    ];
    for (query, golden, want_code) in cases {
        let (code, stdout, stderr) = qrel_code(&["explain", "--query", query]);
        assert_eq!(code, Some(*want_code), "{query}: {stdout}{stderr}");
        assert_eq!(&stdout, golden, "explain output drifted for {query}");
    }
}

/// A solver failure in `--json` mode prints the same structured error
/// envelope the HTTP endpoints return, on stdout, with exit code 1.
#[test]
fn json_output_uses_the_error_envelope_on_failure() {
    let db = concat!(env!("CARGO_MANIFEST_DIR"), "/data/example.json");
    let (code, stdout, _) = qrel_code(&[
        "reliability",
        "--db",
        db,
        "--query",
        "exists x. Admin(x)",
        "--method",
        "qf",
        "--json",
        "true",
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    let env =
        qrel::serve::ErrorEnvelope::from_body(stdout.trim_end().as_bytes()).expect("envelope");
    assert_eq!(env.code, "unprocessable");
    assert!(!env.retryable);
}
