//! Integration tests for the `qrel` CLI binary.

use std::process::Command;

fn qrel(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_qrel"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_example_spec() -> tempfile_path::TempPath {
    let (ok, spec, _) = qrel(&["example-spec"]);
    assert!(ok);
    tempfile_path::write(&spec)
}

/// Minimal temp-file helper (std only).
mod tempfile_path {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    impl TempPath {
        pub fn as_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    pub fn write(contents: &str) -> TempPath {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "qrel-cli-test-{}-{:x}.json",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::write(&p, contents).unwrap();
        TempPath(p)
    }
}

#[test]
fn help_runs() {
    let (ok, stdout, _) = qrel(&["help"]);
    assert!(ok);
    assert!(stdout.contains("reliability"));
    // No args also prints help.
    let (ok2, stdout2, _) = qrel(&[]);
    assert!(ok2);
    assert!(stdout2.contains("commands"));
}

#[test]
fn example_spec_is_valid_json_and_checks() {
    let spec = write_example_spec();
    let (ok, stdout, _) = qrel(&["check", "--db", spec.as_str()]);
    assert!(ok);
    assert!(stdout.contains("spec OK"));
    assert!(stdout.contains("uncertain facts: 2"));
}

#[test]
fn exact_probability_and_reliability() {
    let spec = write_example_spec();
    let (ok, stdout, _) = qrel(&[
        "probability",
        "--db",
        spec.as_str(),
        "--query",
        "exists x y. Knows(x, y)",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Pr[𝔅 ⊨ ψ] = 1 "), "{stdout}");

    let (ok, stdout, _) = qrel(&[
        "reliability",
        "--db",
        spec.as_str(),
        "--query",
        "Knows(x, y)",
        "--method",
        "qf",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("R_ψ ="), "{stdout}");
}

#[test]
fn estimators_run_with_seeds() {
    let spec = write_example_spec();
    for method in ["fptras", "padding"] {
        let (ok, stdout, stderr) = qrel(&[
            "probability",
            "--db",
            spec.as_str(),
            "--query",
            "exists x. Admin(x)",
            "--method",
            method,
            "--eps",
            "0.1",
            "--delta",
            "0.1",
            "--seed",
            "7",
        ]);
        assert!(ok, "method {method}: {stderr}");
        assert!(stdout.contains("≈"), "method {method}: {stdout}");
    }
}

#[test]
fn worlds_listing() {
    let spec = write_example_spec();
    let (ok, stdout, _) = qrel(&["worlds", "--db", spec.as_str(), "--limit", "2"]);
    assert!(ok);
    assert!(stdout.contains("4 worlds"));
    assert!(stdout.contains("world #0"));
    assert!(!stdout.contains("world #2"), "limit respected");
}

#[test]
fn error_paths() {
    // Missing file.
    let (ok, _, stderr) = qrel(&["check", "--db", "/nonexistent.json"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
    // Unknown command.
    let (ok, _, stderr) = qrel(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    // Bad query.
    let spec = write_example_spec();
    let (ok, _, stderr) = qrel(&[
        "probability",
        "--db",
        spec.as_str(),
        "--query",
        "exists x. (",
    ]);
    assert!(!ok);
    assert!(stderr.contains("error"));
    // Free variables rejected for probability.
    let (ok, _, stderr) = qrel(&["probability", "--db", spec.as_str(), "--query", "Admin(x)"]);
    assert!(!ok);
    assert!(stderr.contains("Boolean"));
    // Bad --free spec.
    let (ok, _, stderr) = qrel(&[
        "reliability",
        "--db",
        spec.as_str(),
        "--query",
        "Admin(x)",
        "--free",
        "y",
    ]);
    assert!(!ok);
    assert!(stderr.contains("free"));
}

#[test]
fn deterministic_with_same_seed() {
    let spec = write_example_spec();
    let run = || {
        qrel(&[
            "probability",
            "--db",
            spec.as_str(),
            "--query",
            "exists x. Admin(x)",
            "--method",
            "padding",
            "--seed",
            "42",
        ])
        .1
    };
    assert_eq!(run(), run());
}
