//! Property-based tests for the safe-plan compiler: generated
//! self-join-free conjunctive queries must round-trip through the
//! syntactic hierarchy test (the compiler accepts exactly the
//! hierarchical shapes), and a compiled plan's value must be invariant
//! under atom reordering and variable renaming — and equal to the
//! world-enumeration oracle.

use proptest::prelude::*;
use qrel::prelude::*;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// One atom of a generated sjf-CQ over the fixed vocabulary
/// {S/1, T/1, E/2, F/2} and the variable pool {x, y, z}.
#[derive(Clone, Debug)]
struct Atom {
    rel: &'static str,
    vars: Vec<&'static str>,
}

const VARS: [&str; 3] = ["x", "y", "z"];

impl Atom {
    fn render(&self, rename: &dyn Fn(&str) -> String) -> String {
        let args: Vec<String> = self.vars.iter().map(|v| rename(v)).collect();
        format!("{}({})", self.rel, args.join(", "))
    }
}

/// Strategy: a self-join-free conjunction of 1..=4 atoms. Each relation
/// is used at most once (sjf by construction); variable choices are
/// arbitrary, so the result is sometimes hierarchical and sometimes not.
fn atoms_strategy() -> impl Strategy<Value = Vec<Atom>> {
    (
        proptest::collection::vec(any::<bool>(), 4),
        proptest::collection::vec(0usize..3, 6),
    )
        .prop_map(|(used, picks)| {
            let mut atoms = Vec::new();
            if used[0] {
                atoms.push(Atom {
                    rel: "S",
                    vars: vec![VARS[picks[0]]],
                });
            }
            if used[1] {
                atoms.push(Atom {
                    rel: "T",
                    vars: vec![VARS[picks[1]]],
                });
            }
            if used[2] {
                atoms.push(Atom {
                    rel: "E",
                    vars: vec![VARS[picks[2]], VARS[picks[3]]],
                });
            }
            if used[3] {
                atoms.push(Atom {
                    rel: "F",
                    vars: vec![VARS[picks[4]], VARS[picks[5]]],
                });
            }
            if atoms.is_empty() {
                atoms.push(Atom {
                    rel: "S",
                    vars: vec!["x"],
                });
            }
            atoms
        })
}

/// Renders the Boolean sentence `exists <vars>. (a1 & a2 & ...)` with an
/// optional variable renaming and atom order.
fn sentence(atoms: &[Atom], order: &[usize], rename: &dyn Fn(&str) -> String) -> String {
    let mut vars: Vec<String> = Vec::new();
    for a in atoms {
        for v in &a.vars {
            let n = rename(v);
            if !vars.contains(&n) {
                vars.push(n);
            }
        }
    }
    let body: Vec<String> = order.iter().map(|&i| atoms[i].render(rename)).collect();
    format!("exists {}. ({})", vars.join(" "), body.join(" & "))
}

/// Strategy: a database over {S/1, T/1, E/2, F/2} with n ∈ 2..4,
/// arbitrary tuple content, and error assignments on up to 6 facts.
fn ud_strategy() -> impl Strategy<Value = UnreliableDatabase> {
    (
        2usize..4,
        proptest::collection::vec(any::<bool>(), 4),
        proptest::collection::vec(any::<bool>(), 4),
        proptest::collection::vec(any::<bool>(), 16),
        proptest::collection::vec(any::<bool>(), 16),
        proptest::collection::vec((0usize..24, 1u64..8, 1u64..8), 0..7),
    )
        .prop_map(|(n, s, t, e, f, errors)| {
            let unary = |marks: &[bool]| -> Vec<Vec<u32>> {
                (0..n)
                    .filter(|&i| marks[i])
                    .map(|i| vec![i as u32])
                    .collect()
            };
            let binary = |adj: &[bool]| -> Vec<Vec<u32>> {
                let mut out = Vec::new();
                for a in 0..n {
                    for b in 0..n {
                        if adj[a * n + b] {
                            out.push(vec![a as u32, b as u32]);
                        }
                    }
                }
                out
            };
            let db = DatabaseBuilder::new()
                .universe_size(n)
                .relation("S", 1)
                .relation("T", 1)
                .relation("E", 2)
                .relation("F", 2)
                .tuples("S", unary(&s))
                .tuples("T", unary(&t))
                .tuples("E", binary(&e))
                .tuples("F", binary(&f))
                .build();
            let mut ud = UnreliableDatabase::reliable(db);
            let total = ud.indexer().total();
            let indexer = ud.indexer().clone();
            for (fi, num, den) in errors {
                let p = if num >= den {
                    r(1, 2)
                } else {
                    r(num as i64, den)
                };
                ud.set_error(&indexer.fact_at(fi % total), p).unwrap();
            }
            ud
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The compiler accepts a generated sjf-CQ exactly when the
    /// independent pairwise hierarchy test says it is hierarchical
    /// (Dalvi–Suciu dichotomy, restricted to the sjf fragment).
    #[test]
    fn compile_accepts_exactly_the_hierarchical_sjf_cqs(atoms in atoms_strategy()) {
        let order: Vec<usize> = (0..atoms.len()).collect();
        let src = sentence(&atoms, &order, &|v| v.to_string());
        let f = parse_formula(&src).unwrap();
        let hier = qrel::plan::pairwise_hierarchical(&f);
        prop_assert!(hier.is_some(), "sjf-CQ left the pairwise fragment: {}", src);
        match qrel::plan::compile(&f) {
            Ok(_) => prop_assert_eq!(
                hier, Some(true),
                "compiler accepted a non-hierarchical query: {}", src
            ),
            Err(reason) => prop_assert_eq!(
                hier, Some(false),
                "compiler declined a hierarchical sjf-CQ ({}): {}", reason, src
            ),
        }
    }

    /// Where a plan exists, its value equals the Gray-code world
    /// enumeration oracle on every generated database.
    #[test]
    fn plan_probability_matches_world_enumeration(
        atoms in atoms_strategy(),
        ud in ud_strategy(),
    ) {
        let order: Vec<usize> = (0..atoms.len()).collect();
        let src = sentence(&atoms, &order, &|v| v.to_string());
        let f = parse_formula(&src).unwrap();
        if let Ok(plan) = qrel::plan::compile(&f) {
            let via_plan = qrel::plan::sentence_probability(&ud, &plan).unwrap();
            let via_worlds = exact_probability(&ud, &FoQuery::new(f)).unwrap();
            prop_assert_eq!(via_plan, via_worlds, "query {}", src);
        }
    }

    /// The plan's value is invariant under reordering the atoms of the
    /// conjunction: both orders compile (safety is order-independent)
    /// and evaluate to the same probability.
    #[test]
    fn plan_value_is_invariant_under_atom_reordering(
        atoms in atoms_strategy(),
        ud in ud_strategy(),
        salt in 0usize..24,
    ) {
        let forward: Vec<usize> = (0..atoms.len()).collect();
        let mut shuffled = forward.clone();
        // A deterministic permutation driven by the generated salt.
        shuffled.rotate_left(salt % atoms.len().max(1));
        if salt % 2 == 1 {
            shuffled.reverse();
        }
        let src_a = sentence(&atoms, &forward, &|v| v.to_string());
        let src_b = sentence(&atoms, &shuffled, &|v| v.to_string());
        let fa = parse_formula(&src_a).unwrap();
        let fb = parse_formula(&src_b).unwrap();
        let (pa, pb) = (qrel::plan::compile(&fa), qrel::plan::compile(&fb));
        prop_assert_eq!(
            pa.is_ok(), pb.is_ok(),
            "safety differed under reordering: {} vs {}", src_a, src_b
        );
        if let (Ok(pa), Ok(pb)) = (pa, pb) {
            prop_assert_eq!(
                qrel::plan::sentence_probability(&ud, &pa).unwrap(),
                qrel::plan::sentence_probability(&ud, &pb).unwrap(),
                "value differed under reordering: {} vs {}", src_a, src_b
            );
        }
    }

    /// The plan's value is invariant under a bijective variable
    /// renaming x→u, y→v, z→w.
    #[test]
    fn plan_value_is_invariant_under_variable_renaming(
        atoms in atoms_strategy(),
        ud in ud_strategy(),
    ) {
        let order: Vec<usize> = (0..atoms.len()).collect();
        let rename = |v: &str| -> String {
            match v {
                "x" => "u".to_string(),
                "y" => "v".to_string(),
                _ => "w".to_string(),
            }
        };
        let src_a = sentence(&atoms, &order, &|v| v.to_string());
        let src_b = sentence(&atoms, &order, &rename);
        let fa = parse_formula(&src_a).unwrap();
        let fb = parse_formula(&src_b).unwrap();
        let (pa, pb) = (qrel::plan::compile(&fa), qrel::plan::compile(&fb));
        prop_assert_eq!(
            pa.is_ok(), pb.is_ok(),
            "safety differed under renaming: {} vs {}", src_a, src_b
        );
        if let (Ok(pa), Ok(pb)) = (pa, pb) {
            prop_assert_eq!(
                qrel::plan::sentence_probability(&ud, &pa).unwrap(),
                qrel::plan::sentence_probability(&ud, &pb).unwrap(),
                "value differed under renaming: {} vs {}", src_a, src_b
            );
        }
    }
}
