//! The determinism contract, end to end: for a fixed seed, every
//! sampling engine and the solver produce bit-identical answers
//! regardless of the thread count, the `RAYON_NUM_THREADS` hint, or how
//! many times they are re-run. The contract holds because the shard
//! count is fixed (not derived from the machine), each shard owns a
//! seed-split RNG, and shard results merge as exact integers.

use qrel::arith::BigRational;
use qrel::count::naive_mc::naive_mc_probability_sharded;
use qrel::count::KarpLuby;
use qrel::logic::prop::{Dnf, Lit};
use qrel::prelude::{Budget, DatabaseBuilder, FoQuery, Method, Solver, UnreliableDatabase};
use qrel_par::DEFAULT_SHARDS;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

fn small_ud() -> UnreliableDatabase {
    let db = DatabaseBuilder::new()
        .universe_size(3)
        .relation("S", 1)
        .tuples("S", [vec![0], vec![2]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_relation_error("S", r(1, 4)).unwrap();
    ud
}

#[test]
fn samplers_are_bit_identical_across_thread_counts_and_reruns() {
    let d = Dnf::from_terms([
        vec![Lit::pos(0), Lit::neg(1)],
        vec![Lit::pos(2), Lit::pos(3)],
    ]);
    let probs = vec![r(2, 5); 4];
    let kl = KarpLuby::new(&d, &probs);
    let kl_base = kl.run_sharded(20_000, 7, DEFAULT_SHARDS, 1).estimate;
    let mc_base = naive_mc_probability_sharded(&d, &probs, 20_000, 7, DEFAULT_SHARDS, 1);
    for threads in [1usize, 2, 4, 8] {
        for _rerun in 0..2 {
            let kl_est = kl.run_sharded(20_000, 7, DEFAULT_SHARDS, threads).estimate;
            let mc_est =
                naive_mc_probability_sharded(&d, &probs, 20_000, 7, DEFAULT_SHARDS, threads);
            assert_eq!(
                kl_est.to_bits(),
                kl_base.to_bits(),
                "KL at {threads} threads"
            );
            assert_eq!(
                mc_est.to_bits(),
                mc_base.to_bits(),
                "MC at {threads} threads"
            );
        }
    }
}

/// The solver consults `RAYON_NUM_THREADS` only when no explicit thread
/// count is set — and neither source may change the answer. This test
/// owns the env var for the whole binary: no other test here reads it.
#[test]
fn solver_answer_ignores_the_rayon_num_threads_hint() {
    let ud = small_ud();
    // A self-join, so the plan rung declines; capping exact enumeration
    // then lands the ladder on a sampling rung — the only place thread
    // count could leak into the answer.
    let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
    let solve = || {
        Solver::new()
            .with_seed(11)
            .with_accuracy(0.2, 0.1)
            .with_max_exact_worlds(4)
            .solve(&ud, &q, &Budget::unlimited())
            .unwrap()
    };
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let base = solve();
    assert_eq!(base.method, Method::Fptras);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let hinted = solve();
    std::env::remove_var("RAYON_NUM_THREADS");
    let unhinted = solve();
    let explicit = Solver::new()
        .with_seed(11)
        .with_accuracy(0.2, 0.1)
        .with_max_exact_worlds(4)
        .with_threads(3)
        .solve(&ud, &q, &Budget::unlimited())
        .unwrap();
    for (label, rep) in [
        ("hint=4", &hinted),
        ("no hint", &unhinted),
        ("explicit 3", &explicit),
    ] {
        assert_eq!(rep.method, base.method, "{label}");
        assert_eq!(rep.samples, base.samples, "{label}");
        assert_eq!(
            rep.reliability.to_bits(),
            base.reliability.to_bits(),
            "{label}"
        );
    }
}

#[test]
fn solver_rerun_with_the_same_seed_is_bit_identical() {
    let ud = small_ud();
    let q = FoQuery::parse("exists x. S(x)").unwrap();
    let solve = |threads: usize| {
        Solver::new()
            .with_seed(23)
            .with_accuracy(0.2, 0.1)
            .with_max_exact_worlds(4)
            .with_threads(threads)
            .solve(&ud, &q, &Budget::unlimited())
            .unwrap()
    };
    let first = solve(2);
    let second = solve(2);
    assert_eq!(
        first.reliability.to_bits(),
        second.reliability.to_bits(),
        "same seed, same threads must reproduce the same bits"
    );
    assert_eq!(first.samples, second.samples);
    assert_eq!(first.method, second.method);
}
