//! Regression tests for the code-review findings: serde deserialization
//! must not be a back door around type invariants, and fact indexing
//! must hard-fail on malformed facts. Untrusted input reaches these
//! types through the CLI's user-edited JSON spec files.

use qrel::prelude::*;

#[test]
fn biguint_deserialize_canonicalizes_trailing_zeros() {
    let x: BigUint = serde_json::from_str(r#"{"limbs":[0]}"#).unwrap();
    assert!(x.is_zero());
    assert_eq!(x, BigUint::zero());
    let y: BigUint = serde_json::from_str(r#"{"limbs":[7,0,0]}"#).unwrap();
    assert_eq!(y, BigUint::from_u32(7));
    assert_eq!(y.bit_length(), 3);
}

#[test]
fn bigint_deserialize_renormalizes_zero() {
    // sign Negative with zero magnitude must collapse to canonical zero.
    let x: BigInt = serde_json::from_str(r#"{"sign":"Negative","mag":{"limbs":[]}}"#).unwrap();
    assert!(x.is_zero());
    assert_eq!(x, BigInt::zero());
    // Zero sign with nonzero magnitude is repaired to positive.
    let y: BigInt = serde_json::from_str(r#"{"sign":"Zero","mag":{"limbs":[3]}}"#).unwrap();
    assert_eq!(y, BigInt::from_i64(3));
}

#[test]
fn bigrational_deserialize_rejects_zero_denominator() {
    let bad = r#"{"numer":{"sign":"Positive","mag":{"limbs":[1]}},"denom":{"limbs":[]}}"#;
    assert!(serde_json::from_str::<BigRational>(bad).is_err());
    // Unnormalized 2/4 is reduced to 1/2.
    let raw = r#"{"numer":{"sign":"Positive","mag":{"limbs":[2]}},"denom":{"limbs":[4]}}"#;
    let x: BigRational = serde_json::from_str(raw).unwrap();
    assert_eq!(x, BigRational::from_ratio(1, 2));
}

#[test]
fn dnf_deserialize_renormalizes_terms() {
    use qrel::logic::prop::Dnf;
    // A contradictory term (x0 ∧ ¬x0) must be dropped, not kept.
    let raw = r#"{"terms":[[{"var":0,"positive":true},{"var":0,"positive":false}]]}"#;
    let d: Dnf = serde_json::from_str(raw).unwrap();
    assert!(d.is_false());
    // An unsorted term is sorted (binary-search-based subsumption relies
    // on it).
    let raw2 = r#"{"terms":[[{"var":5,"positive":true},{"var":1,"positive":true}]]}"#;
    let d2: Dnf = serde_json::from_str(raw2).unwrap();
    assert!(d2.terms()[0].windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn relation_deserialize_rejects_arity_mismatch() {
    let raw = r#"{"arity":2,"tuples":[[0,1,2]]}"#;
    assert!(serde_json::from_str::<Relation>(raw).is_err());
    let ok = r#"{"arity":2,"tuples":[[0,1]]}"#;
    assert!(serde_json::from_str::<Relation>(ok).is_ok());
}

#[test]
fn database_deserialize_cross_validates() {
    let good = DatabaseBuilder::new()
        .universe_size(2)
        .relation("E", 2)
        .tuples("E", [vec![0, 1]])
        .build();
    let mut v: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&good).unwrap()).unwrap();
    // Out-of-universe element.
    v["relations"][0]["tuples"] = serde_json::json!([[0, 9]]);
    assert!(serde_json::from_value::<Database>(v.clone()).is_err());
    // Arity disagreeing with the vocabulary.
    v["relations"][0] = serde_json::json!({"arity": 1, "tuples": [[0]]});
    assert!(serde_json::from_value::<Database>(v.clone()).is_err());
    // Missing relation instance.
    v["relations"] = serde_json::json!([]);
    assert!(serde_json::from_value::<Database>(v).is_err());
}

#[test]
fn universe_and_vocabulary_deserialize_reject_duplicates() {
    assert!(serde_json::from_str::<Universe>(r#"{"names":["a","a"]}"#).is_err());
    assert!(serde_json::from_str::<Vocabulary>(
        r#"{"symbols":[{"name":"E","arity":2},{"name":"E","arity":1}]}"#
    )
    .is_err());
}

#[test]
fn cli_spec_with_malformed_database_is_rejected_end_to_end() {
    // The whole point: the CLI's spec loader must reject, not mis-answer.
    let good = DatabaseBuilder::new()
        .universe_size(3)
        .relation("E", 2)
        .tuples("E", [vec![0, 1]])
        .build();
    let spec = qrel::prob::UnreliableDatabaseSpec {
        database: good,
        model: "full".into(),
        errors: vec![],
    };
    let mut v: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    v["database"]["relations"][0]["tuples"] = serde_json::json!([[0, 1, 2]]);
    assert!(
        serde_json::from_value::<qrel::prob::UnreliableDatabaseSpec>(v).is_err(),
        "wrong-arity tuple must not deserialize"
    );
}

#[test]
#[should_panic(expected = "out of universe")]
fn fact_indexer_rejects_out_of_range_in_release_too() {
    let db = DatabaseBuilder::new()
        .universe_size(2)
        .relation("E", 2)
        .relation("S", 1)
        .build();
    let ix = db.fact_indexer();
    // Previously a silent alias of S(0)'s index in release builds.
    let _ = ix.index_of(&Fact::new(0, vec![1, 2]));
}

#[test]
fn atom_table_fresh_never_aliases() {
    use qrel::logic::prop::AtomTable;
    let mut t = AtomTable::new();
    let user = t.intern("Y#1"); // adversarially shaped user atom
    let f1 = t.fresh("Y");
    let f2 = t.fresh("Y");
    assert_ne!(f1, user);
    assert_ne!(f2, user);
    assert_ne!(f1, f2);
}
