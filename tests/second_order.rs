//! Second-order queries through the Theorem 4.2 engine.
//!
//! The theorem covers *all* second-order queries; our SO evaluator
//! enumerates relation assignments (feasible on tiny domains), so the
//! exact reliability engine handles SO formulas out of the box. These
//! tests pin the behaviour by comparing SO queries against equivalent
//! first-order formulations.

use qrel::prelude::*;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

fn setup() -> UnreliableDatabase {
    let db = DatabaseBuilder::new()
        .universe_size(3)
        .relation("E", 2)
        .relation("S", 1)
        .tuples("E", [vec![0, 1], vec![1, 2]])
        .tuples("S", [vec![0]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 4)).unwrap();
    ud.set_error(&Fact::new(1, vec![1]), r(1, 3)).unwrap();
    ud
}

#[test]
fn so_query_equivalent_to_fo_has_same_reliability() {
    let ud = setup();
    // ∃X ((∀x X(x) → S(x)) ∧ ∃x X(x))  ≡  ∃x S(x).
    let so = Formula::ExistsRel(
        "X".into(),
        1,
        Box::new(parse_formula("(forall x. X(x) -> S(x)) & (exists x. X(x))").unwrap()),
    );
    let fo = parse_formula("exists x. S(x)").unwrap();
    let so_rep = exact_reliability(&ud, &FoQuery::new(so)).unwrap();
    let fo_rep = exact_reliability(&ud, &FoQuery::new(fo)).unwrap();
    assert_eq!(so_rep.expected_error, fo_rep.expected_error);
    assert_eq!(so_rep.reliability, fo_rep.reliability);
}

#[test]
fn universal_so_query() {
    let ud = setup();
    // ∀X (∃x X(x) ∨ ∀x ¬X(x)) — a tautology: reliability 1 despite noise.
    let so = Formula::ForallRel(
        "X".into(),
        1,
        Box::new(parse_formula("(exists x. X(x)) | (forall x. !X(x))").unwrap()),
    );
    let rep = exact_reliability(&ud, &FoQuery::new(so)).unwrap();
    assert_eq!(rep.reliability, BigRational::one());
}

#[test]
fn so_counting_certificate_valid() {
    use qrel::core::exact::counting_certificate;
    let ud = setup();
    // "There is a set containing exactly the S-elements and nonempty" —
    // probability equals Pr[∃x S(x)].
    let so = Formula::ExistsRel(
        "X".into(),
        1,
        Box::new(
            parse_formula("(forall x. (X(x) -> S(x)) & (S(x) -> X(x))) & (exists x. X(x))")
                .unwrap(),
        ),
    );
    let cert = counting_certificate(&ud, &FoQuery::new(so.clone())).unwrap();
    let p = exact_probability(&ud, &FoQuery::new(so)).unwrap();
    let recovered = BigRational::new(
        BigInt::from_biguint(cert.accepting_paths),
        BigInt::from_biguint(cert.g),
    );
    assert_eq!(p, recovered);
}

#[test]
fn so_graph_property_three_colourability_style() {
    // ∃X (proper cut): some edge crosses an (X, ¬X) partition — true iff
    // the graph has at least one edge. Reliability = reliability of
    // ∃xy E(x,y) under the same noise.
    let ud = setup();
    let cut = Formula::ExistsRel(
        "X".into(),
        1,
        Box::new(parse_formula("exists x y. E(x,y) & X(x) & !X(y)").unwrap()),
    );
    let edge = parse_formula("exists x y. E(x,y)").unwrap();
    let a = exact_probability(&ud, &FoQuery::new(cut)).unwrap();
    let b = exact_probability(&ud, &FoQuery::new(edge)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn padding_estimator_works_on_so_queries() {
    // Theorem 5.12 needs only an evaluator — SO queries on tiny domains
    // qualify.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let ud = setup();
    let so = Formula::ExistsRel(
        "X".into(),
        1,
        Box::new(parse_formula("(forall x. X(x) -> S(x)) & (exists x. X(x))").unwrap()),
    );
    let q = FoQuery::new(so);
    let exact = exact_probability(&ud, &q).unwrap().to_f64();
    let est = PaddingEstimator::default_xi();
    let mut rng = StdRng::seed_from_u64(99);
    let rep = est
        .estimate_probability(&ud, &q, 0.1, 0.1, &mut rng)
        .unwrap();
    assert!((rep.estimate - exact).abs() <= 0.1);
}
