//! Property-based tests over the full pipeline: random databases, random
//! error assignments, random small formulas — the cross-engine
//! agreements must hold on *every* generated instance.

use proptest::prelude::*;
use qrel::prelude::*;
use std::collections::HashMap;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// Strategy: a database over {E/2, S/1} with n ∈ 2..4 and arbitrary
/// tuple content, plus error assignments on up to 5 facts.
fn ud_strategy() -> impl Strategy<Value = UnreliableDatabase> {
    (
        2usize..4,
        proptest::collection::vec(any::<bool>(), 16), // E adjacency (row-major, padded)
        proptest::collection::vec(any::<bool>(), 4),  // S membership
        proptest::collection::vec((0usize..20, 1u64..8, 1u64..8), 0..6),
    )
        .prop_map(|(n, adj, marks, errors)| {
            let mut edges = Vec::new();
            for a in 0..n {
                for b in 0..n {
                    if adj[a * n + b] {
                        edges.push(vec![a as u32, b as u32]);
                    }
                }
            }
            let s: Vec<Vec<u32>> = (0..n)
                .filter(|&i| marks[i])
                .map(|i| vec![i as u32])
                .collect();
            let db = DatabaseBuilder::new()
                .universe_size(n)
                .relation("E", 2)
                .relation("S", 1)
                .tuples("E", edges)
                .tuples("S", s)
                .build();
            let mut ud = UnreliableDatabase::reliable(db);
            let total = ud.indexer().total();
            let indexer = ud.indexer().clone();
            for (fi, num, den) in errors {
                let p = if num >= den {
                    r(1, 2)
                } else {
                    r(num as i64, den)
                };
                ud.set_error(&indexer.fact_at(fi % total), p).unwrap();
            }
            ud
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn world_probabilities_form_a_distribution(ud in ud_strategy()) {
        let total = ud
            .worlds()
            .fold(BigRational::zero(), |acc, (_, p)| acc.add_ref(&p));
        prop_assert_eq!(total, BigRational::one());
    }

    #[test]
    fn grounding_equals_world_enumeration(ud in ud_strategy()) {
        for src in ["exists x y. E(x,y) & S(y)", "exists x. S(x) & !E(x,x)"] {
            let f = parse_formula(src).unwrap();
            let via_worlds =
                exact_probability(&ud, &FoQuery::new(f.clone())).unwrap();
            let via_ground = existential_probability_exact(&ud, &f).unwrap();
            prop_assert_eq!(via_worlds, via_ground, "query {}", src);
        }
    }

    #[test]
    fn qf_fast_path_equals_worlds(ud in ud_strategy()) {
        let f = parse_formula("E(x,y) | !S(x)").unwrap();
        let free = vec!["x".to_string(), "y".to_string()];
        let fast = qf_reliability(&ud, &f, &free).unwrap();
        let slow = exact_reliability(
            &ud,
            &FoQuery::with_free_order(f, free),
        )
        .unwrap();
        prop_assert_eq!(fast.expected_error, slow.expected_error);
    }

    #[test]
    fn counter_reduction_equals_shannon(ud in ud_strategy()) {
        let f = parse_formula("exists x y. E(x,y) & S(x)").unwrap();
        let g = ground_existential(ud.observed(), &f, &HashMap::new(), 100_000).unwrap();
        let probs: Vec<BigRational> = g.facts.iter().map(|ft| ud.nu(ft)).collect();
        let direct = dnf_probability_shannon(&g.dnf, &probs);
        let red = ProbDnfReduction::new(&g.dnf, &probs).unwrap();
        prop_assert_eq!(red.exact_probability(), direct);
    }

    #[test]
    fn reliability_bounds_hold(ud in ud_strategy()) {
        // 0 ≤ H, R ≤ 1 for Boolean; R = 1 exactly iff AR_ψ.
        let q = FoQuery::new(parse_formula("exists x y. E(x,y) & S(y)").unwrap());
        let rep = exact_reliability(&ud, &q).unwrap();
        prop_assert!(rep.expected_error >= BigRational::zero());
        prop_assert!(rep.expected_error <= BigRational::one());
        prop_assert!(rep.reliability >= BigRational::zero());
        prop_assert!(rep.reliability <= BigRational::one());
        let ar = is_absolutely_reliable(&ud, &q).unwrap();
        prop_assert_eq!(ar, rep.reliability == BigRational::one());
    }

    #[test]
    fn certificate_integrality(ud in ud_strategy()) {
        let q = FoQuery::new(parse_formula("exists x. S(x)").unwrap());
        // counting_certificate asserts integrality internally.
        let cert = counting_certificate(&ud, &q).unwrap();
        prop_assert!(cert.accepting_paths <= cert.g);
    }

    #[test]
    fn solver_with_tiny_budget_never_panics(
        ud in ud_strategy(),
        worlds in 1u64..20,
        samples in 1u64..50,
    ) {
        // Whatever runs out first, solve() must come back with either a
        // well-formed report or a structured error — never a panic.
        let q = FoQuery::new(parse_formula("exists x y. E(x,y) & S(y)").unwrap());
        let budget = Budget::unlimited()
            .with_max_worlds(worlds)
            .with_max_samples(samples)
            .with_max_terms(64);
        // A hard error (budget too small for any rung to finish a
        // unit of work) is acceptable; panicking is not.
        if let Ok(report) = Solver::new().solve(&ud, &q, &budget) {
            prop_assert!((0.0..=1.0).contains(&report.reliability));
            prop_assert!(!report.trace.is_empty());
            if let Some((lo, hi)) = report.bounds {
                prop_assert!(lo <= hi);
                prop_assert!(lo <= report.reliability && report.reliability <= hi);
            }
        }
    }

    #[test]
    fn solver_returns_within_twice_deadline(ud in ud_strategy()) {
        let q = FoQuery::new(parse_formula("exists x y. E(x,y) & S(y)").unwrap());
        let deadline = std::time::Duration::from_millis(50);
        let budget = Budget::unlimited().with_deadline(deadline);
        let started = std::time::Instant::now();
        let _ = Solver::new().solve(&ud, &q, &budget);
        let elapsed = started.elapsed();
        // ~2× the deadline, plus fixed slack for checkpoint granularity.
        prop_assert!(
            elapsed <= deadline * 2 + std::time::Duration::from_millis(150),
            "solve took {elapsed:?} against a {deadline:?} deadline"
        );
    }

    #[test]
    fn solver_exact_confidence_matches_oracle(ud in ud_strategy()) {
        // These instances have ≤ 2^5 worlds, so auto must route to an
        // exact method, and Confidence::Exact answers must equal the
        // Thm 4.2 oracle.
        let q = FoQuery::new(parse_formula("exists x y. E(x,y) & S(y)").unwrap());
        let report = Solver::new().solve(&ud, &q, &Budget::unlimited()).unwrap();
        prop_assert!(matches!(report.confidence, Confidence::Exact));
        let oracle = exact_reliability(&ud, &q).unwrap().reliability;
        prop_assert_eq!(report.exact.clone().unwrap(), oracle);
    }

    #[test]
    fn padded_identity_exact(ud in ud_strategy(), xn in 1i64..4) {
        // ν(ψ') = ξ² + (ξ−ξ²)ν(ψ) as exact rationals, ξ = xn/8 ∈ (0, 1/2).
        let xi = r(xn, 8);
        let est = PaddingEstimator::new(xi.clone());
        let q = FoQuery::new(parse_formula("exists x y. E(x,y)").unwrap());
        let nu = exact_probability(&ud, &q).unwrap();
        let padded = est.padded_expectation(&nu);
        let xi2 = xi.mul_ref(&xi);
        prop_assert!(padded >= xi2 && padded <= xi);
        prop_assert_eq!(
            padded,
            xi2.add_ref(&xi.sub_ref(&xi2).mul_ref(&nu))
        );
    }
}
