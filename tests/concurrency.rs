//! Concurrency properties of the budget layer and the solver: split
//! children charged from real threads must conserve every counter when
//! settled back, and a cancel token fired at an arbitrary moment during
//! a solve may degrade the answer but never corrupt it.

use proptest::prelude::*;
use qrel::arith::BigRational;
use qrel::prelude::{
    exact_reliability, Budget, DatabaseBuilder, Fact, FoQuery, Resource, Solver, UnreliableDatabase,
};
use std::thread;
use std::time::Duration;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// Charge each child its list of amounts from its own OS thread, then
/// hand the children back for settling on the caller's thread.
fn charge_threaded(children: Vec<Budget>, charges: &[Vec<u64>]) -> Vec<Budget> {
    thread::scope(|s| {
        let handles: Vec<_> = children
            .into_iter()
            .zip(charges)
            .map(|(child, list)| {
                s.spawn(move || {
                    for &amount in list {
                        // A rejected charge must not commit anything —
                        // conservation below depends on it.
                        let _ = child.charge(Resource::Samples, amount);
                    }
                    child
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unlimited budget: every charge lands, so the settled parent must
    /// show exactly the grand total — no double counts, no losses, no
    /// matter how the threads interleave.
    #[test]
    fn threaded_split_settle_conserves_the_grand_total(
        k in 1usize..8,
        charges in proptest::collection::vec(
            proptest::collection::vec(1u64..50, 0..12), 8),
    ) {
        let parent = Budget::unlimited();
        let children = charge_threaded(parent.split(k), &charges[..k]);
        let mut expected = 0u64;
        for list in &charges[..k] {
            expected += list.iter().sum::<u64>();
        }
        for child in &children {
            parent.settle(child);
        }
        prop_assert_eq!(parent.spent(Resource::Samples), expected);
    }

    /// Capped budget: the settled parent must show exactly the sum of
    /// what its children admitted, never exceed the cap, and inherit a
    /// tripped child's exhaustion.
    #[test]
    fn threaded_split_settle_respects_the_cap(
        limit in 1u64..200,
        charges in proptest::collection::vec(
            proptest::collection::vec(1u64..50, 0..12), 4),
    ) {
        let parent = Budget::unlimited().with_max_samples(limit);
        let children = charge_threaded(parent.split(4), &charges);
        let mut admitted = 0u64;
        let mut any_tripped = false;
        for child in &children {
            admitted += child.spent(Resource::Samples);
            any_tripped |= child.probe().is_err();
            parent.settle(child);
        }
        prop_assert_eq!(parent.spent(Resource::Samples), admitted);
        prop_assert!(admitted <= limit);
        prop_assert_eq!(parent.probe().is_err(), any_tripped);
    }
}

/// Fourteen uncertain facts (16384 worlds): enough enumeration work for
/// a cancel to land mid-solve at the longer delays.
fn wide_ud() -> UnreliableDatabase {
    let db = DatabaseBuilder::new()
        .universe_size(14)
        .relation("S", 1)
        .tuples("S", (0..7).map(|i| vec![i]))
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    for i in 0..14 {
        ud.set_error(&Fact::new(0, vec![i]), r(1, 10)).unwrap();
    }
    ud
}

/// Whatever instant the cancel token fires — before the solve, mid-
/// enumeration, or after the answer is already out — the solver must
/// either report an error, a `Partial` answer, or a *correct* answer
/// with its stated guarantee. A cancel must never surface a wrong
/// number under a guaranteed confidence label.
#[test]
fn cancel_fired_mid_solve_never_yields_a_wrong_guaranteed_answer() {
    let ud = wide_ud();
    let q = FoQuery::parse("exists x. S(x)").unwrap();
    let oracle = exact_reliability(&ud, &q).unwrap().reliability;
    let (eps, _delta) = (0.1, 0.05);
    for delay_us in [0u64, 200, 1_000, 5_000, 20_000] {
        let budget = Budget::unlimited();
        let token = budget.cancel_token();
        let report = thread::scope(|s| {
            s.spawn(move || {
                thread::sleep(Duration::from_micros(delay_us));
                token.cancel();
            });
            Solver::new()
                .with_seed(5)
                .with_accuracy(eps, 0.05)
                .with_max_exact_worlds(1 << 14)
                .solve(&ud, &q, &budget)
        });
        match report {
            // Cancelled before anything ran: a clean refusal is fine.
            Err(_) => {}
            Ok(rep) if rep.confidence.is_guaranteed() => {
                // The solver claims a guarantee — hold it to the oracle
                // (3ε slack keeps the Fptras tail risk negligible).
                let exact = oracle.to_f64();
                assert!(
                    (rep.reliability - exact).abs() <= 3.0 * eps,
                    "delay {delay_us}µs: guaranteed answer {} vs oracle {exact}",
                    rep.reliability
                );
                if let Some(value) = &rep.exact {
                    assert_eq!(value, &oracle, "delay {delay_us}µs: exact answer differs");
                }
            }
            // Degraded: any value is admissible as long as it is
            // labelled Partial — which `is_guaranteed() == false` is.
            Ok(_) => {}
        }
    }
}
