//! The determinism contract for the bit-parallel world engine: packing
//! 64 worlds into a machine word, sharding the block space, or cutting
//! a range mid-block may change only wall-clock time — never a bit of
//! the answer. Exact rational addition is associative and shard
//! boundaries are lane-aligned, so every configuration below must be
//! structurally equal, not merely close.

use qrel::arith::{BigRational, BigUint};
use qrel::count::naive_mc::naive_mc_probability_sharded;
use qrel::count::{
    dnf_count_models_bitslice, dnf_probability_bitslice, dnf_probability_bitslice_range,
    dnf_probability_bitslice_sharded, dnf_probability_enum, dnf_probability_shannon, KarpLuby,
};
use qrel::logic::prop::{Dnf, Lit};
use qrel_par::DEFAULT_SHARDS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

fn random_dnf(rng: &mut StdRng, num_vars: usize, num_terms: usize, k: usize) -> Dnf {
    let mut d = Dnf::new();
    while d.num_terms() < num_terms {
        let len = rng.gen_range(1..=k);
        let lits: Vec<Lit> = (0..len)
            .map(|_| {
                let v = rng.gen_range(0..num_vars) as u32;
                if rng.gen() {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect();
        d.push_term_checked(lits);
    }
    d
}

/// Sizes chosen to cover every block shape: entirely inside one partial
/// block (n < 6), exactly one full block (n = 6), and multi-block with
/// both dyadic (fast-path) and non-dyadic (promoted) probabilities.
fn instances() -> Vec<(Dnf, Vec<BigRational>)> {
    let mut rng = StdRng::seed_from_u64(0x1a7e);
    let mut out = Vec::new();
    for (n, dens) in [
        (3usize, [2u64, 4, 8]),
        (6, [2, 4, 16]),
        (9, [2, 8, 16]),
        (11, [3, 5, 12]),
        (13, [2, 3, 4]),
    ] {
        let nt = rng.gen_range(2..8);
        let d = random_dnf(&mut rng, n, nt, 3);
        let probs: Vec<BigRational> = (0..n)
            .map(|_| {
                let q = dens[rng.gen_range(0..dens.len())];
                r(rng.gen_range(1..q) as i64, q)
            })
            .collect();
        out.push((d, probs));
    }
    out
}

#[test]
fn bitslice_equals_shannon_and_enumeration_bit_for_bit() {
    for (i, (d, probs)) in instances().iter().enumerate() {
        let shannon = dnf_probability_shannon(d, probs);
        let sliced = dnf_probability_bitslice(d, probs);
        let stepped = dnf_probability_enum(d, probs);
        assert_eq!(sliced, shannon, "instance {i}: bitslice vs Shannon");
        assert_eq!(stepped, shannon, "instance {i}: enumeration vs Shannon");
    }
}

#[test]
fn sharded_bitslice_is_invariant_in_shards_and_threads() {
    for (i, (d, probs)) in instances().iter().enumerate() {
        let serial = dnf_probability_bitslice(d, probs);
        for shards in [1usize, 3, DEFAULT_SHARDS, 64] {
            for threads in [1usize, 2, 4, 8] {
                let sharded = dnf_probability_bitslice_sharded(d, probs, shards, threads);
                assert_eq!(
                    sharded, serial,
                    "instance {i}: {shards} shards on {threads} threads \
                     changed the exact answer"
                );
            }
        }
    }
}

#[test]
fn unaligned_mid_block_ranges_sum_to_the_total() {
    // Range cuts that land mid-block (not multiples of 64) exercise the
    // partial-block lane masks on both sides of every cut.
    for (i, (d, probs)) in instances().iter().enumerate() {
        // The kernel's world space is indexed by the formula's variable
        // bound (trailing unused variables integrate out exactly).
        let total_worlds = 1u64 << d.var_bound();
        let serial = dnf_probability_bitslice(d, probs);
        for cuts in [vec![1u64], vec![7, 65], vec![3, 64, 100, 129]] {
            let mut bounds: Vec<u64> = cuts.iter().copied().filter(|&c| c < total_worlds).collect();
            bounds.insert(0, 0);
            bounds.push(total_worlds);
            let mut sum = BigRational::zero();
            for w in bounds.windows(2) {
                sum = sum.add_ref(&dnf_probability_bitslice_range(d, probs, w[0], w[1]));
            }
            assert_eq!(
                sum, serial,
                "instance {i}: ranges cut at {cuts:?} did not resum to the total"
            );
        }
    }
}

#[test]
fn model_counting_matches_the_uniform_shannon_identity() {
    // Under p = 1/2 everywhere, #models = Pr[φ] · 2^n exactly.
    let mut rng = StdRng::seed_from_u64(0xc0de);
    for n in [4usize, 6, 10, 14] {
        let nt = rng.gen_range(2..9);
        let d = random_dnf(&mut rng, n, nt, 3);
        let half = vec![r(1, 2); n];
        let count = dnf_count_models_bitslice(&d, n);
        let pr = dnf_probability_shannon(&d, &half);
        let two_n = BigUint::from_u64(1).shl_bits(n as u64);
        let expected = pr.mul_ref(&BigRational::new(
            qrel::arith::BigInt::from_biguint(two_n),
            qrel::arith::BigInt::one(),
        ));
        assert!(expected.is_integer(), "n={n}: Pr·2^n must be integral");
        assert_eq!(
            BigRational::new(
                qrel::arith::BigInt::from_biguint(count),
                qrel::arith::BigInt::one()
            ),
            expected,
            "n={n}: bitslice model count vs Shannon identity"
        );
    }
}

#[test]
fn packed_samplers_are_bit_identical_across_thread_counts() {
    // Wide formulas (> 64 variables) force the packed assignment onto
    // multiple words; the sampling estimates must still be independent
    // of the thread count, exactly as tests/determinism.rs pins for the
    // narrow case.
    let mut rng = StdRng::seed_from_u64(0xbeef);
    let wide = random_dnf(&mut rng, 70, 12, 3);
    let probs: Vec<BigRational> = (0..70).map(|i| r(1 + (i as i64 % 3), 5)).collect();
    let kl = KarpLuby::new(&wide, &probs);
    let kl_base = kl.run_sharded(20_000, 9, DEFAULT_SHARDS, 1).estimate;
    let mc_base = naive_mc_probability_sharded(&wide, &probs, 20_000, 9, DEFAULT_SHARDS, 1);
    for threads in [2usize, 4, 8] {
        let kl_est = kl.run_sharded(20_000, 9, DEFAULT_SHARDS, threads).estimate;
        let mc_est =
            naive_mc_probability_sharded(&wide, &probs, 20_000, 9, DEFAULT_SHARDS, threads);
        assert_eq!(
            kl_est.to_bits(),
            kl_base.to_bits(),
            "KL at {threads} threads on a 70-variable packed assignment"
        );
        assert_eq!(
            mc_est.to_bits(),
            mc_base.to_bits(),
            "MC at {threads} threads on a 70-variable packed assignment"
        );
    }
}
