//! Golden regression tests: one fixed scenario, exact rational outputs
//! pinned for every engine. Any semantic drift in the model, the
//! evaluators, the grounding, or the arithmetic shows up here as a
//! changed fraction, not a flaky float.

use qrel::prelude::*;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// The fixed scenario: a 4-element structure with mixed-denominator
/// errors on both relations.
fn scenario() -> UnreliableDatabase {
    let db = DatabaseBuilder::new()
        .universe_names(["a", "b", "c", "d"])
        .relation("E", 2)
        .relation("S", 1)
        .tuples("E", [vec![0, 1], vec![1, 2], vec![2, 3]])
        .tuples("S", [vec![0], vec![2]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 4)).unwrap();
    ud.set_error(&Fact::new(0, vec![1, 2]), r(1, 3)).unwrap();
    ud.set_error(&Fact::new(0, vec![3, 0]), r(1, 5)).unwrap();
    ud.set_error(&Fact::new(1, vec![0]), r(1, 6)).unwrap();
    ud.set_error(&Fact::new(1, vec![3]), r(2, 7)).unwrap();
    ud
}

#[test]
fn golden_world_space() {
    let ud = scenario();
    assert_eq!(ud.uncertain_facts().len(), 5);
    assert_eq!(ud.world_count(), Some(32));
    // The observed world's probability: (3/4)(2/3)(4/5)(5/6)(5/7) = 5/21.
    assert_eq!(ud.world_probability(ud.observed()), r(5, 21));
}

#[test]
fn golden_boolean_probability() {
    let ud = scenario();
    // ψ = ∃x∃y (E(x,y) ∧ S(x) ∧ S(y)). Candidate support pairs with
    // nonzero probability: (2,3) needs E23·S2·S3 = 1·1·S3, and (3,0)
    // needs E30·S3·S0 — both contain S3, and (2,3)'s other factors are
    // certain, so ψ ≡ S(3) and Pr[ψ] = ν(S3) = 2/7 exactly.
    let q = FoQuery::parse("exists x y. E(x,y) & S(x) & S(y)").unwrap();
    let p = exact_probability(&ud, &q).unwrap();
    assert_eq!(p, r(2, 7));
    // Grounding route must give the same fraction.
    let f = parse_formula("exists x y. E(x,y) & S(x) & S(y)").unwrap();
    assert_eq!(existential_probability_exact(&ud, &f).unwrap(), r(2, 7));
}

#[test]
fn golden_reliability_report() {
    let ud = scenario();
    let q = FoQuery::parse("exists x y. E(x,y) & S(x) & S(y)").unwrap();
    let rep = exact_reliability(&ud, &q).unwrap();
    // Observed answer is false (S(3) is observed off), so H = Pr[ψ] = 2/7.
    assert_eq!(rep.expected_error, r(2, 7));
    assert_eq!(rep.reliability, r(5, 7));
    assert_eq!(rep.worlds, 32);
}

#[test]
fn golden_qf_reliability() {
    let ud = scenario();
    let f = parse_formula("E(x,y) & S(x)").unwrap();
    let rep = qf_reliability(&ud, &f, &["x".to_string(), "y".to_string()]).unwrap();
    // Per-tuple exact expected errors, summed:
    //   (a,b): observed true; error unless E(a,b) ∧ S(a): 1 − (3/4)(5/6) = 3/8
    //   (b,c): S(b) is certain-false ⇒ conjunction certainly false,
    //          observed false: 0
    //   (c,d): E(c,d), S(c) both certain: 0
    //   (d,a): observed false; error iff E(d,a) ∧ S(d): (1/5)(2/7) = 2/35
    //   every other tuple: E pinned false ⇒ certainly false, observed
    //   false: 0.
    let expected = r(3, 8).add_ref(&r(2, 35)); // = 121/280
    assert_eq!(expected, r(121, 280));
    assert_eq!(rep.expected_error, expected);
    assert_eq!(rep.reliability, expected.div_ref(&r(16, 1)).one_minus());
}

#[test]
fn golden_counting_certificate() {
    let ud = scenario();
    let q = FoQuery::parse("exists x. S(x)").unwrap();
    let cert = qrel::core::exact::counting_certificate(&ud, &q).unwrap();
    // g = product of ν-denominators = 4·3·5·6·7 = 2520.
    assert_eq!(cert.g, BigUint::from_u64(2520));
    // Pr[∃x S(x)] = 1 − Pr[no S]: S(a) off w.p. 1/6, S(c) certain on ⇒ Pr = 1.
    assert_eq!(cert.accepting_paths, BigUint::from_u64(2520));
}

#[test]
fn golden_answer_marginals() {
    let ud = scenario();
    let q = FoQuery::with_free_order(parse_formula("exists y. E(x,y)").unwrap(), vec!["x".into()]);
    let marginals = qrel::core::exact::answer_marginals(&ud, &q).unwrap();
    let lookup = |i: u32| {
        marginals
            .iter()
            .find(|(t, _)| t == &vec![i])
            .map(|(_, m)| m.clone())
            .unwrap()
    };
    assert_eq!(lookup(0), r(3, 4)); // only E(a,b), ν = 3/4
    assert_eq!(lookup(1), r(2, 3)); // only E(b,c), ν = 2/3
    assert_eq!(lookup(2), BigRational::one()); // E(c,d) certain
    assert_eq!(lookup(3), r(1, 5)); // only E(d,a), ν = 1/5
}

#[test]
fn golden_datalog_reachability() {
    let ud = scenario();
    let q = DatalogQuery::parse("T(y) :- E(0,y). T(z) :- T(y), E(y,z).", "T").unwrap();
    // Pr[d reachable from a] = ν(E01)·ν(E12)·ν(E23) = (3/4)(2/3)(1) = 1/2.
    let reach_d = FnQuery::boolean(move |db| {
        DatalogQuery::parse("T(y) :- E(0,y). T(z) :- T(y), E(y,z).", "T")
            .unwrap()
            .eval(db, &[3])
            .unwrap()
    });
    assert_eq!(exact_probability(&ud, &reach_d).unwrap(), r(1, 2));
    let _ = q;
}

#[test]
fn golden_absolute_reliability() {
    let ud = scenario();
    // S(c) is certain; ∃x S(x) can never flip.
    let q = FoQuery::parse("exists x. S(x)").unwrap();
    assert!(is_absolutely_reliable(&ud, &q).unwrap());
    // ∃xy (E(x,y) ∧ S(x)): the pair (c,d) is supported by two *certain*
    // facts (E(c,d) and S(c)), so the sentence holds in every world —
    // absolutely reliable despite five uncertain facts elsewhere.
    let q2 = FoQuery::parse("exists x y. E(x,y) & S(x)").unwrap();
    assert!(is_absolutely_reliable(&ud, &q2).unwrap());
    assert!(exact_reliability(&ud, &q2)
        .unwrap()
        .expected_error
        .is_zero());
    // The S(y)-variant hinges on the uncertain S(d): not absolutely
    // reliable, and any witness world must turn S(d) on.
    let q3 = FoQuery::parse("exists x y. E(x,y) & S(x) & S(y)").unwrap();
    assert!(!is_absolutely_reliable(&ud, &q3).unwrap());
    let w = find_unreliability_witness(&ud, &q3).unwrap().unwrap();
    assert!(w.holds(&Fact::new(1, vec![3])), "witness must turn S(d) on");
}
