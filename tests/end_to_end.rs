//! End-to-end integration tests spanning the whole workspace: every
//! algorithmic path that computes the same quantity must agree.

use qrel::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// A random unreliable database over a fixed schema, with a bounded
/// number of uncertain facts so exact enumeration stays feasible.
fn random_ud(rng: &mut StdRng, n: usize, max_uncertain: usize) -> UnreliableDatabase {
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            if a != b && rng.gen_bool(0.4) {
                edges.push(vec![a, b]);
            }
        }
    }
    let marks: Vec<Vec<u32>> = (0..n as u32)
        .filter(|_| rng.gen_bool(0.5))
        .map(|v| vec![v])
        .collect();
    let db = DatabaseBuilder::new()
        .universe_size(n)
        .relation("E", 2)
        .relation("S", 1)
        .tuples("E", edges)
        .tuples("S", marks)
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    let indexer = ud.indexer().clone();
    let total = indexer.total();
    let denominators = [2u64, 3, 4, 5, 8, 12];
    for _ in 0..max_uncertain {
        let fi = rng.gen_range(0..total);
        let d = denominators[rng.gen_range(0..denominators.len())];
        let num = rng.gen_range(1..d) as i64;
        ud.set_error(&indexer.fact_at(fi), r(num, d)).unwrap();
    }
    ud
}

#[test]
fn four_probability_paths_agree() {
    // Pr[𝔅 ⊨ ψ] computed four ways:
    //   1. exact world enumeration (Thm 4.2 engine)
    //   2. exact Prob-DNF on the grounding (Thm 5.4 front half)
    //   3. exact #DNF via the Thm 5.3 counter reduction
    //   4. inclusion–exclusion on the grounding
    let mut rng = StdRng::seed_from_u64(101);
    let queries = [
        "exists x y. E(x,y) & S(x)",
        "exists x. S(x) & !E(x,x)",
        "exists x y. E(x,y) & E(y,x)",
    ];
    for trial in 0..5 {
        let ud = random_ud(&mut rng, 3, 4);
        for src in queries {
            let f = parse_formula(src).unwrap();
            let q = FoQuery::new(f.clone());
            let p1 = exact_probability(&ud, &q).unwrap();
            let p2 = existential_probability_exact(&ud, &f).unwrap();
            assert_eq!(p1, p2, "worlds vs grounding, trial {trial}, {src}");

            let g = ground_existential(ud.observed(), &f, &HashMap::new(), 100_000).unwrap();
            let probs: Vec<BigRational> = g.facts.iter().map(|ft| ud.nu(ft)).collect();
            let red = ProbDnfReduction::new(&g.dnf, &probs).unwrap();
            assert_eq!(p1, red.exact_probability(), "counter reduction, {src}");

            if g.dnf.num_terms() <= 20 {
                let p4 = qrel::count::dnf_probability_ie(&g.dnf, &probs);
                assert_eq!(p1, p4, "inclusion-exclusion, {src}");
            }
        }
    }
}

#[test]
fn qf_fast_path_agrees_with_world_enumeration() {
    let mut rng = StdRng::seed_from_u64(202);
    let queries: [(&str, &[&str]); 4] = [
        ("S(x) & !E(x,x)", &["x"]),
        ("E(x,y) | S(y)", &["x", "y"]),
        ("E(x,y) & x != y", &["x", "y"]),
        ("S(x) -> E(x,x)", &["x"]),
    ];
    for trial in 0..5 {
        let ud = random_ud(&mut rng, 3, 5);
        for (src, free) in queries {
            let f = parse_formula(src).unwrap();
            let free: Vec<String> = free.iter().map(|s| s.to_string()).collect();
            let fast = qf_reliability(&ud, &f, &free).unwrap();
            let slow = exact_reliability(&ud, &FoQuery::with_free_order(f, free.clone())).unwrap();
            assert_eq!(
                fast.expected_error, slow.expected_error,
                "trial {trial}, query {src}"
            );
            assert_eq!(fast.reliability, slow.reliability);
        }
    }
}

#[test]
fn estimators_land_inside_their_envelopes() {
    // One seeded run per estimator; tolerances are the requested ε plus
    // generous slack so the test is deterministic and non-flaky.
    let mut rng = StdRng::seed_from_u64(303);
    let ud = random_ud(&mut rng, 3, 6);
    let f = parse_formula("exists x y. E(x,y) & S(y)").unwrap();
    let q = FoQuery::new(f.clone());
    let exact = exact_probability(&ud, &q).unwrap().to_f64();

    for route in [Route::Direct, Route::ViaCounting] {
        let est = existential_probability_fptras(&ud, &f, 0.05, 0.02, route, &mut rng).unwrap();
        assert!(
            (est - exact).abs() <= 0.05 * exact + 0.03,
            "{route:?}: {est} vs {exact}"
        );
    }

    let padding = PaddingEstimator::default_xi();
    let padded = padding
        .estimate_probability(&ud, &q, 0.06, 0.05, &mut rng)
        .unwrap();
    assert!(
        (padded.estimate - exact).abs() <= 0.06,
        "padded {}",
        padded.estimate
    );

    let direct = direct_probability(&ud, &q, 0.03, 0.02, &mut rng).unwrap();
    assert!(
        (direct.estimate - exact).abs() <= 0.03,
        "direct {}",
        direct.estimate
    );
}

#[test]
fn positive_only_model_preserves_all_pipelines() {
    // de Rougemont's restricted model: positive facts only. All engines
    // must agree exactly as in the full model.
    let db = DatabaseBuilder::new()
        .universe_size(3)
        .relation("E", 2)
        .relation("S", 1)
        .tuples("E", [vec![0, 1], vec![1, 2], vec![2, 0]])
        .tuples("S", [vec![0], vec![1]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db)
        .with_model(ErrorModel::PositiveOnly)
        .unwrap();
    ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 3)).unwrap();
    ud.set_error(&Fact::new(1, vec![1]), r(1, 4)).unwrap();

    let f = parse_formula("exists x y. E(x,y) & S(y)").unwrap();
    let q = FoQuery::new(f.clone());
    let p1 = exact_probability(&ud, &q).unwrap();
    let p2 = existential_probability_exact(&ud, &f).unwrap();
    assert_eq!(p1, p2);

    let qf = parse_formula("E(x,y) & S(y)").unwrap();
    let fast = qf_reliability(&ud, &qf, &["x".to_string(), "y".to_string()]).unwrap();
    let slow = exact_reliability(
        &ud,
        &FoQuery::with_free_order(qf, vec!["x".into(), "y".into()]),
    )
    .unwrap();
    assert_eq!(fast.expected_error, slow.expected_error);
}

#[test]
fn counting_certificate_and_probability_sum() {
    let mut rng = StdRng::seed_from_u64(404);
    for _ in 0..3 {
        let ud = random_ud(&mut rng, 3, 5);
        // Σ over worlds of ν = 1 exactly.
        let total = ud
            .worlds()
            .fold(BigRational::zero(), |acc, (_, p)| acc.add_ref(&p));
        assert_eq!(total, BigRational::one());
        // ψ and ¬ψ certificates partition g.
        let f = parse_formula("exists x. S(x)").unwrap();
        let q = FoQuery::new(f.clone());
        let not_q = FoQuery::new(Formula::not(f));
        let c1 = counting_certificate(&ud, &q).unwrap();
        let c2 = counting_certificate(&ud, &not_q).unwrap();
        assert_eq!(c1.g, c2.g);
        assert_eq!(c1.accepting_paths.add_ref(&c2.accepting_paths), c1.g);
    }
}

#[test]
fn datalog_and_fo_queries_agree_where_expressible() {
    // Reachability in ≤ 2 hops is FO-expressible; the Datalog engine and
    // the FO engine must induce identical reliability on a DAG where
    // longer paths do not exist.
    let db = DatabaseBuilder::new()
        .universe_size(3)
        .relation("E", 2)
        .tuples("E", [vec![0, 1], vec![1, 2]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 3)).unwrap();
    ud.set_error(&Fact::new(0, vec![1, 2]), r(1, 5)).unwrap();

    let datalog = DatalogQuery::parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).", "T").unwrap();
    let fo = FoQuery::with_free_order(
        parse_formula("E(x,y) | exists z. E(x,z) & E(z,y)").unwrap(),
        vec!["x".into(), "y".into()],
    );
    let r1 = exact_reliability(&ud, &datalog).unwrap();
    let r2 = exact_reliability(&ud, &fo).unwrap();
    assert_eq!(r1.expected_error, r2.expected_error);
}

#[test]
fn absolute_reliability_consistent_with_exact() {
    let mut rng = StdRng::seed_from_u64(505);
    for _ in 0..5 {
        let ud = random_ud(&mut rng, 3, 4);
        let q = FoQuery::new(parse_formula("exists x y. E(x,y) & S(x)").unwrap());
        let ar = is_absolutely_reliable(&ud, &q).unwrap();
        let rep = exact_reliability(&ud, &q).unwrap();
        assert_eq!(ar, rep.reliability == BigRational::one());
    }
}
