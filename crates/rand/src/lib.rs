//! Vendored, offline subset of the `rand` crate API used by this
//! workspace.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace ships the small slice of `rand` it actually uses:
//! [`RngCore`], [`Rng`] (with `gen`, `gen_bool`, `gen_range`),
//! [`SeedableRng`], and [`rngs::StdRng`].
//!
//! `StdRng` here is **not** the upstream ChaCha12 generator: it is
//! xoshiro256** seeded through SplitMix64, a well-studied non-crypto
//! PRNG with 256-bit state. Everything in this repository treats the
//! generator as an opaque deterministic stream — tests assert tolerance
//! envelopes, never upstream-exact draws — so the swap is behaviour
//! compatible. Determinism contract: for a fixed seed,
//! `StdRng::seed_from_u64(s)` produces the same stream on every
//! platform and every run. The parallel engine (`qrel-par`) relies on
//! this to make sharded sampling bit-reproducible.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_below(rng, span as u128) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type.
                    return <$t>::standard_sample(rng);
                }
                start.wrapping_add(uniform_below(rng, span as u128) as $t)
            }
        }
    )*};
}
range_impl!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        if start == 0 && end == u128::MAX {
            return u128::standard_sample(rng);
        }
        start + uniform_below(rng, end - start + 1)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, span)` (`span > 0`), via 128-bit multiply-shift
/// with one rejection round to kill the modulo bias for small spans.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let s = span as u64;
        // Lemire's multiply-shift with rejection: exactly uniform.
        let mut x = rng.next_u64();
        let mut m = x as u128 * s as u128;
        let mut lo = m as u64;
        if lo < s {
            let t = s.wrapping_neg() % s;
            while lo < t {
                x = rng.next_u64();
                m = x as u128 * s as u128;
                lo = m as u64;
            }
        }
        m >> 64
    } else {
        // Wide span: plain modulo. Bias is ≤ 2^-64 relative — far below
        // anything the statistical tests can resolve.
        u128::standard_sample(rng) % span
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        self.gen::<f64>() < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let (next, word) = sm;
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
            sm = splitmix64(next);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: returns `(next_state, output)`.
#[inline]
fn splitmix64(state: u64) -> (u64, u64) {
    let next = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = next;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (next, z ^ (z >> 31))
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// 256-bit state, period 2^256 − 1, passes BigCrush. Seeded from a
    /// `u64` through SplitMix64 so nearby seeds give unrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it
            // through SplitMix64.
            if s == [0; 4] {
                let mut st = 0u64;
                for slot in &mut s {
                    let (next, word) = splitmix64(st);
                    *slot = word | 1;
                    st = next;
                }
            }
            StdRng { s }
        }
    }

    /// Alias kept for drop-in compatibility with code written against
    /// `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b));
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
        let v = rng.gen_range(0u64..1);
        assert_eq!(v, 0);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn u128_range_sampling() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let v = rng.gen_range(0u128..=u128::MAX / 2);
            assert!(v <= u128::MAX / 2);
        }
        let x: u128 = rng.gen();
        let y: u128 = rng.gen();
        assert_ne!(x, y);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
