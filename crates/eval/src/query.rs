//! The [`Query`] abstraction: anything that maps a database and a tuple to
//! a truth value.
//!
//! Theorem 5.12 applies to *all polynomial-time evaluable queries*, not
//! just logically defined ones, so the reliability machinery in
//! `qrel-core` is written against this trait. First-order queries,
//! Datalog queries and arbitrary Rust closures all implement it.

use crate::fo::{self, EvalError};
use qrel_db::datalog::DatalogProgram;
use qrel_db::{Database, Element, Relation};
use qrel_logic::Formula;
use std::sync::Arc;

/// A k-ary query: a (polynomial-time) map from databases to k-ary
/// relations, exposed pointwise.
pub trait Query {
    /// The arity `k` (0 for Boolean queries).
    fn arity(&self) -> usize;

    /// Does `ā ∈ ψ^𝔄`?
    fn eval(&self, db: &Database, tuple: &[Element]) -> Result<bool, EvalError>;

    /// The full answer set `ψ^𝔄`. The default enumerates all `n^k` tuples;
    /// implementations with better strategies may override.
    fn answers(&self, db: &Database) -> Result<Relation, EvalError> {
        let mut out = Relation::new(self.arity());
        for t in db.universe().tuples(self.arity()) {
            if self.eval(db, &t)? {
                out.insert(t);
            }
        }
        Ok(out)
    }

    /// Convenience for Boolean queries.
    fn eval_sentence(&self, db: &Database) -> Result<bool, EvalError> {
        assert_eq!(self.arity(), 0, "eval_sentence requires a 0-ary query");
        self.eval(db, &[])
    }
}

/// A first-order (or second-order) query given by a formula and an
/// ordering of its free variables.
#[derive(Debug, Clone)]
pub struct FoQuery {
    formula: Formula,
    free: Vec<String>,
}

impl FoQuery {
    /// Build with the free-variable order taken from
    /// [`Formula::free_vars`] (sorted).
    pub fn new(formula: Formula) -> Self {
        let free = formula.free_vars();
        FoQuery { formula, free }
    }

    /// Build with an explicit free-variable order.
    ///
    /// # Panics
    /// Panics if `free` does not cover exactly the formula's free variables.
    pub fn with_free_order(formula: Formula, free: Vec<String>) -> Self {
        let mut sorted = free.clone();
        sorted.sort();
        assert_eq!(sorted, formula.free_vars(), "free-variable order mismatch");
        FoQuery { formula, free }
    }

    /// Parse from the concrete syntax.
    pub fn parse(src: &str) -> Result<Self, qrel_logic::parser::ParseError> {
        Ok(FoQuery::new(qrel_logic::parser::parse_formula(src)?))
    }

    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    pub fn free_vars(&self) -> &[String] {
        &self.free
    }
}

impl Query for FoQuery {
    fn arity(&self) -> usize {
        self.free.len()
    }

    fn eval(&self, db: &Database, tuple: &[Element]) -> Result<bool, EvalError> {
        assert_eq!(tuple.len(), self.free.len(), "tuple arity mismatch");
        let bindings = self
            .free
            .iter()
            .cloned()
            .zip(tuple.iter().copied())
            .collect();
        fo::eval_formula(db, &self.formula, &bindings)
    }
}

/// A Datalog query: a program plus a designated output predicate. The
/// tuple is checked for membership in the output IDB relation.
#[derive(Debug, Clone)]
pub struct DatalogQuery {
    program: DatalogProgram,
    output: String,
    arity: usize,
}

impl DatalogQuery {
    /// Build from a program and output predicate name.
    ///
    /// # Panics
    /// Panics if `output` is not a head predicate of the program.
    pub fn new(program: DatalogProgram, output: &str) -> Self {
        let arity = program
            .rules
            .iter()
            .find(|r| r.head.rel == output)
            .unwrap_or_else(|| panic!("output predicate {output:?} not defined by program"))
            .head
            .args
            .len();
        DatalogQuery {
            program,
            output: output.to_string(),
            arity,
        }
    }

    /// Parse a program and select an output predicate.
    pub fn parse(src: &str, output: &str) -> Result<Self, qrel_db::datalog::DatalogError> {
        Ok(DatalogQuery::new(DatalogProgram::parse(src)?, output))
    }

    pub fn program(&self) -> &DatalogProgram {
        &self.program
    }
}

impl Query for DatalogQuery {
    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, db: &Database, tuple: &[Element]) -> Result<bool, EvalError> {
        // Datalog errors are schema-level; surface them as unknown-relation.
        let out = self
            .program
            .evaluate(db)
            .map_err(|e| EvalError::UnknownRelation(e.to_string()))?;
        Ok(out[&self.output].contains(tuple))
    }

    fn answers(&self, db: &Database) -> Result<Relation, EvalError> {
        let mut out = self
            .program
            .evaluate(db)
            .map_err(|e| EvalError::UnknownRelation(e.to_string()))?;
        Ok(out
            .remove(&self.output)
            .expect("validated output predicate"))
    }
}

/// The boxed evaluation function inside an [`FnQuery`].
pub type QueryFn = Arc<dyn Fn(&Database, &[Element]) -> bool + Send + Sync>;

/// A query given by an arbitrary evaluation function — the "any
/// polynomial-time evaluable query" of Theorem 5.12.
#[derive(Clone)]
pub struct FnQuery {
    arity: usize,
    f: QueryFn,
}

impl FnQuery {
    pub fn new(
        arity: usize,
        f: impl Fn(&Database, &[Element]) -> bool + Send + Sync + 'static,
    ) -> Self {
        FnQuery {
            arity,
            f: Arc::new(f),
        }
    }

    /// A Boolean (0-ary) closure query.
    pub fn boolean(f: impl Fn(&Database) -> bool + Send + Sync + 'static) -> Self {
        FnQuery::new(0, move |db, _| f(db))
    }
}

impl std::fmt::Debug for FnQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnQuery(arity={})", self.arity)
    }
}

impl Query for FnQuery {
    fn arity(&self) -> usize {
        self.arity
    }

    fn eval(&self, db: &Database, tuple: &[Element]) -> Result<bool, EvalError> {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        Ok((self.f)(db, tuple))
    }
}

/// A conjunctive query evaluated through the relational-algebra planner
/// (`qrel_eval::cq`) — same answers as [`FoQuery`] on the same formula,
/// usually much faster on selective queries.
#[derive(Debug, Clone)]
pub struct CqQuery {
    compiled: crate::cq::ConjunctiveQuery,
}

impl CqQuery {
    /// Compile from a conjunctive formula with an explicit free-variable
    /// order.
    pub fn new(formula: &Formula, free: &[String]) -> Result<Self, crate::cq::CqError> {
        Ok(CqQuery {
            compiled: crate::cq::ConjunctiveQuery::compile(formula, free)?,
        })
    }

    /// Parse and compile.
    pub fn parse(src: &str, free: &[&str]) -> Result<Self, crate::cq::CqError> {
        let f = qrel_logic::parser::parse_formula(src)
            .map_err(|e| crate::cq::CqError::Parse(e.to_string()))?;
        let free: Vec<String> = free.iter().map(|s| s.to_string()).collect();
        Self::new(&f, &free)
    }
}

impl Query for CqQuery {
    fn arity(&self) -> usize {
        self.compiled.arity()
    }

    fn eval(&self, db: &Database, tuple: &[Element]) -> Result<bool, EvalError> {
        Ok(self.answers(db)?.contains(tuple))
    }

    fn answers(&self, db: &Database) -> Result<Relation, EvalError> {
        self.compiled.evaluate(db).map_err(|e| match e {
            crate::cq::CqError::Eval(inner) => inner,
            other => EvalError::UnknownRelation(other.to_string()),
        })
    }
}

/// Object-safe boxed query for heterogeneous collections.
pub type BoxedQuery = Box<dyn Query + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_db::DatabaseBuilder;

    fn graph() -> Database {
        DatabaseBuilder::new()
            .universe_size(4)
            .relation("E", 2)
            .tuples("E", [vec![0, 1], vec![1, 2], vec![2, 3]])
            .build()
    }

    #[test]
    fn fo_query_answers() {
        let q = FoQuery::parse("exists y. E(x, y)").unwrap();
        assert_eq!(q.arity(), 1);
        let ans = q.answers(&graph()).unwrap();
        assert_eq!(ans.len(), 3);
        assert!(q.eval(&graph(), &[0]).unwrap());
        assert!(!q.eval(&graph(), &[3]).unwrap());
    }

    #[test]
    fn fo_query_boolean() {
        let q = FoQuery::parse("exists x. E(x, x)").unwrap();
        assert_eq!(q.arity(), 0);
        assert!(!q.eval_sentence(&graph()).unwrap());
    }

    #[test]
    fn with_free_order_changes_tuple_layout() {
        let f = qrel_logic::parser::parse_formula("E(x, y)").unwrap();
        let q_xy = FoQuery::with_free_order(f.clone(), vec!["x".into(), "y".into()]);
        let q_yx = FoQuery::with_free_order(f, vec!["y".into(), "x".into()]);
        assert!(q_xy.eval(&graph(), &[0, 1]).unwrap());
        assert!(!q_yx.eval(&graph(), &[0, 1]).unwrap());
        assert!(q_yx.eval(&graph(), &[1, 0]).unwrap());
    }

    #[test]
    #[should_panic(expected = "free-variable order mismatch")]
    fn with_free_order_validates() {
        let f = qrel_logic::parser::parse_formula("E(x, y)").unwrap();
        FoQuery::with_free_order(f, vec!["x".into()]);
    }

    #[test]
    fn datalog_query_transitive_closure() {
        let q = DatalogQuery::parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).", "T").unwrap();
        assert_eq!(q.arity(), 2);
        assert!(q.eval(&graph(), &[0, 3]).unwrap());
        assert!(!q.eval(&graph(), &[3, 0]).unwrap());
        assert_eq!(q.answers(&graph()).unwrap().len(), 6);
    }

    #[test]
    #[should_panic(expected = "not defined by program")]
    fn datalog_output_must_exist() {
        DatalogQuery::parse("T(x,y) :- E(x,y).", "U").unwrap();
    }

    #[test]
    fn fn_query_counts_edges() {
        // Boolean query "the graph has at least 3 edges" — not first-order
        // definable without counting, trivial as a closure.
        let q = FnQuery::boolean(|db| db.relation_by_name("E").unwrap().len() >= 3);
        assert!(q.eval_sentence(&graph()).unwrap());
        let small = DatabaseBuilder::new()
            .universe_size(2)
            .relation("E", 2)
            .tuples("E", [vec![0, 1]])
            .build();
        assert!(!q.eval_sentence(&small).unwrap());
    }

    #[test]
    fn boxed_queries_heterogeneous() {
        let qs: Vec<BoxedQuery> = vec![
            Box::new(FoQuery::parse("exists x y. E(x,y)").unwrap()),
            Box::new(FnQuery::boolean(|db| db.size() > 2)),
        ];
        for q in &qs {
            assert!(q.eval(&graph(), &[]).unwrap());
        }
    }
}
