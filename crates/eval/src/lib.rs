//! Query evaluation over finite relational structures.
//!
//! * [`fo`] — model checking for first-order formulas (with bounded
//!   second-order quantification by relation enumeration), and answer-set
//!   computation `ψ^𝔄 = {ā : 𝔄 ⊨ ψ(ā)}`;
//! * [`ground`] — the propositionalization step of Theorem 5.4: an
//!   existential sentence over a database becomes a kDNF formula whose
//!   variables are atomic facts;
//! * [`query`] — the [`query::Query`] trait unifying first-order queries,
//!   Datalog queries and arbitrary polynomial-time evaluable predicates
//!   (the generality Theorem 5.12 needs);
//! * [`cq`] — a conjunctive-query planner compiling to σ/π/⋈ plans with
//!   greedy join ordering over `qrel_db::algebra`.

pub mod cq;
pub mod fo;
pub mod ground;
pub mod query;

pub use cq::ConjunctiveQuery;
pub use fo::{eval_formula, eval_sentence, query_answers, EvalError};
pub use ground::{ground_existential, ground_existential_budgeted, GroundError, Grounding};
pub use query::{BoxedQuery, CqQuery, DatalogQuery, FnQuery, FoQuery, Query};

use qrel_budget::{Exhausted, QrelError, Resource};

// The conversions into the workspace error taxonomy live here (next to
// the error types they consume) because `qrel-budget` sits below this
// crate and cannot name them.
impl From<EvalError> for QrelError {
    fn from(e: EvalError) -> Self {
        QrelError::Eval(e.to_string())
    }
}

impl From<GroundError> for QrelError {
    fn from(e: GroundError) -> Self {
        match e {
            GroundError::NotExistential => QrelError::Unsupported(
                "formula is not existential (universal or second-order quantifier)".into(),
            ),
            // The caller-supplied term cap is a terms budget in all but
            // name; report it as one so retry logic treats them alike.
            GroundError::TooLarge { max_terms } => QrelError::BudgetExhausted(Exhausted {
                resource: Resource::Terms,
                spent: max_terms as u64,
                limit: Some(max_terms as u64),
            }),
            // Route by resource: deadline and cancel trips become
            // Timeout/Cancelled, counter overruns stay BudgetExhausted.
            GroundError::Budget(x) => QrelError::from(x),
            GroundError::Eval(e) => QrelError::Eval(e.to_string()),
        }
    }
}
