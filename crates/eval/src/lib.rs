//! Query evaluation over finite relational structures.
//!
//! * [`fo`] — model checking for first-order formulas (with bounded
//!   second-order quantification by relation enumeration), and answer-set
//!   computation `ψ^𝔄 = {ā : 𝔄 ⊨ ψ(ā)}`;
//! * [`ground`] — the propositionalization step of Theorem 5.4: an
//!   existential sentence over a database becomes a kDNF formula whose
//!   variables are atomic facts;
//! * [`query`] — the [`query::Query`] trait unifying first-order queries,
//!   Datalog queries and arbitrary polynomial-time evaluable predicates
//!   (the generality Theorem 5.12 needs);
//! * [`cq`] — a conjunctive-query planner compiling to σ/π/⋈ plans with
//!   greedy join ordering over `qrel_db::algebra`.

pub mod cq;
pub mod fo;
pub mod ground;
pub mod query;

pub use cq::ConjunctiveQuery;
pub use fo::{eval_formula, eval_sentence, query_answers, EvalError};
pub use ground::{ground_existential, GroundError, Grounding};
pub use query::{BoxedQuery, CqQuery, DatalogQuery, FnQuery, FoQuery, Query};
