//! Conjunctive-query evaluation via relational algebra with greedy join
//! ordering.
//!
//! The paper's hardness frontier is drawn at conjunctive queries
//! (`∃x̄ (α₁ ∧ … ∧ α_ℓ)`, Prop 3.2), which are also the workhorse class
//! in practice. The generic FO evaluator handles them by nested
//! quantifier search — `O(n^{vars})` always. This module compiles a
//! conjunctive query into σ/π/⋈ plans over `qrel_db::algebra`: per-atom
//! selections first, then hash joins in a greedy order (most shared
//! variables, smallest intermediate first), then a final projection.
//! Output is identical to the naive evaluator (tested), usually far
//! faster on selective queries.

use qrel_db::algebra::{self, Selection};
use qrel_db::{Database, Element, Relation};
use qrel_logic::{Formula, Term};
use std::collections::HashMap;
use std::fmt;

use crate::fo::EvalError;

/// Errors from conjunctive-query compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqError {
    /// The formula is not conjunctive (see [`Formula::is_conjunctive`]).
    NotConjunctive,
    /// The query text failed to parse (from [`crate::query::CqQuery::parse`]).
    Parse(String),
    Eval(EvalError),
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::NotConjunctive => write!(f, "formula is not a conjunctive query"),
            CqError::Parse(m) => write!(f, "{m}"),
            CqError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CqError {}

impl From<EvalError> for CqError {
    fn from(e: EvalError) -> Self {
        CqError::Eval(e)
    }
}

/// A compiled conjunctive query.
#[derive(Debug, Clone)]
pub struct ConjunctiveQuery {
    /// Relational atoms, with arguments canonicalized through the
    /// equality classes.
    atoms: Vec<(String, Vec<Term>)>,
    /// Free variables in output order (canonicalized).
    free: Vec<String>,
    /// Original free variable names (pre-canonicalization), for arity.
    output_arity: usize,
    /// Variable → canonical representative.
    canon: HashMap<String, Term>,
    /// True if the equalities were contradictory (query ≡ ∅ / ⊤ issues).
    unsatisfiable: bool,
}

impl ConjunctiveQuery {
    /// Compile from a conjunctive formula. `free` fixes the output
    /// column order.
    pub fn compile(formula: &Formula, free: &[String]) -> Result<Self, CqError> {
        if !formula.is_conjunctive() {
            return Err(CqError::NotConjunctive);
        }
        {
            let mut sorted = free.to_vec();
            sorted.sort();
            assert_eq!(sorted, formula.free_vars(), "free-variable order mismatch");
        }
        // Strip quantifiers, flatten the matrix.
        let mut cur = formula;
        while let Formula::Exists(_, inner) = cur {
            cur = inner;
        }
        let mut atoms = Vec::new();
        let mut equalities = Vec::new();
        collect_matrix(cur, &mut atoms, &mut equalities);

        // Union-find over terms for the equality constraints. Constants
        // are roots; two distinct constant roots = unsatisfiable.
        let mut uf: HashMap<String, Term> = HashMap::new();
        let mut unsatisfiable = false;
        fn find(uf: &mut HashMap<String, Term>, t: &Term) -> Term {
            match t {
                Term::Const(_) => t.clone(),
                Term::Var(v) => {
                    let parent = uf.get(v).cloned();
                    match parent {
                        None => t.clone(),
                        Some(p) => {
                            let root = find(uf, &p);
                            uf.insert(v.clone(), root.clone());
                            root
                        }
                    }
                }
            }
        }
        for (a, b) in &equalities {
            let ra = find(&mut uf, a);
            let rb = find(&mut uf, b);
            if ra == rb {
                continue;
            }
            match (&ra, &rb) {
                (Term::Const(_), Term::Const(_)) => unsatisfiable = true,
                (Term::Var(v), _) => {
                    uf.insert(v.clone(), rb.clone());
                }
                (_, Term::Var(v)) => {
                    uf.insert(v.clone(), ra.clone());
                }
            }
        }
        // Canonicalize atoms and free variables.
        let canon_atoms: Vec<(String, Vec<Term>)> = atoms
            .into_iter()
            .map(|(rel, args)| (rel, args.iter().map(|t| find(&mut uf, t)).collect()))
            .collect();
        let canon_free: Vec<String> = free.to_vec();
        let canon: HashMap<String, Term> = {
            let mut all_vars: Vec<String> = free.to_vec();
            for (_, args) in &canon_atoms {
                for t in args {
                    if let Term::Var(v) = t {
                        all_vars.push(v.clone());
                    }
                }
            }
            all_vars
                .into_iter()
                .map(|v| {
                    let r = find(&mut uf, &Term::Var(v.clone()));
                    (v, r)
                })
                .collect()
        };
        Ok(ConjunctiveQuery {
            atoms: canon_atoms,
            free: canon_free,
            output_arity: free.len(),
            canon,
            unsatisfiable,
        })
    }

    /// Number of relational atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// True iff the equality constraints are contradictory (two distinct
    /// constants identified) — the query evaluates to ∅ on every database.
    pub fn is_unsatisfiable(&self) -> bool {
        self.unsatisfiable
    }

    pub fn arity(&self) -> usize {
        self.output_arity
    }

    /// Evaluate by the σ/π/⋈ plan.
    pub fn evaluate(&self, db: &Database) -> Result<Relation, CqError> {
        if self.unsatisfiable {
            return Ok(Relation::new(self.output_arity));
        }
        // Per-atom: load, select, project to distinct variables.
        struct Piece {
            rel: Relation,
            cols: Vec<String>, // variable name per column
        }
        let mut pieces: Vec<Piece> = Vec::new();
        for (rel_name, args) in &self.atoms {
            let rel_ix = db
                .vocabulary()
                .index_of(rel_name)
                .ok_or_else(|| EvalError::UnknownRelation(rel_name.clone()))?;
            let stored = db.relation(rel_ix);
            if stored.arity() != args.len() {
                return Err(CqError::Eval(EvalError::ArityMismatch {
                    rel: rel_name.clone(),
                    expected: stored.arity(),
                    got: args.len(),
                }));
            }
            let mut predicates = Vec::new();
            let mut var_first_col: HashMap<&str, usize> = HashMap::new();
            let mut keep_cols = Vec::new();
            let mut keep_vars = Vec::new();
            for (i, t) in args.iter().enumerate() {
                match t {
                    Term::Const(c) => {
                        let e = resolve_const(db, c)?;
                        predicates.push(Selection::ColEqConst(i, e));
                    }
                    Term::Var(v) => match var_first_col.get(v.as_str()) {
                        Some(&j) => predicates.push(Selection::ColEqCol(j, i)),
                        None => {
                            var_first_col.insert(v, i);
                            keep_cols.push(i);
                            keep_vars.push(v.clone());
                        }
                    },
                }
            }
            let selected = algebra::select(stored, &predicates);
            let projected = algebra::project(&selected, &keep_cols);
            pieces.push(Piece {
                rel: projected,
                cols: keep_vars,
            });
        }

        // Seed: atoms sorted greedily — start from the smallest.
        let mut current = match pieces.iter().enumerate().min_by_key(|(_, p)| p.rel.len()) {
            None => {
                // No atoms at all: the matrix was equalities only. The
                // answer is the full cross product over free variables,
                // filtered by canon (a free var bound to a constant or to
                // another free var restricts it).
                return Ok(self.all_free_tuples(db));
            }
            Some((i, _)) => pieces.swap_remove(i),
        };

        while !pieces.is_empty() {
            // Pick the piece sharing the most variables (break ties by
            // smaller relation); product only if nothing shares.
            let (best_i, _) = pieces
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| {
                    let shared = p.cols.iter().filter(|v| current.cols.contains(v)).count();
                    (shared, usize::MAX - p.rel.len())
                })
                .expect("nonempty");
            let piece = pieces.swap_remove(best_i);
            let on: Vec<(usize, usize)> = piece
                .cols
                .iter()
                .enumerate()
                .filter_map(|(j, v)| current.cols.iter().position(|u| u == v).map(|i| (i, j)))
                .collect();
            let joined = if on.is_empty() {
                algebra::product(&current.rel, &piece.rel)
            } else {
                algebra::join(&current.rel, &piece.rel, &on)
            };
            // New columns: current's plus piece's unseen ones.
            let mut cols = current.cols.clone();
            let mut keep: Vec<usize> = (0..current.cols.len()).collect();
            for (j, v) in piece.cols.iter().enumerate() {
                if !current.cols.contains(v) {
                    cols.push(v.clone());
                    keep.push(current.cols.len() + j);
                }
            }
            current = Piece {
                rel: algebra::project(&joined, &keep),
                cols,
            };
        }

        // Final projection to the free variables (through canon).
        let mut out = Relation::new(self.output_arity);
        'tuples: for t in current.rel.iter() {
            let mut row = Vec::with_capacity(self.output_arity);
            for v in &self.free {
                match self.canon.get(v) {
                    Some(Term::Const(c)) => row.push(resolve_const(db, c)?),
                    Some(Term::Var(rep)) => {
                        match current.cols.iter().position(|u| u == rep) {
                            Some(i) => row.push(t[i]),
                            None => {
                                // Free variable not constrained by any atom:
                                // ranges over the whole universe.
                                let view = PieceView {
                                    rel: &current.rel,
                                    cols: &current.cols,
                                };
                                return self.expand_unconstrained(db, &view);
                            }
                        }
                    }
                    None => continue 'tuples,
                }
            }
            out.insert(row);
        }
        Ok(out)
    }

    /// Slow path: some free variable is unconstrained — fall back to
    /// expanding it over the universe via the generic evaluator shape.
    fn expand_unconstrained(
        &self,
        db: &Database,
        current: &PieceView<'_>,
    ) -> Result<Relation, CqError> {
        let mut out = Relation::new(self.output_arity);
        for base in current.tuples() {
            // Determine, per free var, either a fixed value or "all".
            let mut slots: Vec<Option<Element>> = Vec::with_capacity(self.output_arity);
            for v in &self.free {
                match self.canon.get(v) {
                    Some(Term::Const(c)) => slots.push(Some(resolve_const(db, c)?)),
                    Some(Term::Var(rep)) => slots.push(current.position(rep).map(|i| base[i])),
                    None => slots.push(None),
                }
            }
            // Fill the None slots with every universe element, but
            // identical unconstrained representatives must agree.
            let mut reps: Vec<&str> = Vec::new();
            for (v, s) in self.free.iter().zip(&slots) {
                if s.is_none() {
                    if let Some(Term::Var(rep)) = self.canon.get(v) {
                        if !reps.contains(&rep.as_str()) {
                            reps.push(rep);
                        }
                    }
                }
            }
            let k = reps.len();
            for assignment in db.universe().tuples(k) {
                let mut row = Vec::with_capacity(self.output_arity);
                for (v, s) in self.free.iter().zip(&slots) {
                    match s {
                        Some(e) => row.push(*e),
                        None => {
                            let rep = match self.canon.get(v) {
                                Some(Term::Var(r)) => r.as_str(),
                                _ => unreachable!(),
                            };
                            let i = reps.iter().position(|r| *r == rep).unwrap();
                            row.push(assignment[i]);
                        }
                    }
                }
                out.insert(row);
            }
        }
        Ok(out)
    }

    /// Atom-free query: equalities only.
    fn all_free_tuples(&self, db: &Database) -> Relation {
        let mut out = Relation::new(self.output_arity);
        for tuple in db.universe().tuples(self.output_arity) {
            // Check canon consistency: identical representatives must
            // receive identical values; constant reps are fixed.
            let mut ok = true;
            let mut rep_val: HashMap<&str, Element> = HashMap::new();
            for (v, &e) in self.free.iter().zip(tuple.iter()) {
                match self.canon.get(v) {
                    Some(Term::Const(c))
                        if resolve_const(db, c).map(|x| x != e).unwrap_or(true) =>
                    {
                        ok = false;
                        break;
                    }
                    Some(Term::Const(_)) => {}
                    Some(Term::Var(rep)) => match rep_val.get(rep.as_str()) {
                        Some(&prev) => {
                            if prev != e {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            rep_val.insert(rep, e);
                        }
                    },
                    None => {}
                }
            }
            if ok {
                out.insert(tuple);
            }
        }
        out
    }
}

/// Borrowed view of the current intermediate for the slow path.
struct PieceView<'a> {
    rel: &'a Relation,
    cols: &'a [String],
}

impl PieceView<'_> {
    fn tuples(&self) -> impl Iterator<Item = &Vec<Element>> {
        self.rel.iter()
    }
    fn position(&self, var: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == var)
    }
}

fn resolve_const(db: &Database, name: &str) -> Result<Element, EvalError> {
    if let Some(e) = db.universe().lookup(name) {
        return Ok(e);
    }
    if let Ok(i) = name.parse::<u32>() {
        if (i as usize) < db.size() {
            return Ok(i);
        }
    }
    Err(EvalError::UnknownConstant(name.to_string()))
}

fn collect_matrix(
    f: &Formula,
    atoms: &mut Vec<(String, Vec<Term>)>,
    equalities: &mut Vec<(Term, Term)>,
) {
    match f {
        Formula::Atom { rel, args } => atoms.push((rel.clone(), args.clone())),
        Formula::Eq(a, b) => equalities.push((a.clone(), b.clone())),
        Formula::And(fs) => {
            for g in fs {
                collect_matrix(g, atoms, equalities);
            }
        }
        Formula::True => {}
        _ => unreachable!("conjunctive shape checked by compile"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::query_answers;
    use qrel_db::DatabaseBuilder;
    use qrel_logic::parser::parse_formula;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(n: usize, seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                if a != b && rng.gen_bool(0.3) {
                    edges.push(vec![a, b]);
                }
            }
        }
        let marks: Vec<Vec<u32>> = (0..n as u32)
            .filter(|_| rng.gen_bool(0.5))
            .map(|v| vec![v])
            .collect();
        DatabaseBuilder::new()
            .universe_size(n)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", edges)
            .tuples("S", marks)
            .build()
    }

    fn check_against_naive(src: &str, free: &[&str], db: &Database) {
        let f = parse_formula(src).unwrap();
        let free: Vec<String> = free.iter().map(|s| s.to_string()).collect();
        let cq = ConjunctiveQuery::compile(&f, &free).unwrap();
        let fast = cq.evaluate(db).unwrap();
        let naive = query_answers(db, &f, &free).unwrap();
        assert_eq!(fast, naive, "query {src}");
    }

    #[test]
    fn matches_naive_on_standard_queries() {
        let db = graph(6, 1);
        check_against_naive("exists z. E(x,z) & E(z,y)", &["x", "y"], &db);
        check_against_naive("E(x,y) & S(x) & S(y)", &["x", "y"], &db);
        check_against_naive("exists y z. E(x,y) & E(y,z) & S(z)", &["x"], &db);
        check_against_naive("exists x y z. E(x,y) & E(y,z) & S(x)", &[], &db);
    }

    #[test]
    fn constants_and_equalities() {
        let db = graph(5, 2);
        check_against_naive("E(x, 2)", &["x"], &db);
        check_against_naive("E(x,y) & x = y", &["x", "y"], &db);
        check_against_naive("exists y. E(x,y) & y = 3", &["x"], &db);
        check_against_naive("E(x,y) & x = 1 & y = 2", &["x", "y"], &db);
    }

    #[test]
    fn self_join_and_repeated_vars() {
        let db = graph(5, 3);
        check_against_naive("E(x, x)", &["x"], &db);
        check_against_naive("E(x,y) & E(y,x)", &["x", "y"], &db);
        check_against_naive("exists y. E(y, y) & S(x)", &["x"], &db);
    }

    #[test]
    fn contradictory_equalities_yield_empty() {
        let db = graph(4, 4);
        let f = parse_formula("E(x,y) & x = 1 & x = 2").unwrap();
        let cq = ConjunctiveQuery::compile(&f, &["x".to_string(), "y".to_string()]).unwrap();
        assert!(cq.is_unsatisfiable());
        assert!(cq.evaluate(&db).unwrap().is_empty());
    }

    #[test]
    fn equalities_only_query() {
        let db = graph(3, 5);
        check_against_naive("x = y", &["x", "y"], &db);
        check_against_naive("x = 1", &["x"], &db);
    }

    #[test]
    fn unconstrained_free_variable() {
        let db = graph(4, 6);
        // y is free but only x is constrained by an atom.
        check_against_naive("S(x) & y = y", &["x", "y"], &db);
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let db = graph(4, 7);
        check_against_naive("S(x) & E(y, z)", &["x", "y", "z"], &db);
    }

    #[test]
    fn rejects_non_conjunctive() {
        let f = parse_formula("S(x) | E(x,x)").unwrap();
        assert_eq!(
            ConjunctiveQuery::compile(&f, &["x".to_string()]).unwrap_err(),
            CqError::NotConjunctive
        );
    }

    #[test]
    fn randomized_equivalence_sweep() {
        // Many random CQs on random databases: planner == naive.
        let mut rng = StdRng::seed_from_u64(8);
        let patterns: [(&str, &[&str]); 5] = [
            ("exists z. E(x,z) & E(z,y) & S(z)", &["x", "y"]),
            ("E(x,y) & E(y,z)", &["x", "y", "z"]),
            ("exists a b. E(a,b) & E(b,x) & S(a)", &["x"]),
            ("S(x) & S(y) & E(x,y)", &["x", "y"]),
            ("exists a. E(a,a) & E(a, x)", &["x"]),
        ];
        for trial in 0..6 {
            let db = graph(rng.gen_range(3..7), 100 + trial);
            for (src, free) in patterns {
                check_against_naive(src, free, &db);
            }
        }
    }

    #[test]
    fn planner_is_fast_on_selective_query() {
        // Not a strict benchmark — just confirms the plan path touches far
        // fewer tuples than n^3 nested loops would (smoke check via size).
        let db = graph(30, 9);
        let f = parse_formula("exists z. E(x,z) & E(z,y) & S(z)").unwrap();
        let free = vec!["x".to_string(), "y".to_string()];
        let cq = ConjunctiveQuery::compile(&f, &free).unwrap();
        let fast = cq.evaluate(&db).unwrap();
        let naive = query_answers(&db, &f, &free).unwrap();
        assert_eq!(fast, naive);
    }

    #[test]
    fn use_via_query_trait() {
        let db = graph(5, 10);
        let q = crate::query::CqQuery::parse("E(x,y) & S(y)", &["x", "y"]).unwrap();
        use crate::query::Query as _;
        let ans = q.answers(&db).unwrap();
        let expect = query_answers(
            &db,
            &parse_formula("E(x,y) & S(y)").unwrap(),
            &["x".to_string(), "y".to_string()],
        )
        .unwrap();
        assert_eq!(ans, expect);
        let first = ans.iter().next().cloned();
        if let Some(t) = first {
            assert!(q.eval(&db, &t).unwrap());
        }
    }
}
