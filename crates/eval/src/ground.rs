//! Grounding existential queries to propositional kDNF (Theorem 5.4).
//!
//! The proof of Theorem 5.4 replaces the quantifiers of an existential
//! sentence `ψ = ∃ȳ φ(ȳ)` by disjunctions over all element tuples,
//! evaluates equalities away, and reads the remaining atomic statements as
//! propositional variables. The result `ψ''` is a kDNF formula — `k`
//! bounded by the size of `φ`, *independent of the database* — of length
//! polynomial in `n`, whose probability under `ν` equals the probability
//! that `ψ` holds in a random actual database.

use qrel_budget::{Budget, Exhausted, Resource};
use qrel_db::{Database, Fact, FactIndexer};
use qrel_logic::prop::{AtomTable, Dnf, PackedDnf, PropFormula, VarId};
use qrel_logic::{Formula, Term};
use std::collections::HashMap;
use std::fmt;

use crate::fo::EvalError;

/// Errors from grounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundError {
    /// The formula's NNF contains a universal quantifier or second-order
    /// quantifier — not an existential query.
    NotExistential,
    /// DNF conversion exceeded the supplied term budget.
    TooLarge { max_terms: usize },
    /// A cooperative [`Budget`] tripped mid-grounding.
    Budget(Exhausted),
    /// Underlying evaluation error (unknown relation/constant, arity).
    Eval(EvalError),
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::NotExistential => {
                write!(
                    f,
                    "formula is not existential (universal or second-order quantifier)"
                )
            }
            GroundError::TooLarge { max_terms } => {
                write!(f, "grounded DNF exceeds {max_terms} terms")
            }
            GroundError::Budget(e) => write!(f, "grounding interrupted: {e}"),
            GroundError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GroundError {}

impl From<EvalError> for GroundError {
    fn from(e: EvalError) -> Self {
        GroundError::Eval(e)
    }
}

/// The result of grounding: a DNF over fact-variables.
#[derive(Debug, Clone)]
pub struct Grounding {
    /// The grounded formula `ψ''` in DNF.
    pub dnf: Dnf,
    /// Human-readable names for the variables (`R(a,b)` strings).
    pub atoms: AtomTable,
    /// The fact each propositional variable stands for, indexed by `VarId`.
    pub facts: Vec<Fact>,
}

impl Grounding {
    /// The `k` of the kDNF (maximum literals per term).
    pub fn width(&self) -> usize {
        self.dnf.width()
    }

    /// Number of distinct fact-variables.
    pub fn num_vars(&self) -> usize {
        self.facts.len()
    }

    /// Evaluate the grounded formula on a concrete database of the same
    /// format (each variable takes the truth value of its fact).
    pub fn eval_on(&self, db: &Database) -> bool {
        let assignment: Vec<bool> = self.facts.iter().map(|f| db.holds(f)).collect();
        self.dnf.eval(&assignment)
    }

    /// Compile the grounded DNF to its bit-mask form (for lane-masked
    /// evaluation over packed fact assignments).
    pub fn packed_dnf(&self) -> PackedDnf {
        PackedDnf::new(&self.dnf, self.num_vars())
    }

    /// The packed counterpart of [`Self::eval_on`]'s assignment: one bit
    /// per fact-variable in [`PackedDnf`] layout.
    pub fn packed_assignment(&self, db: &Database) -> Vec<u64> {
        let mut packed = vec![0u64; self.num_vars().div_ceil(64).max(1)];
        for (v, f) in self.facts.iter().enumerate() {
            PackedDnf::set_bit(&mut packed, v, db.holds(f));
        }
        packed
    }
}

struct Grounder<'a> {
    db: &'a Database,
    budget: &'a Budget,
    indexer: FactIndexer,
    atoms: AtomTable,
    facts: Vec<Fact>,
    by_fact_index: HashMap<usize, VarId>,
    env: HashMap<String, u32>,
}

impl<'a> Grounder<'a> {
    fn term(&self, t: &Term) -> Result<u32, GroundError> {
        match t {
            Term::Var(v) => self
                .env
                .get(v)
                .copied()
                .ok_or_else(|| GroundError::Eval(EvalError::UnboundVariable(v.clone()))),
            Term::Const(c) => {
                if let Some(e) = self.db.universe().lookup(c) {
                    return Ok(e);
                }
                if let Ok(i) = c.parse::<u32>() {
                    if (i as usize) < self.db.size() {
                        return Ok(i);
                    }
                }
                Err(GroundError::Eval(EvalError::UnknownConstant(c.clone())))
            }
        }
    }

    fn var_for_fact(&mut self, fact: Fact) -> VarId {
        let idx = self.indexer.index_of(&fact);
        if let Some(&v) = self.by_fact_index.get(&idx) {
            return v;
        }
        let name = fact.display(self.db.vocabulary()).to_string();
        let v = self.atoms.intern(name);
        debug_assert_eq!(v as usize, self.facts.len());
        self.facts.push(fact);
        self.by_fact_index.insert(idx, v);
        v
    }

    /// Expand an NNF existential formula into a propositional formula.
    fn expand(&mut self, f: &Formula) -> Result<PropFormula, GroundError> {
        // One checkpoint per node visit covers the n^k tuple loop of the
        // Exists case — the part of grounding that can run away.
        self.budget.checkpoint().map_err(GroundError::Budget)?;
        match f {
            Formula::True => Ok(PropFormula::Const(true)),
            Formula::False => Ok(PropFormula::Const(false)),
            Formula::Eq(a, b) => Ok(PropFormula::Const(self.term(a)? == self.term(b)?)),
            Formula::Atom { rel, args } => {
                let rel_ix =
                    self.db.vocabulary().index_of(rel).ok_or_else(|| {
                        GroundError::Eval(EvalError::UnknownRelation(rel.clone()))
                    })?;
                let expected = self.db.vocabulary().symbols()[rel_ix].arity();
                if expected != args.len() {
                    return Err(GroundError::Eval(EvalError::ArityMismatch {
                        rel: rel.clone(),
                        expected,
                        got: args.len(),
                    }));
                }
                let tuple: Vec<u32> = args
                    .iter()
                    .map(|t| self.term(t))
                    .collect::<Result<_, _>>()?;
                Ok(PropFormula::Var(
                    self.var_for_fact(Fact::new(rel_ix, tuple)),
                ))
            }
            Formula::Not(inner) => match inner.as_ref() {
                Formula::Atom { .. } => Ok(PropFormula::not(self.expand(inner)?)),
                Formula::Eq(a, b) => Ok(PropFormula::Const(self.term(a)? != self.term(b)?)),
                Formula::True => Ok(PropFormula::Const(false)),
                Formula::False => Ok(PropFormula::Const(true)),
                _ => Err(GroundError::NotExistential), // NNF guarantees this is dead
            },
            Formula::And(fs) => Ok(PropFormula::and(
                fs.iter()
                    .map(|g| self.expand(g))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Formula::Or(fs) => Ok(PropFormula::or(
                fs.iter()
                    .map(|g| self.expand(g))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Formula::Exists(vars, body) => {
                // ∃ȳ φ ⟼ ⋁_b̄ φ[b̄] — the quantifier elimination of Thm 5.4.
                let mut disjuncts = Vec::new();
                let shadowed: Vec<(String, Option<u32>)> = vars
                    .iter()
                    .map(|v| (v.clone(), self.env.get(v).copied()))
                    .collect();
                for tuple in self.db.universe().tuples(vars.len()) {
                    for (v, e) in vars.iter().zip(tuple.iter()) {
                        self.env.insert(v.clone(), *e);
                    }
                    disjuncts.push(self.expand(body)?);
                }
                for (v, old) in shadowed {
                    match old {
                        Some(e) => {
                            self.env.insert(v, e);
                        }
                        None => {
                            self.env.remove(&v);
                        }
                    }
                }
                Ok(PropFormula::or(disjuncts))
            }
            Formula::Forall(..) | Formula::ExistsRel(..) | Formula::ForallRel(..) => {
                Err(GroundError::NotExistential)
            }
        }
    }
}

/// Ground an existential sentence over `db` into DNF, with free variables
/// pre-bound via `bindings` (empty for sentences).
///
/// `max_terms` bounds the DNF size; for an existential query with `k`
/// quantified variables the grounding has O(c·n^k) terms for a
/// formula-dependent constant `c`, so pass something comfortably above
/// that.
pub fn ground_existential(
    db: &Database,
    formula: &Formula,
    bindings: &HashMap<String, u32>,
    max_terms: usize,
) -> Result<Grounding, GroundError> {
    ground_existential_budgeted(db, formula, bindings, max_terms, &Budget::unlimited())
}

/// [`ground_existential`] under a cooperative [`Budget`]: the expansion
/// recursion checkpoints the deadline/cancellation on every node, the
/// DNF size is additionally clamped to the budget's remaining
/// [`Resource::Terms`], and the produced terms are charged against it.
pub fn ground_existential_budgeted(
    db: &Database,
    formula: &Formula,
    bindings: &HashMap<String, u32>,
    max_terms: usize,
    budget: &Budget,
) -> Result<Grounding, GroundError> {
    let nnf = formula.to_nnf();
    let mut g = Grounder {
        db,
        budget,
        indexer: db.fact_indexer(),
        atoms: AtomTable::new(),
        facts: Vec::new(),
        by_fact_index: HashMap::new(),
        env: bindings.clone(),
    };
    let prop = g.expand(&nnf)?;
    let effective_max = match budget.remaining(Resource::Terms) {
        Some(r) => max_terms.min(usize::try_from(r).unwrap_or(usize::MAX)),
        None => max_terms,
    };
    let mut dnf = match prop.to_dnf(effective_max) {
        Some(d) => d,
        // Blowup past the caller's cap is `TooLarge`; blowup past the
        // (tighter) budget cap is a budget trip, recorded by charging
        // one term past the remainder.
        None if effective_max < max_terms => {
            let e = budget
                .charge(Resource::Terms, effective_max as u64 + 1)
                .expect_err("terms budget known exhausted");
            return Err(GroundError::Budget(e));
        }
        None => return Err(GroundError::TooLarge { max_terms }),
    };
    dnf.simplify();
    budget
        .charge(Resource::Terms, dnf.num_terms() as u64)
        .map_err(GroundError::Budget)?;
    // Compact: expansion interns a variable for every atom it *visits*,
    // including ones eliminated by equality constants or simplification.
    // Keep only variables the final DNF mentions, renumbering densely.
    let used = dnf.vars();
    let mut remap: HashMap<VarId, VarId> = HashMap::new();
    let mut atoms = AtomTable::new();
    let mut facts = Vec::with_capacity(used.len());
    for v in used {
        let nv = atoms.intern(g.atoms.name(v));
        remap.insert(v, nv);
        facts.push(g.facts[v as usize].clone());
    }
    let dnf = Dnf::from_terms(dnf.terms().iter().map(|t| {
        t.iter()
            .map(|l| qrel_logic::prop::Lit {
                var: remap[&l.var],
                positive: l.positive,
            })
            .collect::<Vec<_>>()
    }));
    Ok(Grounding { dnf, atoms, facts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::eval_sentence;
    use qrel_db::DatabaseBuilder;
    use qrel_logic::parser::parse_formula;

    fn graph() -> Database {
        DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .tuples("S", [vec![0]])
            .build()
    }

    #[test]
    fn grounding_agrees_with_direct_eval() {
        // On the *observed* database, the grounded DNF must evaluate to the
        // same truth value as the original sentence.
        let db = graph();
        for src in [
            "exists x y. E(x,y) & S(x)",
            "exists x. S(x) & !E(x,x)",
            "exists x y. E(x,y) & x != y",
            "exists x. !S(x)",
            "exists x y z. E(x,y) & E(y,z) & S(z)",
        ] {
            let f = parse_formula(src).unwrap();
            let g = ground_existential(&db, &f, &HashMap::new(), 10_000).unwrap();
            assert_eq!(
                g.eval_on(&db),
                eval_sentence(&db, &f).unwrap(),
                "mismatch for {src}"
            );
        }
    }

    #[test]
    fn grounding_agrees_on_all_small_worlds() {
        // Strong check: the grounded DNF tracks the sentence on *every*
        // database of the same format, not just the observed one.
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("E", 2)
            .relation("S", 1)
            .build();
        let f = parse_formula("exists x y. E(x,y) & S(y) & x != y").unwrap();
        let g = ground_existential(&db, &f, &HashMap::new(), 10_000).unwrap();
        let ix = db.fact_indexer();
        let total = ix.total(); // 4 + 2 = 6 facts
        for mask in 0u64..(1 << total) {
            let mut world = db.clone();
            for i in 0..total {
                world.set_fact(&ix.fact_at(i), (mask >> i) & 1 == 1);
            }
            assert_eq!(
                g.eval_on(&world),
                eval_sentence(&world, &f).unwrap(),
                "world {mask}"
            );
        }
    }

    #[test]
    fn packed_eval_matches_plain_on_all_small_worlds() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("E", 2)
            .relation("S", 1)
            .build();
        let f = parse_formula("exists x y. E(x,y) & S(y) & x != y").unwrap();
        let g = ground_existential(&db, &f, &HashMap::new(), 10_000).unwrap();
        let packed = g.packed_dnf();
        let ix = db.fact_indexer();
        let total = ix.total();
        for mask in 0u64..(1 << total) {
            let mut world = db.clone();
            for i in 0..total {
                world.set_fact(&ix.fact_at(i), (mask >> i) & 1 == 1);
            }
            assert_eq!(
                packed.eval_words(&g.packed_assignment(&world)),
                g.eval_on(&world),
                "world {mask}"
            );
        }
    }

    #[test]
    fn width_independent_of_database_size() {
        let f = parse_formula("exists x y. E(x,y) & S(x) & S(y)").unwrap();
        let mut widths = Vec::new();
        for n in [2usize, 4, 8] {
            let db = DatabaseBuilder::new()
                .universe_size(n)
                .relation("E", 2)
                .relation("S", 1)
                .build();
            let g = ground_existential(&db, &f, &HashMap::new(), 100_000).unwrap();
            widths.push(g.width());
            // Term count grows like n^2 (num quantified vars), not more.
            assert!(g.dnf.num_terms() <= n * n);
        }
        assert!(widths.iter().all(|&w| w == widths[0]));
        assert_eq!(widths[0], 3); // E(x,y), S(x), S(y)
    }

    #[test]
    fn free_variables_via_bindings() {
        let db = graph();
        let f = parse_formula("exists y. E(x, y)").unwrap();
        let mut b = HashMap::new();
        b.insert("x".to_string(), 0u32);
        let g = ground_existential(&db, &f, &b, 1000).unwrap();
        assert!(g.eval_on(&db));
        b.insert("x".to_string(), 2u32);
        let g2 = ground_existential(&db, &f, &b, 1000).unwrap();
        assert!(!g2.eval_on(&db));
    }

    #[test]
    fn equalities_resolved_away() {
        let db = graph();
        let f = parse_formula("exists x y. x = y & E(x,y)").unwrap();
        let g = ground_existential(&db, &f, &HashMap::new(), 1000).unwrap();
        // Only the diagonal E facts survive; no equality variables exist.
        for fact in &g.facts {
            assert_eq!(fact.tuple[0], fact.tuple[1]);
        }
    }

    #[test]
    fn rejects_universal() {
        let db = graph();
        let f = parse_formula("forall x. S(x)").unwrap();
        assert_eq!(
            ground_existential(&db, &f, &HashMap::new(), 1000).unwrap_err(),
            GroundError::NotExistential
        );
        // Negated existential is universal after NNF.
        let f2 = parse_formula("!(exists x. S(x))").unwrap();
        assert_eq!(
            ground_existential(&db, &f2, &HashMap::new(), 1000).unwrap_err(),
            GroundError::NotExistential
        );
    }

    #[test]
    fn term_budget_enforced() {
        let db = DatabaseBuilder::new()
            .universe_size(10)
            .relation("S", 1)
            .build();
        let f = parse_formula("exists x y z. S(x) & S(y) & S(z)").unwrap();
        assert!(matches!(
            ground_existential(&db, &f, &HashMap::new(), 10),
            Err(GroundError::TooLarge { .. })
        ));
    }

    #[test]
    fn variable_names_are_fact_names() {
        let db = graph();
        let f = parse_formula("exists x. S(x)").unwrap();
        let g = ground_existential(&db, &f, &HashMap::new(), 1000).unwrap();
        assert_eq!(g.num_vars(), 3);
        assert_eq!(g.atoms.name(0), "S(0)");
    }
}
