//! First-order (and bounded second-order) model checking.

use qrel_db::{Database, Element, Relation};
use qrel_logic::{Formula, Term};
use std::collections::HashMap;
use std::fmt;

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A relational atom refers to a symbol neither in the vocabulary nor
    /// bound by a second-order quantifier.
    UnknownRelation(String),
    /// Atom arity disagrees with the vocabulary/quantifier declaration.
    ArityMismatch {
        rel: String,
        expected: usize,
        got: usize,
    },
    /// A constant name that is neither a universe element name nor a
    /// numeric element index.
    UnknownConstant(String),
    /// A free variable was encountered without a binding.
    UnboundVariable(String),
    /// Second-order quantification whose search space exceeds the guard.
    SecondOrderTooLarge {
        rel: String,
        arity: usize,
        universe: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            EvalError::ArityMismatch { rel, expected, got } => {
                write!(
                    f,
                    "relation {rel:?} expects {expected} arguments, got {got}"
                )
            }
            EvalError::UnknownConstant(c) => write!(f, "unknown constant {c:?}"),
            EvalError::UnboundVariable(v) => write!(f, "unbound variable {v:?}"),
            EvalError::SecondOrderTooLarge {
                rel,
                arity,
                universe,
            } => write!(
                f,
                "second-order quantifier over {rel:?}/{arity} on a universe of {universe} \
                 elements exceeds the enumeration guard"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Guard: a second-order quantifier enumerates `2^(n^arity)` relations;
/// refuse beyond this many candidate tuples (i.e. `n^arity > guard`).
const SO_GUARD_TUPLES: usize = 20;

/// Resolve a constant name to an element: first as a universe element
/// name, then as a numeric index.
fn resolve_const(db: &Database, name: &str) -> Result<Element, EvalError> {
    if let Some(e) = db.universe().lookup(name) {
        return Ok(e);
    }
    if let Ok(i) = name.parse::<u32>() {
        if (i as usize) < db.size() {
            return Ok(i);
        }
    }
    Err(EvalError::UnknownConstant(name.to_string()))
}

struct Evaluator<'a> {
    db: &'a Database,
    /// First-order environment.
    env: HashMap<String, Element>,
    /// Second-order environment: relation variables bound by ∃X/∀X.
    rel_env: HashMap<String, Relation>,
}

impl<'a> Evaluator<'a> {
    fn term(&self, t: &Term) -> Result<Element, EvalError> {
        match t {
            Term::Var(v) => self
                .env
                .get(v)
                .copied()
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
            Term::Const(c) => resolve_const(self.db, c),
        }
    }

    fn eval(&mut self, f: &Formula) -> Result<bool, EvalError> {
        match f {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Eq(a, b) => Ok(self.term(a)? == self.term(b)?),
            Formula::Atom { rel, args } => {
                let tuple: Vec<Element> = args
                    .iter()
                    .map(|t| self.term(t))
                    .collect::<Result<_, _>>()?;
                if let Some(r) = self.rel_env.get(rel) {
                    if r.arity() != tuple.len() {
                        return Err(EvalError::ArityMismatch {
                            rel: rel.clone(),
                            expected: r.arity(),
                            got: tuple.len(),
                        });
                    }
                    return Ok(r.contains(&tuple));
                }
                match self.db.vocabulary().index_of(rel) {
                    Some(i) => {
                        let r = self.db.relation(i);
                        if r.arity() != tuple.len() {
                            return Err(EvalError::ArityMismatch {
                                rel: rel.clone(),
                                expected: r.arity(),
                                got: tuple.len(),
                            });
                        }
                        Ok(r.contains(&tuple))
                    }
                    None => Err(EvalError::UnknownRelation(rel.clone())),
                }
            }
            Formula::Not(g) => Ok(!self.eval(g)?),
            Formula::And(gs) => {
                for g in gs {
                    if !self.eval(g)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(gs) => {
                for g in gs {
                    if self.eval(g)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Exists(vars, body) => self.eval_fo_quant(vars, body, true),
            Formula::Forall(vars, body) => self.eval_fo_quant(vars, body, false),
            Formula::ExistsRel(x, k, body) => self.eval_so_quant(x, *k, body, true),
            Formula::ForallRel(x, k, body) => self.eval_so_quant(x, *k, body, false),
        }
    }

    /// Quantifier over element tuples: short-circuiting search.
    fn eval_fo_quant(
        &mut self,
        vars: &[String],
        body: &Formula,
        existential: bool,
    ) -> Result<bool, EvalError> {
        let shadowed: Vec<(String, Option<Element>)> = vars
            .iter()
            .map(|v| (v.clone(), self.env.get(v).copied()))
            .collect();
        let mut result = !existential;
        for tuple in self.db.universe().tuples(vars.len()) {
            for (v, e) in vars.iter().zip(tuple.iter()) {
                self.env.insert(v.clone(), *e);
            }
            let b = self.eval(body)?;
            if b == existential {
                result = existential;
                break;
            }
        }
        for (v, old) in shadowed {
            match old {
                Some(e) => {
                    self.env.insert(v, e);
                }
                None => {
                    self.env.remove(&v);
                }
            }
        }
        Ok(result)
    }

    /// Second-order quantifier: enumerate all relations of the arity.
    fn eval_so_quant(
        &mut self,
        x: &str,
        arity: usize,
        body: &Formula,
        existential: bool,
    ) -> Result<bool, EvalError> {
        let n = self.db.size();
        let tuples: Vec<Vec<Element>> = self.db.universe().tuples(arity).collect();
        if tuples.len() > SO_GUARD_TUPLES {
            return Err(EvalError::SecondOrderTooLarge {
                rel: x.to_string(),
                arity,
                universe: n,
            });
        }
        let old = self.rel_env.remove(x);
        let mut result = !existential;
        for mask in 0u64..(1u64 << tuples.len()) {
            let rel = Relation::from_tuples(
                arity,
                tuples
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (mask >> i) & 1 == 1)
                    .map(|(_, t)| t.clone()),
            );
            self.rel_env.insert(x.to_string(), rel);
            let b = self.eval(body)?;
            if b == existential {
                result = existential;
                break;
            }
        }
        match old {
            Some(r) => {
                self.rel_env.insert(x.to_string(), r);
            }
            None => {
                self.rel_env.remove(x);
            }
        }
        Ok(result)
    }
}

/// Evaluate a formula under an explicit variable binding.
pub fn eval_formula(
    db: &Database,
    formula: &Formula,
    bindings: &HashMap<String, Element>,
) -> Result<bool, EvalError> {
    let mut ev = Evaluator {
        db,
        env: bindings.clone(),
        rel_env: HashMap::new(),
    };
    ev.eval(formula)
}

/// Evaluate a sentence (no free variables).
pub fn eval_sentence(db: &Database, sentence: &Formula) -> Result<bool, EvalError> {
    eval_formula(db, sentence, &HashMap::new())
}

/// Compute the answer set `ψ^𝔄 = {ā ∈ A^k : 𝔄 ⊨ ψ(ā)}` where the free
/// variables are taken in the given order (the query's tuple order).
pub fn query_answers(
    db: &Database,
    formula: &Formula,
    free_vars: &[String],
) -> Result<Relation, EvalError> {
    let mut out = Relation::new(free_vars.len());
    let mut bindings = HashMap::new();
    for tuple in db.universe().tuples(free_vars.len()) {
        bindings.clear();
        for (v, e) in free_vars.iter().zip(tuple.iter()) {
            bindings.insert(v.clone(), *e);
        }
        if eval_formula(db, formula, &bindings)? {
            out.insert(tuple);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_db::DatabaseBuilder;
    use qrel_logic::parser::parse_formula;

    fn graph() -> Database {
        // Path 0 -> 1 -> 2, node 3 isolated; S = {0, 2}.
        DatabaseBuilder::new()
            .universe_size(4)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .tuples("S", [vec![0], vec![2]])
            .build()
    }

    fn holds(src: &str) -> bool {
        eval_sentence(&graph(), &parse_formula(src).unwrap()).unwrap()
    }

    #[test]
    fn sentences() {
        assert!(holds("exists x y. E(x,y)"));
        assert!(!holds("forall x. S(x)"));
        assert!(holds("exists x. S(x) & !E(x,x)"));
        assert!(holds("forall x y. E(x,y) -> !E(y,x)"));
        assert!(holds("exists x y. E(x,y) & S(x) & !S(y)"));
        // Every edge source is in S or has an incoming edge.
        assert!(holds(
            "forall x. (exists y. E(x,y)) -> (S(x) | exists z. E(z,x))"
        ));
    }

    #[test]
    fn equality_and_constants() {
        assert!(holds("exists x. x = 'e3' & !S(x)"));
        assert!(holds("exists x. x = 2 & S(x)"));
        assert!(!holds("exists x. x = 1 & S(x)"));
        assert!(holds("forall x y. E(x,y) -> x != y"));
    }

    #[test]
    fn answer_sets() {
        let f = parse_formula("exists y. E(x, y)").unwrap();
        let ans = query_answers(&graph(), &f, &["x".to_string()]).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&[0]) && ans.contains(&[1]));

        // Binary query: pairs at distance exactly 2.
        let f2 = parse_formula("exists z. E(x, z) & E(z, y)").unwrap();
        let ans2 = query_answers(&graph(), &f2, &["x".to_string(), "y".to_string()]).unwrap();
        assert_eq!(ans2.len(), 1);
        assert!(ans2.contains(&[0, 2]));
    }

    #[test]
    fn nullary_answer_set() {
        let f = parse_formula("exists x. S(x)").unwrap();
        let ans = query_answers(&graph(), &f, &[]).unwrap();
        assert_eq!(ans.len(), 1); // the empty tuple: sentence holds
        let f2 = parse_formula("forall x. S(x)").unwrap();
        let ans2 = query_answers(&graph(), &f2, &[]).unwrap();
        assert!(ans2.is_empty());
    }

    #[test]
    fn errors() {
        let db = graph();
        assert!(matches!(
            eval_sentence(&db, &parse_formula("exists x. T(x)").unwrap()),
            Err(EvalError::UnknownRelation(_))
        ));
        assert!(matches!(
            eval_sentence(&db, &parse_formula("exists x. E(x)").unwrap()),
            Err(EvalError::ArityMismatch { .. })
        ));
        assert!(matches!(
            eval_sentence(&db, &parse_formula("exists x. x = 'nobody'").unwrap()),
            Err(EvalError::UnknownConstant(_))
        ));
        assert!(matches!(
            eval_formula(&db, &parse_formula("S(x)").unwrap(), &HashMap::new()),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn second_order_quantification() {
        // ∃X ∀x (X(x) ↔ S(x)) — trivially true (take X = S).
        let db = graph();
        let f = Formula::ExistsRel(
            "X".into(),
            1,
            Box::new(parse_formula("forall x. (X(x) -> S(x)) & (S(x) -> X(x))").unwrap()),
        );
        assert!(eval_sentence(&db, &f).unwrap());

        // ∃X: X is a proper nonempty subset closed under E-successors.
        // For our path graph {2} works (2 has no successors).
        let g = Formula::ExistsRel(
            "X".into(),
            1,
            Box::new(
                parse_formula(
                    "(exists x. X(x)) & (exists x. !X(x)) & \
                     (forall x y. X(x) & E(x,y) -> X(y))",
                )
                .unwrap(),
            ),
        );
        assert!(eval_sentence(&db, &g).unwrap());

        // ∀X (∃x X(x)) is false (take X = ∅).
        let h = Formula::ForallRel(
            "X".into(),
            1,
            Box::new(parse_formula("exists x. X(x)").unwrap()),
        );
        assert!(!eval_sentence(&db, &h).unwrap());
    }

    #[test]
    fn second_order_guard() {
        let db = DatabaseBuilder::new()
            .universe_size(6)
            .relation("E", 2)
            .build();
        let f = Formula::ExistsRel(
            "X".into(),
            2,
            Box::new(parse_formula("exists x y. X(x,y)").unwrap()),
        );
        assert!(matches!(
            eval_sentence(&db, &f),
            Err(EvalError::SecondOrderTooLarge { .. })
        ));
    }

    #[test]
    fn quantifier_shadowing_restores_env() {
        // After evaluating ∃x inside, the outer binding of x must be intact.
        let f = parse_formula("S(x) & (exists x. !S(x)) & S(x)").unwrap();
        let mut b = HashMap::new();
        b.insert("x".to_string(), 0);
        assert!(eval_formula(&graph(), &f, &b).unwrap());
    }

    #[test]
    fn empty_universe_quantifiers() {
        let db = DatabaseBuilder::new()
            .universe_size(0)
            .relation("S", 1)
            .build();
        assert!(!eval_sentence(&db, &parse_formula("exists x. S(x)").unwrap()).unwrap());
        assert!(eval_sentence(&db, &parse_formula("forall x. S(x)").unwrap()).unwrap());
    }
}
