//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::rc::Rc;

/// A generator of values of one type. `generate` draws a single value;
/// all combinators are pure wrappers around it.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            f: Rc::new(f),
        }
    }

    /// Build a recursive strategy: `self` generates leaves, `expand`
    /// wraps an inner strategy into the next layer. `depth` bounds the
    /// recursion; the remaining upstream tuning knobs are accepted for
    /// signature compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        Recursive {
            base: self.boxed(),
            expand: Rc::new(move |inner| expand(inner).boxed()),
            depth,
        }
    }

    /// Type-erase into a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, reference-counted strategy handle.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    source: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            source: self.source.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// `prop_recursive` combinator: a depth-bounded fixpoint.
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    #[allow(clippy::type_complexity)]
    expand: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    depth: u32,
}

impl<V> Clone for Recursive<V> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            expand: Rc::clone(&self.expand),
            depth: self.depth,
        }
    }
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        // Draw a leaf a quarter of the time so generated trees vary in
        // depth; at depth 0 always take the leaf.
        if self.depth == 0 || rng.gen_range(0..4u32) == 0 {
            self.base.generate(rng)
        } else {
            let deeper = Recursive {
                base: self.base.clone(),
                expand: Rc::clone(&self.expand),
                depth: self.depth - 1,
            };
            (self.expand)(deeper.boxed()).generate(rng)
        }
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

/// String literals act as regex-shaped string generators.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..50 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(())
            .prop_map(|_| Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }
}
