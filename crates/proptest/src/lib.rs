//! Vendored, offline subset of the `proptest` API used by this
//! workspace.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its message and the
//!   deterministic runner seed; re-running reproduces it exactly.
//! - **Deterministic seeds.** Each `proptest!` test derives its RNG seed
//!   from the test's fully-qualified name (FNV-1a), so two consecutive
//!   `cargo test` runs explore identical cases — a repo-level
//!   determinism guarantee that the golden-output tests rely on.
//! - Strategies are generators only: `Strategy::generate` draws one
//!   value from a `rand::rngs::StdRng`.
//!
//! The supported combinator surface is exactly what the repo's property
//! tests use: ranges, `any`, `Just`, tuples, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `collection::vec`, `option::of`,
//! and string-literal regex strategies.

pub mod strategy;

pub mod string;

/// Outcome of a single test case body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: draw a fresh case without counting this one.
    Reject,
    /// An assertion failed: abort the whole test.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod test_runner {
    use super::{ProptestConfig, TestCaseError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Drives one `proptest!` test: draws cases from a name-derived
    /// deterministic RNG and panics on the first failure.
    pub struct TestRunner {
        config: ProptestConfig,
        name: String,
        seed: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            TestRunner {
                config,
                name: name.to_string(),
                seed: fnv1a(name.as_bytes()),
            }
        }

        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
        {
            let mut rng = StdRng::seed_from_u64(self.seed);
            let cases = self.config.cases.max(1);
            // `prop_assume!` rejections re-draw; bound the total effort.
            let max_attempts = cases.saturating_mul(20).max(1000);
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest `{}`: too many rejected cases ({accepted}/{cases} accepted \
                     after {max_attempts} attempts)",
                    self.name
                );
                match case(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject) => continue,
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest `{}` failed at case #{} (runner seed {:#x}):\n{}",
                        self.name, accepted, self.seed, msg
                    ),
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_prim!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f64);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                size: self.size,
            }
        }
    }

    /// `proptest::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Clone> Clone for OptionStrategy<S> {
        fn clone(&self) -> Self {
            OptionStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    /// `proptest::option::of(strategy)`: `None` about a quarter of the
    /// time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_range(0..4u32) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let strategies = ($($strat,)+);
            let mut runner = $crate::test_runner::TestRunner::new(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(move |rng| {
                let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategies, rng);
                let case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Uniform choice between heterogeneous strategies with a common value
/// type (each arm is boxed).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "{}\n  left: `{:?}`\n right: `{:?}`",
                            ::std::format!($($fmt)+), l, r
                        ),
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!("assertion failed: `(left != right)`\n  both: `{:?}`", l),
                    ));
                }
            }
        }
    };
}
