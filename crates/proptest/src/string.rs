//! A tiny regex *sampler*: string-literal strategies generate strings
//! matching the pattern. Supports the constructs the repo's tests use —
//! literals, `\`-escapes, character classes with ranges, groups,
//! alternation, and the `{m}` / `{m,n}` / `?` / `*` / `+` repeaters
//! (unbounded repeaters are capped at 8).

use rand::rngs::StdRng;
use rand::Rng;

/// Generate one string matching `pattern`.
///
/// # Panics
/// Panics on syntax this mini-dialect does not support — that is a bug
/// in the test, not an input condition.
pub fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
    let mut parser = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
    };
    let node = parser.parse_alternation();
    assert!(
        parser.pos == parser.chars.len(),
        "unsupported regex `{pattern}`: trailing `{}`",
        parser.chars[parser.pos..].iter().collect::<String>()
    );
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

enum Node {
    /// Concatenation of items.
    Seq(Vec<Node>),
    /// `a|b|c` — uniform choice.
    Alt(Vec<Node>),
    /// Single literal character.
    Lit(char),
    /// Character class: the expanded set of candidate characters.
    Class(Vec<char>),
    /// `x{m,n}` — repeat with a count drawn uniformly from `m..=n`.
    Repeat(Box<Node>, usize, usize),
}

fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Seq(items) => {
            for item in items {
                emit(item, rng, out);
            }
        }
        Node::Alt(branches) => {
            let idx = rng.gen_range(0..branches.len());
            emit(&branches[idx], rng, out);
        }
        Node::Lit(c) => out.push(*c),
        Node::Class(chars) => {
            let idx = rng.gen_range(0..chars.len());
            out.push(chars[idx]);
        }
        Node::Repeat(inner, min, max) => {
            let count = rng.gen_range(*min..=*max);
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn parse_alternation(&mut self) -> Node {
        let mut branches = vec![self.parse_sequence()];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.parse_sequence());
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Node::Alt(branches)
        }
    }

    fn parse_sequence(&mut self) -> Node {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            items.push(self.parse_repeat(atom));
        }
        Node::Seq(items)
    }

    fn parse_atom(&mut self) -> Node {
        match self
            .bump()
            .expect("regex sampler: unexpected end of pattern")
        {
            '(' => {
                let inner = self.parse_alternation();
                assert_eq!(self.bump(), Some(')'), "regex sampler: unclosed group");
                inner
            }
            '[' => self.parse_class(),
            '\\' => Node::Lit(
                self.bump()
                    .expect("regex sampler: dangling escape at end of pattern"),
            ),
            '.' => Node::Class((' '..='~').collect()),
            c => Node::Lit(c),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut chars = Vec::new();
        let negated = if self.peek() == Some('^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut members = Vec::new();
        loop {
            let c = match self.bump() {
                Some(']') => break,
                Some('\\') => self
                    .bump()
                    .expect("regex sampler: dangling escape in class"),
                Some(c) => c,
                None => panic!("regex sampler: unclosed character class"),
            };
            // A `-` between two members denotes a range unless it is the
            // last character before `]`.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.pos += 1; // consume '-'
                let end = match self.bump() {
                    Some('\\') => self
                        .bump()
                        .expect("regex sampler: dangling escape in class"),
                    Some(e) => e,
                    None => panic!("regex sampler: unclosed character class"),
                };
                assert!(c <= end, "regex sampler: inverted class range");
                members.extend(c..=end);
            } else {
                members.push(c);
            }
        }
        if negated {
            chars.extend((' '..='~').filter(|c| !members.contains(c)));
        } else {
            chars = members;
        }
        assert!(!chars.is_empty(), "regex sampler: empty character class");
        Node::Class(chars)
    }

    fn parse_repeat(&mut self, atom: Node) -> Node {
        match self.peek() {
            Some('{') => {
                self.pos += 1;
                let min = self.parse_usize();
                let max = if self.peek() == Some(',') {
                    self.pos += 1;
                    self.parse_usize()
                } else {
                    min
                };
                assert_eq!(self.bump(), Some('}'), "regex sampler: unclosed repeat");
                assert!(min <= max, "regex sampler: inverted repeat bounds");
                Node::Repeat(Box::new(atom), min, max)
            }
            Some('?') => {
                self.pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.pos += 1;
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.pos += 1;
                Node::Repeat(Box::new(atom), 1, 8)
            }
            _ => atom,
        }
    }

    fn parse_usize(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .expect("regex sampler: expected a number in repeat bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn printable_class_with_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = sample_regex("[ -~]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn alternation_of_groups() {
        let mut rng = StdRng::seed_from_u64(2);
        let pat = "(exists |forall |[a-z]\\(|[xyz]|[(),.&|!=<>' -]){0,30}";
        for _ in 0..200 {
            let s = sample_regex(pat, &mut rng);
            // Every produced chunk is one of the alternatives; just check
            // the character inventory stays within the printable set.
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "bad {s:?}");
        }
    }

    #[test]
    fn literals_ranges_and_repeats() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample_regex("abc", &mut rng), "abc");
        let s = sample_regex("a{3}", &mut rng);
        assert_eq!(s, "aaa");
        for _ in 0..50 {
            let s = sample_regex("[0-9]+", &mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }
}
