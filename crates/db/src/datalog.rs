//! Stratified Datalog with semi-naive evaluation.
//!
//! The paper singles out Datalog and fixed-point queries as
//! polynomial-time evaluable query languages whose reliability is in
//! FP^#P (Section 4) and whose reliability can be estimated with absolute
//! error by the Theorem 5.12 Monte-Carlo scheme. This module provides the
//! substrate: a stratified-negation Datalog engine over [`Database`]s.
//!
//! ```
//! use qrel_db::{DatabaseBuilder};
//! use qrel_db::datalog::{DatalogProgram, rule};
//! let db = DatabaseBuilder::new()
//!     .universe_size(4)
//!     .relation("E", 2)
//!     .tuples("E", [vec![0, 1], vec![1, 2], vec![2, 3]])
//!     .build();
//! // Transitive closure.
//! let prog = DatalogProgram::parse(
//!     "T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).").unwrap();
//! let out = prog.evaluate(&db).unwrap();
//! assert!(out["T"].contains(&[0, 3]));
//! assert!(!out["T"].contains(&[3, 0]));
//! ```

use crate::database::Database;
use crate::relation::Relation;
use crate::universe::Element;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Term in a Datalog atom: a variable or an element constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DlTerm {
    Var(String),
    Const(Element),
}

/// A Datalog atom `R(t₁, …, t_k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlAtom {
    pub rel: String,
    pub args: Vec<DlTerm>,
}

/// A body literal: an atom, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlLiteral {
    pub atom: DlAtom,
    pub negated: bool,
}

/// A Datalog rule `head :- body₁, …, body_m.`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlRule {
    pub head: DlAtom,
    pub body: Vec<DlLiteral>,
}

/// Convenience constructor for rules in code (tests, examples).
pub fn rule(head: DlAtom, body: Vec<DlLiteral>) -> DlRule {
    DlRule { head, body }
}

/// Errors from program validation or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    Parse(String),
    /// A head or negated variable not bound by a positive body literal.
    Unsafe(String),
    /// Negation through a recursive cycle.
    NotStratifiable(String),
    /// Inconsistent arity usage for a predicate.
    ArityMismatch(String),
    /// Rule head uses an EDB relation.
    HeadIsEdb(String),
    /// Body references a predicate that is neither EDB nor any rule's head.
    UnknownPredicate(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse(m) => write!(f, "datalog parse error: {m}"),
            DatalogError::Unsafe(m) => write!(f, "unsafe rule: {m}"),
            DatalogError::NotStratifiable(m) => write!(f, "not stratifiable: {m}"),
            DatalogError::ArityMismatch(m) => write!(f, "arity mismatch: {m}"),
            DatalogError::HeadIsEdb(m) => write!(f, "rule head is an EDB relation: {m}"),
            DatalogError::UnknownPredicate(m) => write!(f, "unknown predicate: {m}"),
        }
    }
}

impl std::error::Error for DatalogError {}

/// A Datalog program: a list of rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatalogProgram {
    pub rules: Vec<DlRule>,
}

impl DatalogProgram {
    pub fn new(rules: Vec<DlRule>) -> Self {
        DatalogProgram { rules }
    }

    /// Parse a program in the concrete syntax
    /// `Head(x,y) :- Body1(x,z), !Body2(z), y = 3.` — one or more rules,
    /// each terminated by `.`. Constants are element indices (numbers).
    /// (No equality atoms; use constants in atom positions instead.)
    pub fn parse(src: &str) -> Result<Self, DatalogError> {
        let mut rules = Vec::new();
        for raw_rule in src.split('.') {
            let raw = raw_rule.trim();
            if raw.is_empty() {
                continue;
            }
            let (head_src, body_src) = match raw.split_once(":-") {
                Some((h, b)) => (h.trim(), Some(b.trim())),
                None => (raw, None),
            };
            let head = parse_atom(head_src)?;
            let mut body = Vec::new();
            if let Some(bs) = body_src {
                for lit_src in split_top_level(bs) {
                    let lit_src = lit_src.trim();
                    let (negated, atom_src) = match lit_src.strip_prefix('!') {
                        Some(rest) => (true, rest.trim()),
                        None => (false, lit_src),
                    };
                    body.push(DlLiteral {
                        atom: parse_atom(atom_src)?,
                        negated,
                    });
                }
            }
            rules.push(DlRule { head, body });
        }
        if rules.is_empty() {
            return Err(DatalogError::Parse("empty program".into()));
        }
        Ok(DatalogProgram { rules })
    }

    /// Head predicates (the IDB), in first-occurrence order.
    pub fn idb_predicates(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for r in &self.rules {
            if seen.insert(r.head.rel.clone()) {
                out.push(r.head.rel.clone());
            }
        }
        out
    }

    /// Validate safety, arities and stratifiability against an EDB schema.
    /// Returns the strata: IDB predicates grouped by evaluation order.
    pub fn validate(&self, edb: &Database) -> Result<Vec<Vec<String>>, DatalogError> {
        let idb: HashSet<String> = self.idb_predicates().into_iter().collect();

        // Arity consistency across all occurrences.
        let mut arity: HashMap<&str, usize> = HashMap::new();
        for sym in edb.vocabulary().symbols() {
            arity.insert(sym.name(), sym.arity());
        }
        fn check(arity: &HashMap<&str, usize>, rel: &str, len: usize) -> Result<(), DatalogError> {
            match arity.get(rel) {
                Some(&a) if a != len => Err(DatalogError::ArityMismatch(format!(
                    "{rel} used with arity {len}, expected {a}"
                ))),
                Some(_) => Ok(()),
                None => Err(DatalogError::UnknownPredicate(rel.to_string())),
            }
        }
        // Seed IDB arities from heads (first occurrence wins).
        for r in &self.rules {
            if edb.vocabulary().get(&r.head.rel).is_some() {
                return Err(DatalogError::HeadIsEdb(r.head.rel.clone()));
            }
            arity
                .entry(r.head.rel.as_str())
                .or_insert(r.head.args.len());
        }
        for r in &self.rules {
            check(&arity, &r.head.rel, r.head.args.len())?;
            for l in &r.body {
                check(&arity, &l.atom.rel, l.atom.args.len())?;
            }
        }

        // Safety: every head variable and every variable in a negated
        // literal must occur in some positive body literal.
        for r in &self.rules {
            let mut positive_vars = HashSet::new();
            for l in &r.body {
                if !l.negated {
                    for t in &l.atom.args {
                        if let DlTerm::Var(v) = t {
                            positive_vars.insert(v.clone());
                        }
                    }
                }
            }
            let mut need: Vec<&DlTerm> = r.head.args.iter().collect();
            for l in &r.body {
                if l.negated {
                    need.extend(l.atom.args.iter());
                }
            }
            for t in need {
                if let DlTerm::Var(v) = t {
                    if !positive_vars.contains(v) {
                        return Err(DatalogError::Unsafe(format!(
                            "variable {v} in rule for {} is not positively bound",
                            r.head.rel
                        )));
                    }
                }
            }
        }

        // Stratification: longest-path layering; negation edges must
        // strictly increase the stratum. Iterate to fixpoint; a stratum
        // exceeding the predicate count witnesses a negative cycle.
        let preds: Vec<String> = idb.iter().cloned().collect();
        let mut stratum: HashMap<&str, usize> = preds.iter().map(|p| (p.as_str(), 0)).collect();
        let limit = preds.len() + 1;
        loop {
            let mut changed = false;
            for r in &self.rules {
                let head_s = stratum[r.head.rel.as_str()];
                for l in &r.body {
                    if !idb.contains(&l.atom.rel) {
                        continue;
                    }
                    let body_s = stratum[l.atom.rel.as_str()];
                    let required = if l.negated { body_s + 1 } else { body_s };
                    if head_s < required {
                        *stratum.get_mut(r.head.rel.as_str()).unwrap() = required;
                        if required > limit {
                            return Err(DatalogError::NotStratifiable(format!(
                                "negation cycle through {}",
                                r.head.rel
                            )));
                        }
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let max_s = stratum.values().copied().max().unwrap_or(0);
        let mut strata: Vec<Vec<String>> = vec![Vec::new(); max_s + 1];
        // Deterministic order within a stratum.
        let mut sorted_preds: Vec<&String> = preds.iter().collect();
        sorted_preds.sort();
        for p in sorted_preds {
            strata[stratum[p.as_str()]].push(p.clone());
        }
        Ok(strata)
    }

    /// Evaluate against an EDB database, returning the IDB relations.
    pub fn evaluate(&self, edb: &Database) -> Result<BTreeMap<String, Relation>, DatalogError> {
        let strata = self.validate(edb)?;
        let mut idb: BTreeMap<String, Relation> = BTreeMap::new();
        for r in &self.rules {
            idb.entry(r.head.rel.clone())
                .or_insert_with(|| Relation::new(r.head.args.len()));
        }

        for stratum_preds in &strata {
            let in_stratum: HashSet<&str> = stratum_preds.iter().map(|s| s.as_str()).collect();
            let rules: Vec<&DlRule> = self
                .rules
                .iter()
                .filter(|r| in_stratum.contains(r.head.rel.as_str()))
                .collect();

            // Naive first round to seed deltas, then semi-naive iteration.
            let mut delta: BTreeMap<String, Relation> = BTreeMap::new();
            for p in stratum_preds {
                delta.insert(p.clone(), Relation::new(idb[p].arity()));
            }
            for r in &rules {
                let derived = derive(r, edb, &idb, None, &in_stratum);
                for t in derived.iter() {
                    if !idb[&r.head.rel].contains(t) {
                        delta.get_mut(&r.head.rel).unwrap().insert(t.clone());
                    }
                }
            }
            for p in stratum_preds {
                let d = delta[p].clone();
                idb.get_mut(p).unwrap().union_with(&d);
            }

            loop {
                let mut new_delta: BTreeMap<String, Relation> = BTreeMap::new();
                for p in stratum_preds {
                    new_delta.insert(p.clone(), Relation::new(idb[p].arity()));
                }
                let mut any = false;
                for r in &rules {
                    // Semi-naive: one positive in-stratum literal restricted
                    // to the delta, per occurrence.
                    for (i, l) in r.body.iter().enumerate() {
                        if l.negated || !in_stratum.contains(l.atom.rel.as_str()) {
                            continue;
                        }
                        let derived = derive(r, edb, &idb, Some((i, &delta)), &in_stratum);
                        for t in derived.iter() {
                            if !idb[&r.head.rel].contains(t)
                                && new_delta.get_mut(&r.head.rel).unwrap().insert(t.clone())
                            {
                                any = true;
                            }
                        }
                    }
                }
                if !any {
                    break;
                }
                for p in stratum_preds {
                    let d = new_delta[p].clone();
                    idb.get_mut(p).unwrap().union_with(&d);
                }
                delta = new_delta;
            }
        }
        Ok(idb)
    }
}

/// Evaluate one rule, optionally restricting body literal `delta_at.0` to
/// the delta relations. Negated literals are checked against the full IDB
/// (sound because they refer to lower strata only).
fn derive(
    rule: &DlRule,
    edb: &Database,
    idb: &BTreeMap<String, Relation>,
    delta_at: Option<(usize, &BTreeMap<String, Relation>)>,
    _in_stratum: &HashSet<&str>,
) -> Relation {
    let mut out = Relation::new(rule.head.args.len());
    let mut env: HashMap<&str, Element> = HashMap::new();
    eval_body(rule, 0, edb, idb, delta_at, &mut env, &mut out);
    out
}

fn eval_body<'r>(
    rule: &'r DlRule,
    pos: usize,
    edb: &Database,
    idb: &BTreeMap<String, Relation>,
    delta_at: Option<(usize, &BTreeMap<String, Relation>)>,
    env: &mut HashMap<&'r str, Element>,
    out: &mut Relation,
) {
    if pos == rule.body.len() {
        let tuple: Vec<Element> = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                DlTerm::Const(c) => *c,
                DlTerm::Var(v) => *env.get(v.as_str()).expect("unsafe rule slipped through"),
            })
            .collect();
        out.insert(tuple);
        return;
    }
    let lit = &rule.body[pos];
    let source: &Relation = match (&delta_at, idb.get(&lit.atom.rel)) {
        (Some((i, deltas)), _) if *i == pos => &deltas[&lit.atom.rel],
        (_, Some(r)) => r,
        (_, None) => edb.relation_by_name(&lit.atom.rel).expect("validated"),
    };
    if lit.negated {
        // All variables are bound (safety); just test membership.
        let tuple: Vec<Element> = lit
            .atom
            .args
            .iter()
            .map(|t| match t {
                DlTerm::Const(c) => *c,
                DlTerm::Var(v) => *env.get(v.as_str()).expect("unsafe rule slipped through"),
            })
            .collect();
        if !source.contains(&tuple) {
            eval_body(rule, pos + 1, edb, idb, delta_at, env, out);
        }
        return;
    }
    'tuples: for t in source.iter() {
        let mut bound_here: Vec<&str> = Vec::new();
        for (arg, &e) in lit.atom.args.iter().zip(t.iter()) {
            match arg {
                DlTerm::Const(c) => {
                    if *c != e {
                        for v in bound_here.drain(..) {
                            env.remove(v);
                        }
                        continue 'tuples;
                    }
                }
                DlTerm::Var(v) => match env.get(v.as_str()) {
                    Some(&prev) => {
                        if prev != e {
                            for v in bound_here.drain(..) {
                                env.remove(v);
                            }
                            continue 'tuples;
                        }
                    }
                    None => {
                        env.insert(v.as_str(), e);
                        bound_here.push(v.as_str());
                    }
                },
            }
        }
        eval_body(rule, pos + 1, edb, idb, delta_at, env, out);
        for v in bound_here {
            env.remove(v);
        }
    }
}

fn parse_atom(src: &str) -> Result<DlAtom, DatalogError> {
    let src = src.trim();
    let open = src
        .find('(')
        .ok_or_else(|| DatalogError::Parse(format!("expected '(' in atom {src:?}")))?;
    if !src.ends_with(')') {
        return Err(DatalogError::Parse(format!(
            "expected ')' at end of atom {src:?}"
        )));
    }
    let rel = src[..open].trim();
    if rel.is_empty() || !rel.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(DatalogError::Parse(format!("bad relation name {rel:?}")));
    }
    let inner = &src[open + 1..src.len() - 1];
    let mut args = Vec::new();
    if !inner.trim().is_empty() {
        for a in inner.split(',') {
            let a = a.trim();
            if a.is_empty() {
                return Err(DatalogError::Parse(format!("empty argument in {src:?}")));
            }
            if a.chars().all(|c| c.is_ascii_digit()) {
                args.push(DlTerm::Const(a.parse().map_err(|_| {
                    DatalogError::Parse(format!("bad constant {a:?}"))
                })?));
            } else if a.chars().all(|c| c.is_alphanumeric() || c == '_') {
                args.push(DlTerm::Var(a.to_string()));
            } else {
                return Err(DatalogError::Parse(format!("bad term {a:?}")));
            }
        }
    }
    Ok(DlAtom {
        rel: rel.to_string(),
        args,
    })
}

/// Split a rule body on commas that are not inside parentheses.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;

    fn path_db() -> Database {
        DatabaseBuilder::new()
            .universe_size(5)
            .relation("E", 2)
            .tuples("E", [vec![0, 1], vec![1, 2], vec![2, 3]])
            .build()
    }

    #[test]
    fn transitive_closure() {
        let prog = DatalogProgram::parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).").unwrap();
        let out = prog.evaluate(&path_db()).unwrap();
        let t = &out["T"];
        assert_eq!(t.len(), 6); // (0,1)(0,2)(0,3)(1,2)(1,3)(2,3)
        assert!(t.contains(&[0, 3]));
        assert!(!t.contains(&[1, 0]));
        assert!(!t.contains(&[4, 4]));
    }

    #[test]
    fn cyclic_graph_closure_terminates() {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .tuples("E", [vec![0, 1], vec![1, 2], vec![2, 0]])
            .build();
        let prog = DatalogProgram::parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).").unwrap();
        let out = prog.evaluate(&db).unwrap();
        assert_eq!(out["T"].len(), 9); // complete
    }

    #[test]
    fn stratified_negation() {
        // Unreachable-from-0 nodes: reach(x) via edges from 0; unreach = node & !reach.
        let db = DatabaseBuilder::new()
            .universe_size(4)
            .relation("E", 2)
            .relation("N", 1)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .tuples("N", [vec![0], vec![1], vec![2], vec![3]])
            .build();
        let prog = DatalogProgram::parse(
            "Reach(x) :- N(x), Zero(x).
             Zero(0) :- N(0).
             Reach(y) :- Reach(x), E(x,y).
             Unreach(x) :- N(x), !Reach(x).",
        )
        .unwrap();
        let out = prog.evaluate(&db).unwrap();
        assert!(out["Reach"].contains(&[2]));
        assert!(!out["Reach"].contains(&[3]));
        assert_eq!(out["Unreach"].len(), 1);
        assert!(out["Unreach"].contains(&[3]));
    }

    #[test]
    fn unsafe_rule_rejected() {
        let prog = DatalogProgram::parse("P(x,y) :- E(x,x).").unwrap();
        assert!(matches!(
            prog.evaluate(&path_db()),
            Err(DatalogError::Unsafe(_))
        ));
        let prog2 = DatalogProgram::parse("P(x) :- E(x,y), !Q(z). Q(x) :- E(x,y).").unwrap();
        assert!(matches!(
            prog2.evaluate(&path_db()),
            Err(DatalogError::Unsafe(_))
        ));
    }

    #[test]
    fn unstratifiable_rejected() {
        let prog = DatalogProgram::parse("P(x) :- E(x,y), !Q(x). Q(x) :- E(x,y), !P(x).").unwrap();
        assert!(matches!(
            prog.evaluate(&path_db()),
            Err(DatalogError::NotStratifiable(_))
        ));
    }

    #[test]
    fn head_is_edb_rejected() {
        let prog = DatalogProgram::parse("E(x,y) :- E(y,x).").unwrap();
        assert!(matches!(
            prog.evaluate(&path_db()),
            Err(DatalogError::HeadIsEdb(_))
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let prog = DatalogProgram::parse("P(x) :- E(x,y). Q(x) :- P(x, y), E(y, x).").unwrap();
        assert!(matches!(
            prog.evaluate(&path_db()),
            Err(DatalogError::ArityMismatch(_))
        ));
    }

    #[test]
    fn unknown_predicate_rejected() {
        let prog = DatalogProgram::parse("P(x) :- Missing(x).").unwrap();
        assert!(matches!(
            prog.evaluate(&path_db()),
            Err(DatalogError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn constants_in_rules() {
        let prog = DatalogProgram::parse("P(y) :- E(0, y).").unwrap();
        let out = prog.evaluate(&path_db()).unwrap();
        assert_eq!(out["P"].len(), 1);
        assert!(out["P"].contains(&[1]));
    }

    #[test]
    fn parse_errors() {
        assert!(DatalogProgram::parse("").is_err());
        assert!(DatalogProgram::parse("P(x :- E(x,y).").is_err());
        assert!(DatalogProgram::parse("P(x) :- E(x,).").is_err());
        assert!(DatalogProgram::parse("P(x) :- E(x,y$).").is_err());
    }

    #[test]
    fn same_generation_classic() {
        // sg(x,y): same generation in a tree. 0 -> 1,2 ; 1 -> 3 ; 2 -> 4.
        let db = DatabaseBuilder::new()
            .universe_size(5)
            .relation("Par", 2)
            .tuples("Par", [vec![0, 1], vec![0, 2], vec![1, 3], vec![2, 4]])
            .build();
        let prog = DatalogProgram::parse(
            "Sg(x,x) :- Par(y,x).
             Sg(x,y) :- Par(px,x), Sg(px,py), Par(py,y).
             Sg(x,x) :- Par(x,y).",
        )
        .unwrap();
        let out = prog.evaluate(&db).unwrap();
        assert!(out["Sg"].contains(&[1, 2]));
        assert!(out["Sg"].contains(&[3, 4]));
        assert!(!out["Sg"].contains(&[1, 3]));
    }
}
