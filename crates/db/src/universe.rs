//! Finite universes of named elements.

use serde::{Deserialize, Serialize};

/// A domain element: a dense index into a [`Universe`].
pub type Element = u32;

/// A finite universe `A = {a₀, …, a_{n-1}}` with optional human-readable
/// element names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "RawUniverse")]
pub struct Universe {
    names: Vec<String>,
}

/// Deserialization shadow: rejects duplicate element names (name-based
/// lookups would silently resolve to the first).
#[derive(Deserialize)]
struct RawUniverse {
    names: Vec<String>,
}

impl TryFrom<RawUniverse> for Universe {
    type Error = String;

    fn try_from(raw: RawUniverse) -> Result<Self, String> {
        let mut sorted = raw.names.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != raw.names.len() {
            return Err("duplicate element names in universe".to_string());
        }
        Ok(Universe { names: raw.names })
    }
}

impl Universe {
    /// Universe of `n` anonymous elements named `e0..e{n-1}`.
    pub fn of_size(n: usize) -> Self {
        Universe {
            names: (0..n).map(|i| format!("e{i}")).collect(),
        }
    }

    /// Universe with the given element names.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate element names");
        Universe { names }
    }

    /// Number of elements `n = |A|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Elements as a range iterator.
    pub fn elements(&self) -> impl Iterator<Item = Element> + '_ {
        0..self.names.len() as Element
    }

    /// Name of an element.
    pub fn name(&self, e: Element) -> &str {
        &self.names[e as usize]
    }

    /// Element by name.
    pub fn lookup(&self, name: &str) -> Option<Element> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| i as Element)
    }

    /// All tuples of the given arity, in lexicographic order. The 0-ary
    /// case yields exactly the empty tuple.
    pub fn tuples(&self, arity: usize) -> TupleIter {
        TupleIter {
            n: self.len(),
            current: Some(vec![0; arity]),
            started: false,
        }
    }

    /// Number of tuples of the given arity: `n^arity`.
    ///
    /// # Panics
    /// Panics on overflow (consistent with [`crate::FactIndexer`]).
    pub fn tuple_count(&self, arity: usize) -> usize {
        self.len()
            .checked_pow(arity as u32)
            .expect("tuple count overflow")
    }
}

/// Lexicographic iterator over all tuples `A^k`.
#[derive(Debug)]
pub struct TupleIter {
    n: usize,
    current: Option<Vec<Element>>,
    started: bool,
}

impl Iterator for TupleIter {
    type Item = Vec<Element>;

    fn next(&mut self) -> Option<Vec<Element>> {
        let cur = self.current.as_mut()?;
        if !self.started {
            // Nonempty tuples over an empty universe do not exist.
            if self.n == 0 && !cur.is_empty() {
                self.current = None;
                return None;
            }
            self.started = true;
            return Some(cur.clone());
        }
        // Increment as a base-n counter, last position fastest.
        for i in (0..cur.len()).rev() {
            if (cur[i] as usize) + 1 < self.n {
                cur[i] += 1;
                for slot in cur.iter_mut().skip(i + 1) {
                    *slot = 0;
                }
                return Some(cur.clone());
            }
        }
        self.current = None;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_names() {
        let u = Universe::of_size(3);
        assert_eq!(u.len(), 3);
        assert_eq!(u.name(1), "e1");
        assert_eq!(u.lookup("e2"), Some(2));
        assert_eq!(u.lookup("zz"), None);

        let v = Universe::from_names(["alice", "bob"]);
        assert_eq!(v.lookup("bob"), Some(1));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panics() {
        Universe::from_names(["a", "a"]);
    }

    #[test]
    fn tuple_enumeration() {
        let u = Universe::of_size(3);
        let ts: Vec<_> = u.tuples(2).collect();
        assert_eq!(ts.len(), 9);
        assert_eq!(ts[0], vec![0, 0]);
        assert_eq!(ts[1], vec![0, 1]);
        assert_eq!(ts[8], vec![2, 2]);
        // Lexicographic order.
        let mut sorted = ts.clone();
        sorted.sort();
        assert_eq!(ts, sorted);
    }

    #[test]
    fn nullary_tuple() {
        let u = Universe::of_size(5);
        let ts: Vec<_> = u.tuples(0).collect();
        assert_eq!(ts, vec![Vec::<Element>::new()]);
        assert_eq!(u.tuple_count(0), 1);
    }

    #[test]
    fn empty_universe() {
        let u = Universe::of_size(0);
        assert_eq!(u.tuples(2).count(), 0);
        assert_eq!(u.tuples(0).count(), 1);
        assert_eq!(u.tuple_count(3), 0);
    }

    #[test]
    fn tuple_count_matches_iterator() {
        let u = Universe::of_size(4);
        for k in 0..4 {
            assert_eq!(u.tuples(k).count(), u.tuple_count(k));
        }
    }
}
