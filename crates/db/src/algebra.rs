//! Relational algebra over [`Relation`] instances.
//!
//! The paper lives in the classical relational model; this module
//! provides the standard operators (selection, projection, natural join,
//! rename, union, difference, cartesian product) used by the
//! conjunctive-query evaluator in `qrel-eval`. Relations here are
//! *positional* — columns are identified by index; the evaluator keeps
//! its own column-name bookkeeping.

use crate::relation::Relation;
use crate::universe::Element;

/// Selection predicates on a single relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// Column `col` equals the constant.
    ColEqConst(usize, Element),
    /// Column `a` equals column `b`.
    ColEqCol(usize, usize),
    /// Column `a` differs from column `b`.
    ColNeCol(usize, usize),
}

impl Selection {
    fn matches(&self, t: &[Element]) -> bool {
        match *self {
            Selection::ColEqConst(c, v) => t[c] == v,
            Selection::ColEqCol(a, b) => t[a] == t[b],
            Selection::ColNeCol(a, b) => t[a] != t[b],
        }
    }
}

/// σ — keep tuples matching all predicates.
pub fn select(rel: &Relation, predicates: &[Selection]) -> Relation {
    Relation::from_tuples(
        rel.arity(),
        rel.iter()
            .filter(|t| predicates.iter().all(|p| p.matches(t)))
            .cloned(),
    )
}

/// π — project onto the given columns (in order; duplicates allowed).
///
/// # Panics
/// Panics if a column index is out of range.
pub fn project(rel: &Relation, columns: &[usize]) -> Relation {
    for &c in columns {
        assert!(c < rel.arity(), "projection column {c} out of range");
    }
    Relation::from_tuples(
        columns.len(),
        rel.iter().map(|t| columns.iter().map(|&c| t[c]).collect()),
    )
}

/// × — cartesian product.
pub fn product(a: &Relation, b: &Relation) -> Relation {
    let mut out = Relation::new(a.arity() + b.arity());
    for ta in a.iter() {
        for tb in b.iter() {
            let mut t = ta.clone();
            t.extend_from_slice(tb);
            out.insert(t);
        }
    }
    out
}

/// ⋈ — equi-join on the given column pairs `(left col, right col)`.
/// Output schema: all of `a`'s columns followed by all of `b`'s columns
/// (join columns are *not* deduplicated; project afterwards if desired).
///
/// Implemented as a hash join on the key columns.
pub fn join(a: &Relation, b: &Relation, on: &[(usize, usize)]) -> Relation {
    for &(la, rb) in on {
        assert!(la < a.arity() && rb < b.arity(), "join column out of range");
    }
    // Build side: index b by its key columns.
    let mut index: std::collections::HashMap<Vec<Element>, Vec<&Vec<Element>>> =
        std::collections::HashMap::new();
    for tb in b.iter() {
        let key: Vec<Element> = on.iter().map(|&(_, rb)| tb[rb]).collect();
        index.entry(key).or_default().push(tb);
    }
    let mut out = Relation::new(a.arity() + b.arity());
    for ta in a.iter() {
        let key: Vec<Element> = on.iter().map(|&(la, _)| ta[la]).collect();
        if let Some(matches) = index.get(&key) {
            for tb in matches {
                let mut t = ta.clone();
                t.extend_from_slice(tb);
                out.insert(t);
            }
        }
    }
    out
}

/// ∪ — union (same arity).
pub fn union(a: &Relation, b: &Relation) -> Relation {
    let mut out = a.clone();
    out.union_with(b);
    out
}

/// − — difference (same arity).
pub fn difference(a: &Relation, b: &Relation) -> Relation {
    a.difference(b)
}

/// Semi-join: tuples of `a` with at least one join partner in `b`.
pub fn semi_join(a: &Relation, b: &Relation, on: &[(usize, usize)]) -> Relation {
    let keys: std::collections::HashSet<Vec<Element>> = b
        .iter()
        .map(|tb| on.iter().map(|&(_, rb)| tb[rb]).collect())
        .collect();
    Relation::from_tuples(
        a.arity(),
        a.iter()
            .filter(|ta| {
                let key: Vec<Element> = on.iter().map(|&(la, _)| ta[la]).collect();
                keys.contains(&key)
            })
            .cloned(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(arity: usize, tuples: &[&[Element]]) -> Relation {
        Relation::from_tuples(arity, tuples.iter().map(|t| t.to_vec()))
    }

    #[test]
    fn selection() {
        let r = rel(2, &[&[0, 1], &[1, 1], &[2, 0]]);
        assert_eq!(select(&r, &[Selection::ColEqCol(0, 1)]), rel(2, &[&[1, 1]]));
        assert_eq!(
            select(&r, &[Selection::ColEqConst(1, 1)]),
            rel(2, &[&[0, 1], &[1, 1]])
        );
        assert_eq!(
            select(
                &r,
                &[Selection::ColNeCol(0, 1), Selection::ColEqConst(1, 0)]
            ),
            rel(2, &[&[2, 0]])
        );
    }

    #[test]
    fn projection_with_duplicates_and_reorder() {
        let r = rel(2, &[&[0, 1], &[2, 3]]);
        assert_eq!(project(&r, &[1, 0]), rel(2, &[&[1, 0], &[3, 2]]));
        assert_eq!(project(&r, &[0, 0]), rel(2, &[&[0, 0], &[2, 2]]));
        assert_eq!(project(&r, &[1]), rel(1, &[&[1], &[3]]));
        // Projection can merge tuples.
        let s = rel(2, &[&[0, 1], &[0, 2]]);
        assert_eq!(project(&s, &[0]).len(), 1);
    }

    #[test]
    fn joins() {
        let e = rel(2, &[&[0, 1], &[1, 2], &[2, 3]]);
        // Length-2 paths: E ⋈_{right=left} E.
        let paths = join(&e, &e, &[(1, 0)]);
        assert_eq!(paths.arity(), 4);
        assert!(paths.contains(&[0, 1, 1, 2]));
        assert!(paths.contains(&[1, 2, 2, 3]));
        assert_eq!(paths.len(), 2);
        // Endpoints only.
        let endpoints = project(&paths, &[0, 3]);
        assert_eq!(endpoints, rel(2, &[&[0, 2], &[1, 3]]));
    }

    #[test]
    fn join_multi_column() {
        let a = rel(2, &[&[0, 1], &[1, 2]]);
        let b = rel(2, &[&[0, 1], &[2, 2]]);
        // Join on both columns: only (0,1) matches.
        let j = join(&a, &b, &[(0, 0), (1, 1)]);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&[0, 1, 0, 1]));
    }

    #[test]
    fn join_equals_filtered_product() {
        let a = rel(2, &[&[0, 1], &[1, 2], &[2, 0]]);
        let b = rel(1, &[&[1], &[2]]);
        let via_join = join(&a, &b, &[(1, 0)]);
        let via_product = select(&product(&a, &b), &[Selection::ColEqCol(1, 2)]);
        assert_eq!(via_join, via_product);
    }

    #[test]
    fn set_operations() {
        let a = rel(1, &[&[0], &[1]]);
        let b = rel(1, &[&[1], &[2]]);
        assert_eq!(union(&a, &b), rel(1, &[&[0], &[1], &[2]]));
        assert_eq!(difference(&a, &b), rel(1, &[&[0]]));
    }

    #[test]
    fn semi_join_filters() {
        let a = rel(2, &[&[0, 1], &[1, 2], &[2, 3]]);
        let b = rel(1, &[&[2], &[3]]);
        let s = semi_join(&a, &b, &[(1, 0)]);
        assert_eq!(s, rel(2, &[&[1, 2], &[2, 3]]));
    }

    #[test]
    fn empty_relations() {
        let a = rel(2, &[]);
        let b = rel(2, &[&[0, 0]]);
        assert!(join(&a, &b, &[(0, 0)]).is_empty());
        assert!(product(&a, &b).is_empty());
        assert_eq!(union(&a, &b), b);
        assert!(select(&a, &[]).is_empty());
    }
}
