//! Finite relational structures (the "databases" of the paper).

use crate::fact::{Fact, FactIndexer};
use crate::relation::Relation;
use crate::universe::{Element, Universe};
use qrel_logic::{RelationSymbol, Vocabulary};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finite relational structure `𝔄 = (A, R₁^𝔄, …, R_m^𝔄)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "RawDatabase")]
pub struct Database {
    vocab: Vocabulary,
    universe: Universe,
    relations: Vec<Relation>,
}

/// Deserialization shadow: cross-validates the three components —
/// one relation instance per vocabulary symbol, matching arities, and
/// every tuple element inside the universe — so hand-edited spec files
/// cannot smuggle in a malformed structure.
#[derive(Deserialize)]
struct RawDatabase {
    vocab: Vocabulary,
    universe: Universe,
    relations: Vec<Relation>,
}

impl TryFrom<RawDatabase> for Database {
    type Error = String;

    fn try_from(raw: RawDatabase) -> Result<Self, String> {
        if raw.relations.len() != raw.vocab.len() {
            return Err(format!(
                "{} relation instances for {} vocabulary symbols",
                raw.relations.len(),
                raw.vocab.len()
            ));
        }
        let n = raw.universe.len() as u32;
        for (sym, rel) in raw.vocab.symbols().iter().zip(&raw.relations) {
            if rel.arity() != sym.arity() {
                return Err(format!(
                    "relation instance for {} has arity {}",
                    sym,
                    rel.arity()
                ));
            }
            for t in rel.iter() {
                if t.iter().any(|&e| e >= n) {
                    return Err(format!(
                        "tuple in {} mentions element {} outside the universe of size {n}",
                        sym.name(),
                        t.iter().max().unwrap()
                    ));
                }
            }
        }
        Ok(Database {
            vocab: raw.vocab,
            universe: raw.universe,
            relations: raw.relations,
        })
    }
}

impl Database {
    /// Empty database (all relations empty) over the given format.
    pub fn empty(vocab: Vocabulary, universe: Universe) -> Self {
        let relations = vocab
            .symbols()
            .iter()
            .map(|s| Relation::new(s.arity()))
            .collect();
        Database {
            vocab,
            universe,
            relations,
        }
    }

    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Universe cardinality `n`.
    pub fn size(&self) -> usize {
        self.universe.len()
    }

    /// Relation instance by vocabulary index.
    pub fn relation(&self, index: usize) -> &Relation {
        &self.relations[index]
    }

    /// Mutable relation instance by vocabulary index.
    pub fn relation_mut(&mut self, index: usize) -> &mut Relation {
        &mut self.relations[index]
    }

    /// Relation instance by name.
    pub fn relation_by_name(&self, name: &str) -> Option<&Relation> {
        self.vocab.index_of(name).map(|i| &self.relations[i])
    }

    /// Truth value of a fact in this database.
    pub fn holds(&self, fact: &Fact) -> bool {
        self.relations[fact.relation].contains(&fact.tuple)
    }

    /// Set the truth value of a fact.
    pub fn set_fact(&mut self, fact: &Fact, value: bool) {
        self.relations[fact.relation].set(fact.tuple.clone(), value);
    }

    /// Insert a tuple into a named relation.
    ///
    /// # Panics
    /// Panics if the relation does not exist or the arity mismatches.
    pub fn insert(&mut self, rel: &str, tuple: Vec<Element>) {
        let i = self
            .vocab
            .index_of(rel)
            .unwrap_or_else(|| panic!("unknown relation {rel:?}"));
        for &e in &tuple {
            assert!(
                (e as usize) < self.universe.len(),
                "element out of universe"
            );
        }
        self.relations[i].insert(tuple);
    }

    /// A [`FactIndexer`] for this database's format.
    pub fn fact_indexer(&self) -> FactIndexer {
        FactIndexer::new(&self.vocab, self.universe.len())
    }

    /// Total number of atomic facts over this format.
    pub fn fact_count(&self) -> usize {
        self.vocab.fact_count(self.universe.len())
    }

    /// Total number of *stored* tuples across relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "universe: {{{}}}", {
            let mut s = String::new();
            for e in self.universe.elements() {
                if !s.is_empty() {
                    s.push_str(", ");
                }
                s.push_str(self.universe.name(e));
            }
            s
        })?;
        for (sym, rel) in self.vocab.symbols().iter().zip(&self.relations) {
            write!(f, "{} = {{", sym.name())?;
            for (i, t) in rel.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "(")?;
                for (j, e) in t.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.universe.name(*e))?;
                }
                write!(f, ")")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

/// Fluent builder for [`Database`].
///
/// ```
/// use qrel_db::DatabaseBuilder;
/// let db = DatabaseBuilder::new()
///     .universe_size(3)
///     .relation("E", 2)
///     .relation("S", 1)
///     .tuples("E", [vec![0, 1], vec![1, 2]])
///     .tuples("S", [vec![0]])
///     .build();
/// assert_eq!(db.size(), 3);
/// assert_eq!(db.relation_by_name("E").unwrap().len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    universe: Option<Universe>,
    vocab: Vocabulary,
    pending: Vec<(String, Vec<Vec<Element>>)>,
}

impl DatabaseBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Anonymous universe of `n` elements.
    pub fn universe_size(mut self, n: usize) -> Self {
        self.universe = Some(Universe::of_size(n));
        self
    }

    /// Named universe.
    pub fn universe_names<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.universe = Some(Universe::from_names(names));
        self
    }

    /// Declare a relation symbol.
    pub fn relation(mut self, name: &str, arity: usize) -> Self {
        self.vocab.add(RelationSymbol::new(name, arity));
        self
    }

    /// Queue tuples for a declared relation.
    pub fn tuples<I>(mut self, name: &str, tuples: I) -> Self
    where
        I: IntoIterator<Item = Vec<Element>>,
    {
        self.pending
            .push((name.to_string(), tuples.into_iter().collect()));
        self
    }

    /// Finalize.
    ///
    /// # Panics
    /// Panics if the universe was not set, a queued relation is undeclared,
    /// or a tuple is out of range.
    pub fn build(self) -> Database {
        let universe = self.universe.expect("universe not set");
        let mut db = Database::empty(self.vocab, universe);
        for (name, tuples) in self.pending {
            for t in tuples {
                db.insert(&name, t);
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .tuples("S", [vec![2]])
            .build()
    }

    #[test]
    fn builder_and_lookup() {
        let db = sample();
        assert_eq!(db.size(), 3);
        assert!(db.relation_by_name("E").unwrap().contains(&[0, 1]));
        assert!(!db.relation_by_name("E").unwrap().contains(&[1, 0]));
        assert_eq!(db.tuple_count(), 3);
        assert_eq!(db.fact_count(), 9 + 3);
    }

    #[test]
    fn facts_roundtrip_with_storage() {
        let mut db = sample();
        let ix = db.fact_indexer();
        let f = Fact::new(0, vec![2, 2]);
        assert!(!db.holds(&f));
        db.set_fact(&f, true);
        assert!(db.holds(&f));
        db.set_fact(&f, false);
        assert!(!db.holds(&f));
        // Index consistency.
        assert_eq!(ix.fact_at(ix.index_of(&f)), f);
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn unknown_relation_panics() {
        let mut db = sample();
        db.insert("T", vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_panics() {
        let mut db = sample();
        db.insert("S", vec![7]);
    }

    #[test]
    fn serde_roundtrip() {
        let db = sample();
        let json = serde_json::to_string(&db).unwrap();
        let back: Database = serde_json::from_str(&json).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn display_is_readable() {
        let s = sample().to_string();
        assert!(s.contains("E = {(e0,e1), (e1,e2)}"));
        assert!(s.contains("S = {(e2)}"));
    }
}
