//! Atomic facts and dense fact indexing.
//!
//! An atomic statement `R(ā)` over a database format (vocabulary + universe
//! size) is a *fact*. The possible-world space Ω(𝔇) assigns a truth value
//! to every fact, so we need a fast bijection between facts and dense
//! indices `0..total`: relation blocks in vocabulary order, tuples ranked
//! lexicographically (mixed-radix) within each block.

use crate::universe::Element;
use qrel_logic::Vocabulary;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An atomic fact `R(ā)`, with `R` identified by its vocabulary index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fact {
    pub relation: usize,
    pub tuple: Vec<Element>,
}

impl Fact {
    pub fn new(relation: usize, tuple: Vec<Element>) -> Self {
        Fact { relation, tuple }
    }

    /// Render with the vocabulary's relation names.
    pub fn display<'a>(&'a self, vocab: &'a Vocabulary) -> FactDisplay<'a> {
        FactDisplay { fact: self, vocab }
    }
}

/// Helper for [`Fact::display`].
pub struct FactDisplay<'a> {
    fact: &'a Fact,
    vocab: &'a Vocabulary,
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.vocab.symbols()[self.fact.relation].name();
        write!(f, "{name}(")?;
        for (i, e) in self.fact.tuple.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

/// Bijection between facts and dense indices for a fixed format.
#[derive(Debug, Clone)]
pub struct FactIndexer {
    n: usize,
    /// Arity of each relation, in vocabulary order.
    arities: Vec<usize>,
    /// Start offset of each relation's block; one extra entry = total.
    offsets: Vec<usize>,
}

impl FactIndexer {
    /// Build for a vocabulary over a universe of size `n`.
    pub fn new(vocab: &Vocabulary, n: usize) -> Self {
        let arities: Vec<usize> = vocab.symbols().iter().map(|s| s.arity()).collect();
        let mut offsets = Vec::with_capacity(arities.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &a in &arities {
            acc = acc
                .checked_add(n.checked_pow(a as u32).expect("tuple count overflow"))
                .expect("fact count overflow");
            offsets.push(acc);
        }
        FactIndexer {
            n,
            arities,
            offsets,
        }
    }

    /// Total number of facts.
    pub fn total(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Universe size this indexer was built for.
    pub fn universe_size(&self) -> usize {
        self.n
    }

    /// Dense index of a fact.
    ///
    /// # Panics
    /// Panics on arity mismatch or out-of-universe elements — a silent
    /// wrong index would corrupt another fact's `μ`, so this is a hard
    /// check even in release builds (`Fact` fields are public).
    pub fn index_of(&self, fact: &Fact) -> usize {
        assert_eq!(
            fact.tuple.len(),
            self.arities[fact.relation],
            "fact arity mismatch"
        );
        let mut rank = 0usize;
        for &e in &fact.tuple {
            assert!((e as usize) < self.n, "fact element out of universe");
            rank = rank * self.n + e as usize;
        }
        self.offsets[fact.relation] + rank
    }

    /// Fact at a dense index.
    pub fn fact_at(&self, mut index: usize) -> Fact {
        assert!(index < self.total(), "fact index out of range");
        // Find the relation block (few relations — linear scan is fine).
        let mut rel = 0;
        while index >= self.offsets[rel + 1] {
            rel += 1;
        }
        index -= self.offsets[rel];
        let arity = self.arities[rel];
        let mut tuple = vec![0 as Element; arity];
        for i in (0..arity).rev() {
            tuple[i] = (index % self.n) as Element;
            index /= self.n;
        }
        Fact {
            relation: rel,
            tuple,
        }
    }

    /// Iterate all facts in index order.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        (0..self.total()).map(|i| self.fact_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> Vocabulary {
        Vocabulary::from_pairs([("E", 2), ("S", 1), ("P", 0)])
    }

    #[test]
    fn total_counts() {
        let ix = FactIndexer::new(&vocab(), 3);
        assert_eq!(ix.total(), 9 + 3 + 1);
    }

    #[test]
    fn roundtrip_all() {
        let ix = FactIndexer::new(&vocab(), 3);
        for i in 0..ix.total() {
            let f = ix.fact_at(i);
            assert_eq!(ix.index_of(&f), i);
        }
    }

    #[test]
    fn block_layout() {
        let ix = FactIndexer::new(&vocab(), 2);
        // E-block: indices 0..4 in lexicographic tuple order.
        assert_eq!(ix.fact_at(0), Fact::new(0, vec![0, 0]));
        assert_eq!(ix.fact_at(1), Fact::new(0, vec![0, 1]));
        assert_eq!(ix.fact_at(2), Fact::new(0, vec![1, 0]));
        assert_eq!(ix.fact_at(3), Fact::new(0, vec![1, 1]));
        // S-block.
        assert_eq!(ix.fact_at(4), Fact::new(1, vec![0]));
        assert_eq!(ix.fact_at(5), Fact::new(1, vec![1]));
        // P-block (nullary).
        assert_eq!(ix.fact_at(6), Fact::new(2, vec![]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let ix = FactIndexer::new(&vocab(), 2);
        ix.fact_at(7);
    }

    #[test]
    fn display_uses_names() {
        let v = vocab();
        let f = Fact::new(0, vec![1, 2]);
        assert_eq!(f.display(&v).to_string(), "E(1,2)");
        assert_eq!(Fact::new(2, vec![]).display(&v).to_string(), "P()");
    }

    #[test]
    fn iter_is_exhaustive_and_ordered() {
        let ix = FactIndexer::new(&vocab(), 2);
        let all: Vec<_> = ix.iter().collect();
        assert_eq!(all.len(), ix.total());
        for (i, f) in all.iter().enumerate() {
            assert_eq!(ix.index_of(f), i);
        }
    }
}
