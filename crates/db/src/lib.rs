//! Relational database substrate: finite structures, storage, Datalog.
//!
//! A database in the paper's sense is a finite relational structure
//! `𝔄 = (A, R₁, …, R_m)`. This crate provides:
//!
//! * [`Database`] — the structure itself, with a named finite [`Universe`]
//!   and one [`Relation`] instance per vocabulary symbol;
//! * [`Fact`] and dense fact indexing — the bijection between atomic
//!   statements `R(ā)` and indices `0..Σ n^arity(R)`, which is the
//!   coordinate system of the possible-world space Ω(𝔇);
//! * [`datalog`] — a stratified Datalog engine with semi-naive evaluation,
//!   since the paper explicitly covers Datalog and fixed-point queries
//!   (they are polynomial-time evaluable, hence Theorem 5.12 applies);
//! * [`algebra`] — relational-algebra operators (σ, π, ⋈, ∪, −) used by
//!   the conjunctive-query planner in `qrel-eval`.

pub mod algebra;
pub mod database;
pub mod datalog;
pub mod fact;
pub mod relation;
pub mod universe;

pub use database::{Database, DatabaseBuilder};
pub use fact::{Fact, FactIndexer};
pub use relation::Relation;
pub use universe::{Element, Universe};
