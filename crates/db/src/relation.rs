//! Relation instances: finite sets of tuples.

use crate::universe::Element;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A relation instance of fixed arity over a universe of elements.
///
/// Storage is a sorted set of tuples, which gives deterministic iteration
/// (important for reproducible sampling and hashing) and O(log n) point
/// lookups; the workloads here are dominated by scans, where the BTree's
/// cache behaviour is adequate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "RawRelation")]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Vec<Element>>,
}

/// Deserialization shadow: rejects tuples whose length differs from the
/// declared arity, so the invariant cannot be bypassed through serde
/// (e.g. a hand-edited CLI spec file).
#[derive(Deserialize)]
struct RawRelation {
    arity: usize,
    tuples: BTreeSet<Vec<Element>>,
}

impl TryFrom<RawRelation> for Relation {
    type Error = String;

    fn try_from(raw: RawRelation) -> Result<Self, String> {
        for t in &raw.tuples {
            if t.len() != raw.arity {
                return Err(format!(
                    "tuple of length {} in a relation of arity {}",
                    t.len(),
                    raw.arity
                ));
            }
        }
        Ok(Relation {
            arity: raw.arity,
            tuples: raw.tuples,
        })
    }
}

impl Relation {
    /// Empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Build from tuples.
    ///
    /// # Panics
    /// Panics if a tuple's length differs from `arity`.
    pub fn from_tuples<I>(arity: usize, tuples: I) -> Self
    where
        I: IntoIterator<Item = Vec<Element>>,
    {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Element]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        self.tuples.contains(tuple)
    }

    /// Insert a tuple; returns true if it was new.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn insert(&mut self, tuple: Vec<Element>) -> bool {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        self.tuples.insert(tuple)
    }

    /// Remove a tuple; returns true if it was present.
    pub fn remove(&mut self, tuple: &[Element]) -> bool {
        self.tuples.remove(tuple)
    }

    /// Set membership of `tuple` to `present`.
    pub fn set(&mut self, tuple: Vec<Element>, present: bool) {
        if present {
            self.insert(tuple);
        } else {
            self.remove(&tuple);
        }
    }

    /// Iterate tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Element>> {
        self.tuples.iter()
    }

    /// Clear all tuples.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }

    /// Union in all tuples of `other` (same arity); returns the number of
    /// new tuples added.
    pub fn union_with(&mut self, other: &Relation) -> usize {
        assert_eq!(self.arity, other.arity, "arity mismatch in union");
        let before = self.tuples.len();
        for t in &other.tuples {
            self.tuples.insert(t.clone());
        }
        self.tuples.len() - before
    }

    /// Tuples in `self` that are not in `other`.
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.arity, other.arity, "arity mismatch in difference");
        Relation {
            arity: self.arity,
            tuples: self.tuples.difference(&other.tuples).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![0, 1]));
        assert!(!r.insert(vec![0, 1]));
        assert!(r.contains(&[0, 1]));
        assert!(!r.contains(&[1, 0]));
        assert!(r.remove(&[0, 1]));
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_enforced() {
        let mut r = Relation::new(2);
        r.insert(vec![0]);
    }

    #[test]
    fn sorted_iteration() {
        let r = Relation::from_tuples(2, vec![vec![1, 0], vec![0, 1], vec![0, 0]]);
        let ts: Vec<_> = r.iter().cloned().collect();
        assert_eq!(ts, vec![vec![0, 0], vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn set_and_union_difference() {
        let mut a = Relation::from_tuples(1, vec![vec![0], vec![1]]);
        let b = Relation::from_tuples(1, vec![vec![1], vec![2]]);
        assert_eq!(a.union_with(&b), 1);
        assert_eq!(a.len(), 3);
        let d = a.difference(&b);
        assert_eq!(d.len(), 1);
        assert!(d.contains(&[0]));
        a.set(vec![5], true);
        assert!(a.contains(&[5]));
        a.set(vec![5], false);
        assert!(!a.contains(&[5]));
    }

    #[test]
    fn nullary_relation() {
        // A 0-ary relation is a proposition: empty = false, {()} = true.
        let mut r = Relation::new(0);
        assert!(!r.contains(&[]));
        r.insert(vec![]);
        assert!(r.contains(&[]));
        assert_eq!(r.len(), 1);
    }
}
