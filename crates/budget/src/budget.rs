//! Cooperative work budgets: wall-clock deadlines, per-resource caps,
//! and external cancellation.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in `charge`/`checkpoint` calls) the wall clock is
/// consulted. Counter and cancellation checks happen on every call;
/// `Instant::now` is comparatively expensive, so it is throttled. A
/// world evaluation or a Karp–Luby sample costs far more than a charge,
/// so the deadline is still observed within a few microseconds.
const CLOCK_CHECK_PERIOD: u64 = 64;

/// A countable resource tracked by a [`Budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Possible worlds enumerated (exact reliability, Theorem 4.2, and
    /// the per-tuple assignment enumeration of the quantifier-free fast
    /// path).
    Worlds,
    /// Monte-Carlo samples drawn (Karp–Luby, naive estimators, and the
    /// padding estimator of Theorem 5.12).
    Samples,
    /// Ground DNF terms produced while grounding an existential query
    /// (Theorem 5.4 reduction).
    Terms,
    /// Wall-clock time.
    WallClock,
    /// External cancellation via a [`CancelToken`].
    Cancelled,
}

impl Resource {
    fn noun(self) -> &'static str {
        match self {
            Resource::Worlds => "worlds",
            Resource::Samples => "samples",
            Resource::Terms => "DNF terms",
            Resource::WallClock => "wall-clock time",
            Resource::Cancelled => "cancellation",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.noun())
    }
}

/// Report of a tripped budget: which resource ran out, how much was
/// spent, and what the limit was.
///
/// For [`Resource::WallClock`] the quantities are milliseconds; for the
/// work counters they are counts. `limit` is `None` for
/// [`Resource::Cancelled`], which has no numeric bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    pub resource: Resource,
    pub spent: u64,
    pub limit: Option<u64>,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::WallClock => write!(
                f,
                "deadline of {}ms exceeded after {}ms",
                self.limit.unwrap_or(0),
                self.spent
            ),
            Resource::Cancelled => write!(f, "cancelled by caller"),
            r => write!(
                f,
                "budget of {} {} exhausted after {}",
                self.limit.unwrap_or(0),
                r,
                self.spent
            ),
        }
    }
}

/// Cloneable, thread-safe cancellation flag.
///
/// Clones share the flag: cancelling any clone cancels them all. A
/// [`Budget`] observes its token on every `charge`/`checkpoint`, so a
/// supervisor thread can stop a long solve by calling
/// [`CancelToken::cancel`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; cannot be undone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A cooperative work budget.
///
/// A `Budget` combines an optional wall-clock deadline, optional caps on
/// each [`Resource`] counter, and a [`CancelToken`]. Hot loops call
/// [`Budget::charge`] as they do work (or [`Budget::checkpoint`] where
/// no counter applies); both return `Err(Exhausted)` once any limit is
/// crossed, and the loop unwinds with whatever partial result it has.
///
/// Budgets are deliberately *not* `Sync`: counters are plain [`Cell`]s
/// so that charging costs a handful of instructions. Cross-thread
/// control goes through the (thread-safe) token instead.
///
/// ```
/// use qrel_budget::{Budget, Resource};
///
/// let budget = Budget::unlimited().with_max_worlds(2);
/// assert!(budget.charge(Resource::Worlds, 1).is_ok());
/// assert!(budget.charge(Resource::Worlds, 1).is_ok());
/// assert!(budget.charge(Resource::Worlds, 1).is_err());
/// // The rejected charge is NOT recorded — `spent` counts only work
/// // actually performed, which keeps parent/child accounting exact when
/// // a shard's spend is settled back into an enclosing budget. The trip
/// // itself is latched, so `probe` keeps reporting it.
/// assert_eq!(budget.spent(Resource::Worlds), 2);
/// assert!(budget.probe().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    started: Instant,
    deadline: Option<Instant>,
    allowance: Option<Duration>,
    max_worlds: Option<u64>,
    max_samples: Option<u64>,
    max_terms: Option<u64>,
    cancel: CancelToken,
    worlds: Cell<u64>,
    samples: Cell<u64>,
    terms: Cell<u64>,
    ticks: Cell<u64>,
    /// First counter trip, latched so [`Budget::probe`] keeps reporting
    /// exhaustion even though rejected charges never commit to a counter.
    tripped: Cell<Option<Exhausted>>,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget with no limits at all; `charge` never fails (unless the
    /// token is later cancelled).
    pub fn unlimited() -> Self {
        Budget {
            started: Instant::now(),
            deadline: None,
            allowance: None,
            max_worlds: None,
            max_samples: None,
            max_terms: None,
            cancel: CancelToken::new(),
            worlds: Cell::new(0),
            samples: Cell::new(0),
            terms: Cell::new(0),
            ticks: Cell::new(0),
            tripped: Cell::new(None),
        }
    }

    /// Set a wall-clock deadline of `allowance` from *now*.
    pub fn with_deadline(mut self, allowance: Duration) -> Self {
        let now = Instant::now();
        self.deadline = Some(now + allowance);
        self.allowance = Some(allowance);
        self
    }

    /// A fresh budget whose only limit is a wall-clock deadline of
    /// `allowance` from *now* — the per-request shape used by callers
    /// (like `qrel-serve`) that admit work with a deadline but no
    /// counter caps. Equivalent to
    /// `Budget::unlimited().with_deadline(allowance)`.
    pub fn with_deadline_from_now(allowance: Duration) -> Self {
        Budget::unlimited().with_deadline(allowance)
    }

    pub fn with_max_worlds(mut self, n: u64) -> Self {
        self.max_worlds = Some(n);
        self
    }

    pub fn with_max_samples(mut self, n: u64) -> Self {
        self.max_samples = Some(n);
        self
    }

    pub fn with_max_terms(mut self, n: u64) -> Self {
        self.max_terms = Some(n);
        self
    }

    /// Attach an externally held cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A clone of this budget's cancellation token, for handing to a
    /// supervisor.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Charge `n` units of `resource` against the budget, then check
    /// every limit. Returns `Err` describing the *first* exhausted
    /// resource (counters before clock before cancellation).
    pub fn charge(&self, resource: Resource, n: u64) -> Result<(), Exhausted> {
        let (cell, limit) = match resource {
            Resource::Worlds => (&self.worlds, self.max_worlds),
            Resource::Samples => (&self.samples, self.max_samples),
            Resource::Terms => (&self.terms, self.max_terms),
            // WallClock/Cancelled are not chargeable counters; treat a
            // charge against them as a bare checkpoint.
            Resource::WallClock | Resource::Cancelled => return self.checkpoint(),
        };
        // Chaos hook: reject a charge that should have been admitted.
        // The spurious trip is NOT latched — unlike a genuine counter
        // overrun, the next charge proceeds normally, which is what
        // makes the fault transient.
        if qrel_faults::armed()
            && qrel_faults::hit(qrel_faults::points::BUDGET_SPURIOUS_TRIP).is_some()
        {
            return Err(Exhausted {
                resource,
                spent: cell.get().saturating_add(n),
                limit,
            });
        }
        let spent = cell.get().saturating_add(n);
        if let Some(limit) = limit {
            if spent > limit {
                // The rejected units are NOT committed to the counter:
                // `spent()` only ever counts work actually performed, so
                // split-off child budgets settle back into their parent
                // without over-charging (the `Exhausted` report still
                // shows the attempted spend). The trip is latched so
                // `probe` keeps reporting exhaustion afterwards.
                let err = Exhausted {
                    resource,
                    spent,
                    limit: Some(limit),
                };
                if self.tripped.get().is_none() {
                    self.tripped.set(Some(err));
                }
                return Err(err);
            }
        }
        cell.set(spent);
        self.checkpoint()
    }

    /// Check the deadline and cancellation flag without charging any
    /// counter. Call this from loops whose work is not captured by a
    /// [`Resource`] (e.g. grounding expansion).
    pub fn checkpoint(&self) -> Result<(), Exhausted> {
        if self.cancel.is_cancelled() {
            return Err(Exhausted {
                resource: Resource::Cancelled,
                spent: self.elapsed().as_millis() as u64,
                limit: None,
            });
        }
        if let Some(deadline) = self.deadline {
            let ticks = self.ticks.get().wrapping_add(1);
            self.ticks.set(ticks);
            if ticks.is_multiple_of(CLOCK_CHECK_PERIOD) || ticks == 1 {
                let now = Instant::now();
                if now >= deadline {
                    return Err(Exhausted {
                        resource: Resource::WallClock,
                        spent: (now - self.started).as_millis() as u64,
                        limit: self.allowance.map(|d| d.as_millis() as u64),
                    });
                }
            }
        }
        Ok(())
    }

    /// Units of `resource` spent so far ([`Resource::WallClock`] in
    /// milliseconds; [`Resource::Cancelled`] is always 0).
    pub fn spent(&self, resource: Resource) -> u64 {
        match resource {
            Resource::Worlds => self.worlds.get(),
            Resource::Samples => self.samples.get(),
            Resource::Terms => self.terms.get(),
            Resource::WallClock => self.elapsed().as_millis() as u64,
            Resource::Cancelled => 0,
        }
    }

    /// Units of `resource` left before the budget trips, or `None` for
    /// "unlimited".
    pub fn remaining(&self, resource: Resource) -> Option<u64> {
        let (spent, limit) = match resource {
            Resource::Worlds => (self.worlds.get(), self.max_worlds?),
            Resource::Samples => (self.samples.get(), self.max_samples?),
            Resource::Terms => (self.terms.get(), self.max_terms?),
            Resource::WallClock => {
                let deadline = self.deadline?;
                return Some(
                    deadline
                        .saturating_duration_since(Instant::now())
                        .as_millis() as u64,
                );
            }
            Resource::Cancelled => return None,
        };
        Some(limit.saturating_sub(spent))
    }

    /// Wall-clock time since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The total wall-clock allowance, if a deadline was set.
    pub fn allowance(&self) -> Option<Duration> {
        self.allowance
    }

    /// Time left until the deadline (zero if already past), or `None`
    /// if no deadline was set.
    pub fn time_left(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// True if any limit has already been crossed (without charging).
    pub fn is_exhausted(&self) -> bool {
        self.probe().is_err()
    }

    /// Split the *remaining* allowance into `k` child budgets, one per
    /// worker shard.
    ///
    /// Each child shares this budget's deadline and [`CancelToken`]
    /// (cancelling the parent cancels every child) and starts with zero
    /// counters; capped resources divide the parent's remaining units
    /// evenly, with the remainder going to the earliest children, so the
    /// children's caps sum exactly to the parent's remaining allowance.
    /// Budgets are `Send` (not `Sync`): move each child into its worker
    /// thread, then merge the spend back with [`Budget::settle`] — the
    /// parent's counters then equal the sum of all shard spends exactly,
    /// regardless of thread interleaving.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn split(&self, k: usize) -> Vec<Budget> {
        assert!(k > 0, "cannot split a budget into zero shards");
        let share = |limit: Option<u64>, spent: u64, i: u64| -> Option<u64> {
            limit.map(|l| {
                let rem = l.saturating_sub(spent);
                rem / k as u64 + u64::from(i < rem % k as u64)
            })
        };
        (0..k as u64)
            .map(|i| Budget {
                started: self.started,
                deadline: self.deadline,
                allowance: self.allowance,
                max_worlds: share(self.max_worlds, self.worlds.get(), i),
                max_samples: share(self.max_samples, self.samples.get(), i),
                max_terms: share(self.max_terms, self.terms.get(), i),
                cancel: self.cancel.clone(),
                worlds: Cell::new(0),
                samples: Cell::new(0),
                terms: Cell::new(0),
                ticks: Cell::new(0),
                tripped: Cell::new(None),
            })
            .collect()
    }

    /// Merge a child budget's spend (from [`Budget::split`]) back into
    /// this budget's counters. Call once per child after its worker
    /// finishes; the accounting is exact — no units are lost or double
    /// counted.
    pub fn settle(&self, child: &Budget) {
        self.worlds
            .set(self.worlds.get().saturating_add(child.worlds.get()));
        self.samples
            .set(self.samples.get().saturating_add(child.samples.get()));
        self.terms
            .set(self.terms.get().saturating_add(child.terms.get()));
        // A tripped child exhausts the parent's share too; settling in
        // shard order keeps the latched cause deterministic.
        if self.tripped.get().is_none() {
            if let Some(err) = child.tripped.get() {
                self.tripped.set(Some(err));
            }
        }
    }

    /// Like [`Budget::checkpoint`] but never throttled: always consults
    /// the clock and all counters. Used at phase boundaries (e.g.
    /// between ladder rungs) where accuracy matters more than speed.
    pub fn probe(&self) -> Result<(), Exhausted> {
        if self.cancel.is_cancelled() {
            return Err(Exhausted {
                resource: Resource::Cancelled,
                spent: self.elapsed().as_millis() as u64,
                limit: None,
            });
        }
        if let Some(err) = self.tripped.get() {
            return Err(err);
        }
        for (resource, spent, limit) in [
            (Resource::Worlds, self.worlds.get(), self.max_worlds),
            (Resource::Samples, self.samples.get(), self.max_samples),
            (Resource::Terms, self.terms.get(), self.max_terms),
        ] {
            if let Some(limit) = limit {
                if spent > limit {
                    return Err(Exhausted {
                        resource,
                        spent,
                        limit: Some(limit),
                    });
                }
            }
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(Exhausted {
                    resource: Resource::WallClock,
                    spent: (now - self.started).as_millis() as u64,
                    limit: self.allowance.map(|d| d.as_millis() as u64),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unlimited_never_trips() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.charge(Resource::Worlds, 1).unwrap();
            b.charge(Resource::Samples, 3).unwrap();
            b.checkpoint().unwrap();
        }
        assert_eq!(b.spent(Resource::Worlds), 10_000);
        assert_eq!(b.spent(Resource::Samples), 30_000);
        assert_eq!(b.remaining(Resource::Worlds), None);
        assert!(!b.is_exhausted());
    }

    #[test]
    fn world_cap_trips_at_limit() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let b = Budget::unlimited().with_max_worlds(5);
        for _ in 0..5 {
            b.charge(Resource::Worlds, 1).unwrap();
        }
        let err = b.charge(Resource::Worlds, 1).unwrap_err();
        assert_eq!(err.resource, Resource::Worlds);
        assert_eq!(err.spent, 6);
        assert_eq!(err.limit, Some(5));
        // Other resources are unaffected by the worlds cap.
        assert_eq!(b.remaining(Resource::Samples), None);
    }

    #[test]
    fn bulk_charge_saturates_and_trips() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let b = Budget::unlimited().with_max_samples(100);
        b.charge(Resource::Samples, 90).unwrap();
        assert_eq!(b.remaining(Resource::Samples), Some(10));
        let err = b.charge(Resource::Samples, u64::MAX).unwrap_err();
        assert_eq!(err.resource, Resource::Samples);
        assert_eq!(err.spent, u64::MAX);
    }

    #[test]
    fn deadline_trips() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let b = Budget::unlimited().with_deadline(Duration::from_millis(10));
        thread::sleep(Duration::from_millis(25));
        // Many quick checkpoints so the throttled clock check fires.
        let mut tripped = None;
        for _ in 0..(CLOCK_CHECK_PERIOD * 2) {
            if let Err(e) = b.checkpoint() {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("deadline should have tripped");
        assert_eq!(e.resource, Resource::WallClock);
        assert!(e.spent >= 10);
        assert_eq!(e.limit, Some(10));
        assert!(b.is_exhausted());
    }

    #[test]
    fn deadline_from_now_is_deadline_only() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let b = Budget::with_deadline_from_now(Duration::from_secs(60));
        assert!(b.allowance().is_some());
        assert_eq!(b.remaining(Resource::Worlds), None);
        assert_eq!(b.remaining(Resource::Samples), None);
        assert_eq!(b.remaining(Resource::Terms), None);
        assert!(b.time_left().unwrap() <= Duration::from_secs(60));
        assert!(!b.is_exhausted());
    }

    #[test]
    fn cancel_token_trips_immediately() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let b = Budget::unlimited();
        let token = b.cancel_token();
        b.checkpoint().unwrap();
        token.cancel();
        let err = b.checkpoint().unwrap_err();
        assert_eq!(err.resource, Resource::Cancelled);
        assert_eq!(format!("{err}"), "cancelled by caller");
    }

    #[test]
    fn probe_reports_counter_overrun() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let b = Budget::unlimited().with_max_terms(3);
        // Charges past the limit report the overrun...
        assert!(b.charge(Resource::Terms, 4).is_err());
        // ...and probe keeps reporting it.
        let err = b.probe().unwrap_err();
        assert_eq!(err.resource, Resource::Terms);
        assert_eq!(format!("{err}"), "budget of 3 DNF terms exhausted after 4");
    }

    #[test]
    fn split_with_zero_remaining_yields_zero_cap_children() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        // Parent at (not past) its cap: nothing is left to distribute,
        // so every child must get a hard-zero cap — a single unit
        // charged anywhere trips instantly instead of silently minting
        // new allowance.
        let parent = Budget::unlimited().with_max_worlds(4);
        parent.charge(Resource::Worlds, 4).unwrap();
        assert!(parent.probe().is_ok(), "at the cap is not past the cap");
        for child in parent.split(3) {
            assert_eq!(child.remaining(Resource::Worlds), Some(0));
            let err = child.charge(Resource::Worlds, 1).unwrap_err();
            assert_eq!(err.resource, Resource::Worlds);
            assert_eq!(err.limit, Some(0));
        }
    }

    #[test]
    fn split_distributes_remainder_to_earliest_children() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let parent = Budget::unlimited().with_max_samples(10);
        parent.charge(Resource::Samples, 3).unwrap();
        let caps: Vec<u64> = parent
            .split(3)
            .iter()
            .map(|c| c.remaining(Resource::Samples).unwrap())
            .collect();
        // 7 remaining over 3 shards: 3, 2, 2 — earliest-first, exact sum.
        assert_eq!(caps, vec![3, 2, 2]);
    }

    #[test]
    fn settle_after_trip_keeps_the_first_cause_latched() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        // Two children trip on different resources; settling in shard
        // order must latch the first child's cause on the parent and
        // never overwrite it with a later one.
        let parent = Budget::unlimited().with_max_worlds(10).with_max_samples(10);
        let children = parent.split(2);
        assert!(children[0].charge(Resource::Worlds, 6).is_err());
        assert!(children[1].charge(Resource::Samples, 6).is_err());
        parent.settle(&children[0]);
        parent.settle(&children[1]);
        let err = parent.probe().unwrap_err();
        assert_eq!(err.resource, Resource::Worlds, "first settled cause wins");
        // Settling more healthy children must not clear the latch.
        let healthy = Budget::unlimited();
        parent.settle(&healthy);
        assert_eq!(parent.probe().unwrap_err().resource, Resource::Worlds);
    }

    #[test]
    fn parents_own_trip_outranks_a_settled_childs() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let parent = Budget::unlimited().with_max_terms(1);
        assert!(parent.charge(Resource::Terms, 2).is_err());
        let child = Budget::unlimited().with_max_samples(1);
        assert!(child.charge(Resource::Samples, 2).is_err());
        parent.settle(&child);
        assert_eq!(parent.probe().unwrap_err().resource, Resource::Terms);
    }

    #[test]
    fn rejected_charges_never_commit_under_concurrent_shards() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        // Eight shards hammer their caps from real threads, issuing
        // plenty of charges that must be rejected. After settling, the
        // parent's counter equals the cap exactly: every admitted unit
        // counted once, every rejected unit counted zero times,
        // regardless of interleaving.
        let parent = Budget::unlimited().with_max_samples(64);
        let children = parent.split(8);
        let children: Vec<Budget> = thread::scope(|s| {
            let handles: Vec<_> = children
                .into_iter()
                .map(|child| {
                    s.spawn(move || {
                        // 8 admitted, then 8 rejected, per shard.
                        for _ in 0..16 {
                            let _ = child.charge(Resource::Samples, 1);
                        }
                        child
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for child in &children {
            assert_eq!(child.spent(Resource::Samples), 8);
            assert!(child.probe().is_err(), "each shard tripped its cap");
            parent.settle(child);
        }
        assert_eq!(parent.spent(Resource::Samples), 64);
        assert!(parent.probe().is_err());
        // The parent sits exactly at its cap — rejected charges did not
        // leak in, or spent() would exceed the limit.
        assert_eq!(parent.remaining(Resource::Samples), Some(0));
    }

    #[test]
    fn display_formats() {
        let e = Exhausted {
            resource: Resource::WallClock,
            spent: 204,
            limit: Some(200),
        };
        assert_eq!(format!("{e}"), "deadline of 200ms exceeded after 204ms");
        let e = Exhausted {
            resource: Resource::Worlds,
            spent: 16385,
            limit: Some(16384),
        };
        assert_eq!(
            format!("{e}"),
            "budget of 16384 worlds exhausted after 16385"
        );
    }

    /// A deadline trip and an external cancel must stay distinguishable
    /// when the budget has been split across worker shards: every shard
    /// sees the same cause, and routing through `QrelError` yields
    /// `Timeout` for the one and `Cancelled` for the other.
    #[test]
    fn concurrent_shards_report_deadline_and_cancel_distinctly() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        use crate::error::QrelError;

        // Deadline: an already-expired allowance trips every shard with
        // WallClock, concurrently.
        let parent = Budget::with_deadline_from_now(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(5));
        let children = parent.split(4);
        // Budgets are Send but not Sync (plain-Cell counters), so each
        // shard owns its child outright — exactly how qrel-par does it.
        let causes: Vec<Resource> = std::thread::scope(|s| {
            children
                .into_iter()
                .map(|child| {
                    s.spawn(move || {
                        child
                            .probe()
                            .expect_err("expired deadline must trip")
                            .resource
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for cause in causes {
            assert_eq!(cause, Resource::WallClock);
        }
        let err = QrelError::from(parent.split(1)[0].probe().unwrap_err());
        assert!(matches!(err, QrelError::Timeout(_)), "got {err}");

        // Cancel: shards blocked mid-work observe the shared token and
        // report Cancelled — not Timeout — even though a generous
        // deadline is also armed.
        let parent = Budget::with_deadline_from_now(Duration::from_secs(3600));
        let token = parent.cancel_token();
        let children = parent.split(4);
        let causes: Vec<Resource> = std::thread::scope(|s| {
            let handles: Vec<_> = children
                .into_iter()
                .map(|child| {
                    s.spawn(move || loop {
                        if let Err(e) = child.probe() {
                            return e.resource;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(10));
            token.cancel();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for cause in causes {
            assert_eq!(cause, Resource::Cancelled);
        }
        let err = QrelError::from(parent.probe().unwrap_err());
        assert!(matches!(err, QrelError::Cancelled(_)), "got {err}");
    }

    #[test]
    fn spurious_trip_fault_is_transient_not_latched() {
        let plan = qrel_faults::FaultPlan::new(11).with_rule(
            qrel_faults::points::BUDGET_SPURIOUS_TRIP,
            1.0,
            0,
            1, // fire exactly once
        );
        let b = Budget::unlimited().with_max_samples(100);
        let _guard = plan.arm();
        let err = b
            .charge(Resource::Samples, 1)
            .expect_err("armed spurious trip must reject the first charge");
        assert_eq!(err.resource, Resource::Samples);
        // Unlike a genuine overrun the trip is not latched: the budget
        // still admits work and probe() stays clean.
        b.probe().expect("spurious trip must not latch");
        b.charge(Resource::Samples, 1)
            .expect("next charge proceeds normally");
        assert_eq!(b.spent(Resource::Samples), 1);
    }
}
