//! Cooperative runtime budgets, cancellation, and the workspace error
//! taxonomy.
//!
//! Every algorithm in this repository can cross from polynomial into
//! exponential work: exact reliability enumerates `2^u` worlds
//! (Theorem 4.2 puts it in FP^#P, and Proposition 3.2 says nothing
//! cheaper is likely), grounding can blow up a DNF, and the sampling
//! loops run for `O(m·ε⁻²·ln(1/δ))` iterations. A caller that needs an
//! answer *by a deadline* therefore needs three things, provided here:
//!
//! * [`Budget`] — a wall-clock deadline plus per-resource work caps
//!   (worlds enumerated, samples drawn, DNF terms grounded), charged
//!   cooperatively from the hot loops via [`Budget::charge`] /
//!   [`Budget::checkpoint`]. Checks are cheap: counters are plain cells,
//!   the clock is consulted only every few dozen charges, and no thread
//!   is ever killed mid-`BigRational` operation.
//! * [`CancelToken`] — a cloneable, thread-safe cancellation flag so an
//!   external supervisor can stop a solve that is no longer wanted.
//! * [`QrelError`] — the structured error taxonomy shared by the solver
//!   crates and the CLI, replacing stringly-typed results so callers can
//!   distinguish user error (bad query, bad spec) from budget exhaustion
//!   and solver degradation.
//!
//! This crate sits at the bottom of the workspace: it has no
//! dependencies, and `qrel-prob`, `qrel-count`, `qrel-eval`, and
//! `qrel-core` all accept `&Budget` in their budgeted entry points. The
//! `qrel-runtime` crate re-exports everything here and adds the
//! graceful-degradation ladder on top.

mod budget;
mod error;

pub use budget::{Budget, CancelToken, Exhausted, Resource};
pub use error::{QrelError, RetryClass};
