//! The structured error taxonomy shared across the workspace.

use crate::budget::Exhausted;
use std::fmt;

/// Workspace-wide error type for solver entry points and the CLI.
///
/// Replaces the stringly `Result<_, String>` plumbing so callers can
/// route on the *kind* of failure: user errors (`Parse`, `Spec`,
/// `Unsupported`) are terminal, `BudgetExhausted` invites retrying with
/// a larger budget or a cheaper method, and `Internal` marks a bug
/// (e.g. a panic caught at a ladder rung) that should never be
/// swallowed silently.
///
/// Conversions from the concrete error types of the solver crates
/// (`EvalError`, `GroundError`, `SpecError`, ...) live next to those
/// types; this crate stays dependency-free at the bottom of the
/// workspace, so the variants carry rendered messages rather than the
/// source enums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QrelError {
    /// The query text could not be parsed.
    Parse(String),
    /// The database spec is malformed (unknown relation, bad
    /// probability, arity mismatch, ...).
    Spec(String),
    /// Evaluating a formula against a world failed (free variable,
    /// arity mismatch, second-order construct in an FO evaluator, ...).
    Eval(String),
    /// The requested method cannot handle this query (e.g. the FPTRAS
    /// asked to run on a universal sentence).
    Unsupported(String),
    /// A cooperative *work* budget (worlds, samples, DNF terms) tripped
    /// before any answer — even a degraded one — was available. Distinct
    /// from [`QrelError::Timeout`]: work caps are deterministic, so the
    /// same request fails the same way again and retrying is pointless
    /// without a larger budget or cheaper method.
    BudgetExhausted(Exhausted),
    /// The wall-clock deadline expired (`Resource::WallClock`).
    Timeout(Exhausted),
    /// The solve was cancelled from outside via its `CancelToken`
    /// (`Resource::Cancelled`) — the caller stopped wanting the answer;
    /// nobody should retry on its behalf.
    Cancelled(Exhausted),
    /// A ladder rung panicked and was caught at the rung boundary. The
    /// message carries the panic payload. This is the one *transient*
    /// failure class: a panic says nothing about the next attempt, so
    /// the ladder may retry the rung while deadline remains.
    RungPanic(String),
    /// Every rung of the degradation ladder failed; the message records
    /// the per-rung causes.
    Degraded(String),
    /// A solver broke an internal invariant (non-panic bug path).
    Internal(String),
}

/// Whether a failure invites an immediate retry of the same work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// The failure is plausibly one-off (a caught panic); retrying the
    /// same rung with the remaining budget may succeed.
    Transient,
    /// Retrying the identical work cannot help: the input is bad, the
    /// failure is deterministic, the deadline is gone, or the caller
    /// cancelled.
    FailFast,
}

impl QrelError {
    /// Classify for the self-healing retry ladder.
    pub fn retry_class(&self) -> RetryClass {
        match self {
            QrelError::RungPanic(_) => RetryClass::Transient,
            _ => RetryClass::FailFast,
        }
    }

    /// True iff [`retry_class`](Self::retry_class) is `Transient`.
    pub fn is_transient(&self) -> bool {
        self.retry_class() == RetryClass::Transient
    }

    /// Stable snake_case tag for metrics and error-taxonomy reporting.
    pub fn kind(&self) -> &'static str {
        match self {
            QrelError::Parse(_) => "parse",
            QrelError::Spec(_) => "spec",
            QrelError::Eval(_) => "eval",
            QrelError::Unsupported(_) => "unsupported",
            QrelError::BudgetExhausted(_) => "budget_exhausted",
            QrelError::Timeout(_) => "timeout",
            QrelError::Cancelled(_) => "cancelled",
            QrelError::RungPanic(_) => "rung_panic",
            QrelError::Degraded(_) => "degraded",
            QrelError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for QrelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QrelError::Parse(m) => write!(f, "parse error: {m}"),
            QrelError::Spec(m) => write!(f, "invalid spec: {m}"),
            QrelError::Eval(m) => write!(f, "evaluation error: {m}"),
            QrelError::Unsupported(m) => write!(f, "unsupported: {m}"),
            QrelError::BudgetExhausted(e) => write!(f, "budget exhausted: {e}"),
            // The Exhausted renderings already carry the load-bearing
            // words ("deadline of ...", "cancelled by caller") that the
            // serve-path determinism classifier keys on.
            QrelError::Timeout(e) => write!(f, "timeout: {e}"),
            QrelError::Cancelled(e) => write!(f, "{e}"),
            QrelError::RungPanic(m) => write!(f, "rung panicked: {m}"),
            QrelError::Degraded(m) => write!(f, "all methods failed: {m}"),
            QrelError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for QrelError {}

impl From<Exhausted> for QrelError {
    /// Route by cause: a deadline trip, an external cancel, and a spent
    /// work counter are different events with different retry semantics,
    /// so they become different variants.
    fn from(e: Exhausted) -> Self {
        match e.resource {
            crate::budget::Resource::WallClock => QrelError::Timeout(e),
            crate::budget::Resource::Cancelled => QrelError::Cancelled(e),
            _ => QrelError::BudgetExhausted(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Resource;

    #[test]
    fn display_includes_kind_and_message() {
        let e = QrelError::Parse("unexpected token `)`".into());
        assert_eq!(format!("{e}"), "parse error: unexpected token `)`");
        let e = QrelError::from(Exhausted {
            resource: Resource::Samples,
            spent: 1001,
            limit: Some(1000),
        });
        assert_eq!(
            format!("{e}"),
            "budget exhausted: budget of 1000 samples exhausted after 1001"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(QrelError::Internal("oops".into()));
        assert!(e.to_string().contains("internal error"));
    }

    #[test]
    fn exhausted_routes_by_resource() {
        let timeout = QrelError::from(Exhausted {
            resource: Resource::WallClock,
            spent: 204,
            limit: Some(200),
        });
        assert!(matches!(timeout, QrelError::Timeout(_)));
        assert_eq!(timeout.kind(), "timeout");
        assert!(format!("{timeout}").contains("deadline"));

        let cancel = QrelError::from(Exhausted {
            resource: Resource::Cancelled,
            spent: 12,
            limit: None,
        });
        assert!(matches!(cancel, QrelError::Cancelled(_)));
        assert_eq!(cancel.kind(), "cancelled");
        assert!(format!("{cancel}").contains("cancelled"));

        let work = QrelError::from(Exhausted {
            resource: Resource::Worlds,
            spent: 9,
            limit: Some(8),
        });
        assert!(matches!(work, QrelError::BudgetExhausted(_)));
        assert_eq!(work.kind(), "budget_exhausted");
    }

    #[test]
    fn only_rung_panics_are_transient() {
        assert!(QrelError::RungPanic("boom".into()).is_transient());
        for e in [
            QrelError::Parse("x".into()),
            QrelError::Timeout(Exhausted {
                resource: Resource::WallClock,
                spent: 1,
                limit: Some(1),
            }),
            QrelError::Cancelled(Exhausted {
                resource: Resource::Cancelled,
                spent: 0,
                limit: None,
            }),
            QrelError::BudgetExhausted(Exhausted {
                resource: Resource::Samples,
                spent: 2,
                limit: Some(1),
            }),
            QrelError::Degraded("x".into()),
            QrelError::Internal("x".into()),
        ] {
            assert_eq!(e.retry_class(), RetryClass::FailFast, "{e}");
        }
    }
}
