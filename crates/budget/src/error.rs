//! The structured error taxonomy shared across the workspace.

use crate::budget::Exhausted;
use std::fmt;

/// Workspace-wide error type for solver entry points and the CLI.
///
/// Replaces the stringly `Result<_, String>` plumbing so callers can
/// route on the *kind* of failure: user errors (`Parse`, `Spec`,
/// `Unsupported`) are terminal, `BudgetExhausted` invites retrying with
/// a larger budget or a cheaper method, and `Internal` marks a bug
/// (e.g. a panic caught at a ladder rung) that should never be
/// swallowed silently.
///
/// Conversions from the concrete error types of the solver crates
/// (`EvalError`, `GroundError`, `SpecError`, ...) live next to those
/// types; this crate stays dependency-free at the bottom of the
/// workspace, so the variants carry rendered messages rather than the
/// source enums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QrelError {
    /// The query text could not be parsed.
    Parse(String),
    /// The database spec is malformed (unknown relation, bad
    /// probability, arity mismatch, ...).
    Spec(String),
    /// Evaluating a formula against a world failed (free variable,
    /// arity mismatch, second-order construct in an FO evaluator, ...).
    Eval(String),
    /// The requested method cannot handle this query (e.g. the FPTRAS
    /// asked to run on a universal sentence).
    Unsupported(String),
    /// A cooperative budget tripped before any answer — even a degraded
    /// one — was available.
    BudgetExhausted(Exhausted),
    /// Every rung of the degradation ladder failed; the message records
    /// the per-rung causes.
    Degraded(String),
    /// A solver panicked or broke an internal invariant.
    Internal(String),
}

impl fmt::Display for QrelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QrelError::Parse(m) => write!(f, "parse error: {m}"),
            QrelError::Spec(m) => write!(f, "invalid spec: {m}"),
            QrelError::Eval(m) => write!(f, "evaluation error: {m}"),
            QrelError::Unsupported(m) => write!(f, "unsupported: {m}"),
            QrelError::BudgetExhausted(e) => write!(f, "budget exhausted: {e}"),
            QrelError::Degraded(m) => write!(f, "all methods failed: {m}"),
            QrelError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for QrelError {}

impl From<Exhausted> for QrelError {
    fn from(e: Exhausted) -> Self {
        QrelError::BudgetExhausted(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Resource;

    #[test]
    fn display_includes_kind_and_message() {
        let e = QrelError::Parse("unexpected token `)`".into());
        assert_eq!(format!("{e}"), "parse error: unexpected token `)`");
        let e = QrelError::from(Exhausted {
            resource: Resource::Samples,
            spent: 1001,
            limit: Some(1000),
        });
        assert_eq!(
            format!("{e}"),
            "budget exhausted: budget of 1000 samples exhausted after 1001"
        );
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(QrelError::Internal("oops".into()));
        assert!(e.to_string().contains("internal error"));
    }
}
