//! Reliability of metafinite queries (Theorem 6.2).
//!
//! For a k-ary term query `F` the error notion carries over verbatim:
//! the expected number of tuples `ā` where `F^𝔄(ā) ≠ F^𝔅(ā)`, normalized
//! by `n^k`. Three algorithms:
//!
//! * [`qf_reliability`] — Theorem 6.2(i): for quantifier-free terms,
//!   each instantiated `F(ā)` reads a fixed number of entries, so the
//!   per-tuple error is computed exactly by enumerating the product of
//!   their (finite) supports — polynomial time;
//! * [`exact_reliability`] — Theorem 6.2(ii)'s algorithm executed
//!   literally: enumerate all possible databases with probabilities,
//!   evaluate, compare (exponential, the FP^#P simulation);
//! * [`mc_reliability`] — Monte-Carlo estimation with the additive
//!   Hoeffding budget (the Theorem 5.12 transfer noted in Section 6).

use crate::fdb::FunctionalDatabase;
use crate::term::{MTerm, TermError};
use crate::unreliable::UnreliableFunctionalDatabase;
use qrel_arith::BigRational;
use qrel_count::bounds::hoeffding_samples;
use rand::Rng;
use std::collections::HashMap;

/// Exact reliability result.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaReport {
    /// Expected number of tuples on which observed and actual values
    /// differ.
    pub expected_error: BigRational,
    /// `1 − H/n^k`.
    pub reliability: BigRational,
}

/// Enumerate all tuples `A^k`.
fn tuples(n: usize, k: usize) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(n.pow(k as u32));
    let mut t = vec![0u32; k];
    loop {
        if n > 0 || k == 0 {
            out.push(t.clone());
        }
        if k == 0 || n == 0 {
            return out;
        }
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if (t[i] as usize) + 1 < n {
                t[i] += 1;
                for s in t.iter_mut().skip(i + 1) {
                    *s = 0;
                }
                break;
            }
        }
    }
}

fn finish(h: BigRational, total: usize) -> MetaReport {
    let reliability = if total == 0 {
        BigRational::one()
    } else {
        h.div_ref(&BigRational::from_int(total as i64)).one_minus()
    };
    MetaReport {
        expected_error: h,
        reliability,
    }
}

/// Theorem 6.2(i): exact reliability of a quantifier-free term in
/// polynomial time.
///
/// # Panics
/// Panics if the term uses multiset operations or `free_vars` does not
/// cover its free variables.
pub fn qf_reliability(
    ud: &UnreliableFunctionalDatabase,
    term: &MTerm,
    free_vars: &[String],
) -> Result<MetaReport, TermError> {
    assert!(term.is_quantifier_free(), "term uses multiset operations");
    {
        let mut sorted = free_vars.to_vec();
        sorted.sort();
        assert_eq!(sorted, term.free_vars(), "free-variable order mismatch");
    }
    let n = ud.observed().size();
    let k = free_vars.len();
    let mut h = BigRational::zero();

    for tuple in tuples(n, k) {
        let env: HashMap<String, u32> = free_vars
            .iter()
            .cloned()
            .zip(tuple.iter().copied())
            .collect();
        let observed_value = term.eval(ud.observed(), &env)?;

        // The entries this instantiation reads: evaluate symbolically by
        // walking the term and collecting (function, rank) pairs.
        let mut entries: Vec<(String, usize)> = Vec::new();
        collect_entries(ud.observed(), term, &env, &mut entries)?;
        // Keep only genuinely uncertain ones.
        type UncertainEntry = (String, usize, Vec<(BigRational, BigRational)>);
        let uncertain: Vec<UncertainEntry> = entries
            .iter()
            .filter_map(|(f, r)| {
                ud.uncertain_entries()
                    .into_iter()
                    .find(|(f2, r2, _)| f2 == f && r2 == r)
                    .map(|(_, _, d)| (f.clone(), *r, d.support().to_vec()))
            })
            .collect();

        // Product over the supports of the mentioned uncertain entries —
        // constant size for a fixed query.
        let mut err = BigRational::zero();
        let mut choice = vec![0usize; uncertain.len()];
        'outer: loop {
            let mut world = ud.observed().clone();
            let mut prob = BigRational::one();
            for (i, (f, r, support)) in uncertain.iter().enumerate() {
                let (v, p) = &support[choice[i]];
                world.function_mut(f).unwrap().set_at(*r, v.clone());
                prob = prob.mul_ref(p);
            }
            let actual = term.eval(&world, &env)?;
            if actual != observed_value {
                err = err.add_ref(&prob);
            }
            let mut i = uncertain.len();
            loop {
                if i == 0 {
                    break 'outer;
                }
                i -= 1;
                if choice[i] + 1 < uncertain[i].2.len() {
                    choice[i] += 1;
                    for c in choice.iter_mut().skip(i + 1) {
                        *c = 0;
                    }
                    break;
                }
            }
        }
        h = h.add_ref(&err);
    }
    Ok(finish(h, n.pow(k as u32)))
}

fn collect_entries(
    db: &FunctionalDatabase,
    term: &MTerm,
    env: &HashMap<String, u32>,
    out: &mut Vec<(String, usize)>,
) -> Result<(), TermError> {
    match term {
        MTerm::Const(_) => Ok(()),
        MTerm::Func { name, args } => {
            let table = db
                .function(name)
                .ok_or_else(|| TermError::UnknownFunction(name.clone()))?;
            if table.arity() != args.len() {
                return Err(TermError::ArityMismatch {
                    function: name.clone(),
                    expected: table.arity(),
                    got: args.len(),
                });
            }
            let tuple: Vec<u32> = args
                .iter()
                .map(|a| {
                    env.get(a)
                        .copied()
                        .ok_or_else(|| TermError::UnboundVariable(a.clone()))
                })
                .collect::<Result<_, _>>()?;
            let rank = table.rank(db.size(), &tuple);
            let key = (name.clone(), rank);
            if !out.contains(&key) {
                out.push(key);
            }
            Ok(())
        }
        MTerm::Apply(_, ts) => {
            for t in ts {
                collect_entries(db, t, env, out)?;
            }
            Ok(())
        }
        MTerm::Multiset { .. } => unreachable!("quantifier-free checked by caller"),
    }
}

/// Theorem 6.2(ii) executed literally: exact reliability of an arbitrary
/// term by enumerating all possible databases. Exponential.
pub fn exact_reliability(
    ud: &UnreliableFunctionalDatabase,
    term: &MTerm,
    free_vars: &[String],
) -> Result<MetaReport, TermError> {
    {
        let mut sorted = free_vars.to_vec();
        sorted.sort();
        assert_eq!(sorted, term.free_vars(), "free-variable order mismatch");
    }
    let n = ud.observed().size();
    let k = free_vars.len();
    let all_tuples = tuples(n, k);

    // Observed answers.
    let mut observed_values = Vec::with_capacity(all_tuples.len());
    for t in &all_tuples {
        let env: HashMap<String, u32> = free_vars.iter().cloned().zip(t.iter().copied()).collect();
        observed_values.push(term.eval(ud.observed(), &env)?);
    }

    let mut h = BigRational::zero();
    for (world, prob) in ud.worlds() {
        let mut diff = 0u64;
        for (t, obs) in all_tuples.iter().zip(&observed_values) {
            let env: HashMap<String, u32> =
                free_vars.iter().cloned().zip(t.iter().copied()).collect();
            if &term.eval(&world, &env)? != obs {
                diff += 1;
            }
        }
        if diff > 0 {
            h = h.add_ref(&prob.mul_ref(&BigRational::from_int(diff as i64)));
        }
    }
    Ok(finish(h, n.pow(k as u32)))
}

/// Monte-Carlo reliability estimation with absolute-(ε, δ) guarantees per
/// tuple (Hoeffding budget split as in Corollary 5.5).
pub fn mc_reliability<R: Rng>(
    ud: &UnreliableFunctionalDatabase,
    term: &MTerm,
    free_vars: &[String],
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<f64, TermError> {
    let n = ud.observed().size();
    let k = free_vars.len();
    let all_tuples = tuples(n, k);
    let nk = all_tuples.len().max(1);
    let t = hoeffding_samples((eps / nk as f64).max(1e-9), (delta / nk as f64).min(0.5));

    let mut h = 0.0f64;
    for tup in &all_tuples {
        let env: HashMap<String, u32> =
            free_vars.iter().cloned().zip(tup.iter().copied()).collect();
        let observed = term.eval(ud.observed(), &env)?;
        let mut wrong = 0u64;
        for _ in 0..t {
            let world = ud.sample(rng);
            if term.eval(&world, &env)? != observed {
                wrong += 1;
            }
        }
        h += wrong as f64 / t as f64;
    }
    Ok(1.0 - h / nk as f64)
}

/// Exact expected value `E[F^𝔅]` of a Boolean-free numeric sentence (a
/// 0-ary term) — a convenience beyond the paper's reliability notion,
/// natural for aggregates ("expected total salary").
pub fn expected_value(
    ud: &UnreliableFunctionalDatabase,
    term: &MTerm,
) -> Result<BigRational, TermError> {
    assert!(
        term.free_vars().is_empty(),
        "expected_value requires a sentence"
    );
    let env = HashMap::new();
    let mut e = BigRational::zero();
    for (world, prob) in ud.worlds() {
        e = e.add_ref(&prob.mul_ref(&term.eval(&world, &env)?));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{MultisetOp, ROp};
    use crate::unreliable::EntryDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn dist(pairs: &[(i64, u64, i64, u64)]) -> EntryDistribution {
        EntryDistribution::new(
            pairs
                .iter()
                .map(|&(vn, vd, pn, pd)| (r(vn, vd), r(pn, pd)))
                .collect(),
        )
        .unwrap()
    }

    fn setup() -> UnreliableFunctionalDatabase {
        let mut db = FunctionalDatabase::new(3);
        db.add_function_values("salary", 1, vec![r(100, 1), r(200, 1), r(300, 1)]);
        let mut ud = UnreliableFunctionalDatabase::reliable(db);
        // salary(0): 100 w.p. 1/2, 150 w.p. 1/2. salary(2): 300 w.p. 3/4, 0 w.p. 1/4.
        ud.set_distribution("salary", &[0], dist(&[(100, 1, 1, 2), (150, 1, 1, 2)]));
        ud.set_distribution("salary", &[2], dist(&[(300, 1, 3, 4), (0, 1, 1, 4)]));
        ud
    }

    #[test]
    fn qf_reliability_single_function() {
        // F(x) = salary(x): error at 0 w.p. 1/2, at 2 w.p. 1/4, at 1 never.
        let ud = setup();
        let t = MTerm::func("salary", ["x"]);
        let rep = qf_reliability(&ud, &t, &["x".to_string()]).unwrap();
        assert_eq!(rep.expected_error, r(3, 4));
        assert_eq!(rep.reliability, r(3, 4).div_ref(&r(3, 1)).one_minus());
    }

    #[test]
    fn qf_matches_exhaustive_engine() {
        let ud = setup();
        // F(x) = salary(x) + χ[salary(x) ≤ 150]·7 — nontrivial QF term.
        let t = MTerm::apply(
            ROp::Add,
            [
                MTerm::func("salary", ["x"]),
                MTerm::apply(
                    ROp::Mul,
                    [
                        MTerm::apply(
                            ROp::CharLe,
                            [MTerm::func("salary", ["x"]), MTerm::constant(150, 1)],
                        ),
                        MTerm::constant(7, 1),
                    ],
                ),
            ],
        );
        let fast = qf_reliability(&ud, &t, &["x".to_string()]).unwrap();
        let slow = exact_reliability(&ud, &t, &["x".to_string()]).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn qf_value_changes_can_cancel() {
        // F(x) = χ[salary(x) ≤ 200]: the flip 100→150 does NOT change the
        // characteristic value, so tuple 0 contributes no error; the flip
        // 300→0 changes it, so tuple 2 contributes 1/4.
        let ud = setup();
        let t = MTerm::apply(
            ROp::CharLe,
            [MTerm::func("salary", ["x"]), MTerm::constant(200, 1)],
        );
        let rep = qf_reliability(&ud, &t, &["x".to_string()]).unwrap();
        assert_eq!(rep.expected_error, r(1, 4));
    }

    #[test]
    fn aggregate_reliability_exact() {
        // F = Σ_x salary(x): observed 600; changes whenever any uncertain
        // entry deviates: 1 − (1/2)(3/4) = 5/8.
        let ud = setup();
        let t = MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::func("salary", ["x"]));
        let rep = exact_reliability(&ud, &t, &[]).unwrap();
        assert_eq!(rep.expected_error, r(5, 8));
        assert_eq!(rep.reliability, r(3, 8));
    }

    #[test]
    fn max_aggregate_can_absorb_changes() {
        // F = max_x salary(x) = 300 observed; the salary(0) flip never
        // affects the max; error iff salary(2) drops to 0 (then max = 200):
        // H = 1/4.
        let ud = setup();
        let t = MTerm::multiset(MultisetOp::Max, ["x"], MTerm::func("salary", ["x"]));
        let rep = exact_reliability(&ud, &t, &[]).unwrap();
        assert_eq!(rep.expected_error, r(1, 4));
    }

    #[test]
    fn expected_value_of_sum() {
        // E[Σ salary] = E[s0] + s1 + E[s2] = 125 + 200 + 225 = 550.
        let ud = setup();
        let t = MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::func("salary", ["x"]));
        assert_eq!(expected_value(&ud, &t).unwrap(), r(550, 1));
    }

    #[test]
    fn mc_estimate_close_to_exact() {
        let ud = setup();
        let t = MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::func("salary", ["x"]));
        let exact = exact_reliability(&ud, &t, &[])
            .unwrap()
            .reliability
            .to_f64();
        let mut rng = StdRng::seed_from_u64(61);
        let est = mc_reliability(&ud, &t, &[], 0.05, 0.05, &mut rng).unwrap();
        assert!((est - exact).abs() <= 0.05, "est {est} vs exact {exact}");
    }

    #[test]
    fn fully_reliable_database() {
        let mut db = FunctionalDatabase::new(2);
        db.add_function_values("f", 1, vec![r(1, 1), r(2, 1)]);
        let ud = UnreliableFunctionalDatabase::reliable(db);
        let t = MTerm::func("f", ["x"]);
        let rep = qf_reliability(&ud, &t, &["x".to_string()]).unwrap();
        assert_eq!(rep.reliability, BigRational::one());
        let agg = MTerm::multiset(MultisetOp::Avg, ["x"], MTerm::func("f", ["x"]));
        let rep2 = exact_reliability(&ud, &agg, &[]).unwrap();
        assert_eq!(rep2.reliability, BigRational::one());
    }

    #[test]
    #[should_panic(expected = "multiset operations")]
    fn qf_rejects_aggregates() {
        let ud = setup();
        let t = MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::func("salary", ["x"]));
        let _ = qf_reliability(&ud, &t, &[]);
    }
}
