//! Functional databases `(A, ℱ)`.

use qrel_arith::BigRational;
use std::collections::BTreeMap;
use std::fmt;

/// A function `f : A^k → ℚ`, stored as a dense table in lexicographic
/// tuple order (mixed-radix rank, universe size `n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionTable {
    arity: usize,
    /// `n^arity` values.
    values: Vec<BigRational>,
}

impl FunctionTable {
    /// Constant-zero table.
    pub fn zeros(n: usize, arity: usize) -> Self {
        FunctionTable {
            arity,
            values: vec![BigRational::zero(); n.pow(arity as u32)],
        }
    }

    /// Build from values in lexicographic tuple order.
    ///
    /// # Panics
    /// Panics if `values.len() != n^arity`.
    pub fn from_values(n: usize, arity: usize, values: Vec<BigRational>) -> Self {
        assert_eq!(values.len(), n.pow(arity as u32), "table size mismatch");
        FunctionTable { arity, values }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mixed-radix rank of a tuple.
    pub fn rank(&self, n: usize, tuple: &[u32]) -> usize {
        debug_assert_eq!(tuple.len(), self.arity);
        let mut r = 0usize;
        for &e in tuple {
            debug_assert!((e as usize) < n);
            r = r * n + e as usize;
        }
        r
    }

    pub fn get(&self, n: usize, tuple: &[u32]) -> &BigRational {
        &self.values[self.rank(n, tuple)]
    }

    pub fn set(&mut self, n: usize, tuple: &[u32], v: BigRational) {
        let r = self.rank(n, tuple);
        self.values[r] = v;
    }

    pub fn get_at(&self, index: usize) -> &BigRational {
        &self.values[index]
    }

    pub fn set_at(&mut self, index: usize, v: BigRational) {
        self.values[index] = v;
    }
}

/// A functional database `𝔄 = (A, ℱ)` over the rationals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDatabase {
    n: usize,
    functions: BTreeMap<String, FunctionTable>,
}

impl FunctionalDatabase {
    /// Empty database over a universe of `n` elements.
    pub fn new(n: usize) -> Self {
        FunctionalDatabase {
            n,
            functions: BTreeMap::new(),
        }
    }

    /// Universe size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Declare a function initialized to zero.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn add_function(&mut self, name: &str, arity: usize) {
        let prev = self
            .functions
            .insert(name.to_string(), FunctionTable::zeros(self.n, arity));
        assert!(prev.is_none(), "duplicate function {name:?}");
    }

    /// Declare a function with explicit values (lexicographic order).
    pub fn add_function_values(&mut self, name: &str, arity: usize, values: Vec<BigRational>) {
        let prev = self.functions.insert(
            name.to_string(),
            FunctionTable::from_values(self.n, arity, values),
        );
        assert!(prev.is_none(), "duplicate function {name:?}");
    }

    pub fn function(&self, name: &str) -> Option<&FunctionTable> {
        self.functions.get(name)
    }

    pub fn function_mut(&mut self, name: &str) -> Option<&mut FunctionTable> {
        self.functions.get_mut(name)
    }

    /// Function names in sorted order.
    pub fn function_names(&self) -> impl Iterator<Item = &str> {
        self.functions.keys().map(|s| s.as_str())
    }

    /// Value `f(ā)`.
    ///
    /// # Panics
    /// Panics for unknown functions or arity mismatches.
    pub fn value(&self, name: &str, tuple: &[u32]) -> &BigRational {
        let f = self
            .functions
            .get(name)
            .unwrap_or_else(|| panic!("unknown function {name:?}"));
        assert_eq!(f.arity(), tuple.len(), "arity mismatch for {name:?}");
        f.get(self.n, tuple)
    }

    /// Total number of function entries (the dimension of the world space).
    pub fn entry_count(&self) -> usize {
        self.functions.values().map(|f| f.len()).sum()
    }

    /// Entries in a canonical order: functions sorted by name, tuples by
    /// rank. Returns `(function name, rank)` pairs.
    pub fn entries(&self) -> Vec<(String, usize)> {
        let mut out = Vec::with_capacity(self.entry_count());
        for (name, table) in &self.functions {
            for r in 0..table.len() {
                out.push((name.clone(), r));
            }
        }
        out
    }
}

impl fmt::Display for FunctionalDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "universe size: {}", self.n)?;
        for (name, table) in &self.functions {
            write!(f, "{name}/{} = [", table.arity())?;
            for i in 0..table.len() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", table.get_at(i))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn build_and_access() {
        let mut db = FunctionalDatabase::new(3);
        db.add_function("salary", 1);
        db.function_mut("salary").unwrap().set(3, &[1], r(1000, 1));
        assert_eq!(db.value("salary", &[1]), &r(1000, 1));
        assert_eq!(db.value("salary", &[0]), &BigRational::zero());
    }

    #[test]
    fn binary_function_rank_order() {
        let mut db = FunctionalDatabase::new(2);
        db.add_function_values("dist", 2, vec![r(0, 1), r(1, 1), r(2, 1), r(3, 1)]);
        // Lexicographic: (0,0)→0, (0,1)→1, (1,0)→2, (1,1)→3.
        assert_eq!(db.value("dist", &[0, 1]), &r(1, 1));
        assert_eq!(db.value("dist", &[1, 0]), &r(2, 1));
    }

    #[test]
    fn nullary_function_is_a_constant() {
        let mut db = FunctionalDatabase::new(5);
        db.add_function_values("threshold", 0, vec![r(7, 2)]);
        assert_eq!(db.value("threshold", &[]), &r(7, 2));
        assert_eq!(db.function("threshold").unwrap().len(), 1);
    }

    #[test]
    fn entry_enumeration() {
        let mut db = FunctionalDatabase::new(2);
        db.add_function("f", 1);
        db.add_function("g", 0);
        assert_eq!(db.entry_count(), 3);
        let entries = db.entries();
        assert_eq!(entries.len(), 3);
        // Sorted by name: f's two entries then g's one.
        assert_eq!(entries[0], ("f".to_string(), 0));
        assert_eq!(entries[2], ("g".to_string(), 0));
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_rejected() {
        let mut db = FunctionalDatabase::new(2);
        db.add_function("f", 1);
        db.add_function("f", 2);
    }

    #[test]
    #[should_panic(expected = "table size mismatch")]
    fn wrong_table_size_rejected() {
        FunctionTable::from_values(3, 1, vec![BigRational::zero()]);
    }
}
