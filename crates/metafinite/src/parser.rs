//! A concrete syntax for metafinite terms.
//!
//! ```text
//! term     := additive
//! additive := mult (("+" | "-") mult)*
//! mult     := unary ("*" unary)*
//! unary    := "-" unary | primary
//! primary  := NUMBER [ "/" NUMBER ]                  rational constant
//!           | IDENT "(" [ VAR { "," VAR } ] ")"      database function
//!           | "(" term ")"
//!           | AGG VAR+ "." term                      multiset operation
//!           | "eq" "(" term "," term ")"             χ[=]
//!           | "lt" "(" term "," term ")"             χ[<]
//!           | "le" "(" term "," term ")"             χ[≤]
//!           | "min" "(" term "," term ")"            binary min/max
//!           | "max" "(" term "," term ")"
//! AGG      := "sum" | "prod" | "min" | "max" | "count" | "avg"
//! ```
//!
//! `min`/`max` are aggregates when followed by variables and a dot
//! (`min x. salary(x)`), binary operations when followed by `(`.
//!
//! ```
//! use qrel_metafinite::parser::parse_term;
//! // SQL: SELECT SUM(salary) WHERE dept = 2
//! let t = parse_term("sum x. salary(x) * eq(dept(x), 2)").unwrap();
//! assert!(t.free_vars().is_empty());
//! ```

use crate::term::{MTerm, MultisetOp, ROp};
use qrel_arith::BigRational;
use std::fmt;

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for TermParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "term parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for TermParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, TermParseError> {
    let mut out = Vec::new();
    let mut it = src.char_indices().peekable();
    while let Some(&(i, c)) = it.peek() {
        match c {
            c if c.is_whitespace() => {
                it.next();
            }
            '(' => {
                it.next();
                out.push((i, Tok::LParen));
            }
            ')' => {
                it.next();
                out.push((i, Tok::RParen));
            }
            ',' => {
                it.next();
                out.push((i, Tok::Comma));
            }
            '.' => {
                it.next();
                out.push((i, Tok::Dot));
            }
            '+' => {
                it.next();
                out.push((i, Tok::Plus));
            }
            '-' => {
                it.next();
                out.push((i, Tok::Minus));
            }
            '*' => {
                it.next();
                out.push((i, Tok::Star));
            }
            '/' => {
                it.next();
                out.push((i, Tok::Slash));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&(_, d)) = it.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        it.next();
                    } else {
                        break;
                    }
                }
                out.push((i, Tok::Number(s)));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&(_, d)) = it.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        it.next();
                    } else {
                        break;
                    }
                }
                out.push((i, Tok::Ident(s)));
            }
            other => {
                return Err(TermParseError {
                    offset: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    len: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|(o, _)| *o).unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> TermParseError {
        TermParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), TermParseError> {
        if self.peek() == Some(t) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn term(&mut self) -> Result<MTerm, TermParseError> {
        let mut acc = self.mult()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    let rhs = self.mult()?;
                    acc = MTerm::apply(ROp::Add, [acc, rhs]);
                }
                Some(Tok::Minus) => {
                    self.bump();
                    let rhs = self.mult()?;
                    acc = MTerm::apply(ROp::Sub, [acc, rhs]);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn mult(&mut self) -> Result<MTerm, TermParseError> {
        let mut acc = self.unary()?;
        while self.peek() == Some(&Tok::Star) {
            self.bump();
            let rhs = self.unary()?;
            acc = MTerm::apply(ROp::Mul, [acc, rhs]);
        }
        Ok(acc)
    }

    fn unary(&mut self) -> Result<MTerm, TermParseError> {
        if self.peek() == Some(&Tok::Minus) {
            self.bump();
            let inner = self.unary()?;
            Ok(MTerm::apply(ROp::Neg, [inner]))
        } else {
            self.primary()
        }
    }

    fn rational(&mut self, neg_allowed: bool) -> Result<BigRational, TermParseError> {
        let _ = neg_allowed;
        let Some(Tok::Number(n)) = self.bump() else {
            return Err(self.err("expected a number"));
        };
        let numer: i64 = n.parse().map_err(|_| self.err("number too large"))?;
        if self.peek() == Some(&Tok::Slash) {
            self.bump();
            let Some(Tok::Number(d)) = self.bump() else {
                return Err(self.err("expected a denominator"));
            };
            let denom: u64 = d.parse().map_err(|_| self.err("number too large"))?;
            if denom == 0 {
                return Err(self.err("zero denominator"));
            }
            Ok(BigRational::from_ratio(numer, denom))
        } else {
            Ok(BigRational::from_int(numer))
        }
    }

    fn primary(&mut self) -> Result<MTerm, TermParseError> {
        match self.peek().cloned() {
            Some(Tok::Number(_)) => Ok(MTerm::Const(self.rational(false)?)),
            Some(Tok::LParen) => {
                self.bump();
                let t = self.term()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(t)
            }
            Some(Tok::Ident(name)) => {
                // Aggregates and binary interpreted functions.
                let agg = match name.as_str() {
                    "sum" => Some(MultisetOp::Sum),
                    "prod" => Some(MultisetOp::Prod),
                    "count" => Some(MultisetOp::Count),
                    "avg" => Some(MultisetOp::Avg),
                    "min" => Some(MultisetOp::Min),
                    "max" => Some(MultisetOp::Max),
                    _ => None,
                };
                let is_aggregate_form =
                    agg.is_some() && matches!(self.peek2(), Some(Tok::Ident(_)));
                if is_aggregate_form {
                    self.bump(); // the aggregate keyword
                    let mut vars = Vec::new();
                    while let Some(Tok::Ident(v)) = self.peek() {
                        vars.push(v.clone());
                        self.bump();
                    }
                    self.expect(&Tok::Dot, "'.' after aggregate variables")?;
                    let body = self.term()?;
                    return Ok(MTerm::Multiset {
                        op: agg.unwrap(),
                        vars,
                        body: Box::new(body),
                    });
                }
                // Binary interpreted functions.
                let binop = match name.as_str() {
                    "eq" => Some(ROp::CharEq),
                    "lt" => Some(ROp::CharLt),
                    "le" => Some(ROp::CharLe),
                    "min" => Some(ROp::Min),
                    "max" => Some(ROp::Max),
                    _ => None,
                };
                if let Some(op) = binop {
                    self.bump();
                    self.expect(&Tok::LParen, "'('")?;
                    let a = self.term()?;
                    self.expect(&Tok::Comma, "','")?;
                    let b = self.term()?;
                    self.expect(&Tok::RParen, "')'")?;
                    return Ok(MTerm::apply(op, [a, b]));
                }
                // Database function application.
                self.bump();
                self.expect(&Tok::LParen, "'(' after function name")?;
                let mut args = Vec::new();
                if self.peek() != Some(&Tok::RParen) {
                    loop {
                        match self.bump() {
                            Some(Tok::Ident(v)) => args.push(v),
                            _ => return Err(self.err("expected a variable argument")),
                        }
                        if self.peek() == Some(&Tok::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen, "')' closing arguments")?;
                Ok(MTerm::Func { name, args })
            }
            _ => Err(self.err("expected a term")),
        }
    }
}

/// Parse a metafinite term; see the module docs for the grammar.
pub fn parse_term(src: &str) -> Result<MTerm, TermParseError> {
    let toks = tokenize(src)?;
    let mut p = P {
        toks,
        pos: 0,
        len: src.len(),
    };
    let t = p.term()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after term"));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fdb::FunctionalDatabase;
    use std::collections::HashMap;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn db() -> FunctionalDatabase {
        let mut db = FunctionalDatabase::new(3);
        db.add_function_values("f", 1, vec![r(1, 1), r(2, 1), r(3, 1)]);
        db.add_function_values("g", 1, vec![r(1, 1), r(1, 1), r(2, 1)]);
        db
    }

    fn eval(src: &str) -> BigRational {
        parse_term(src)
            .unwrap()
            .eval(&db(), &HashMap::new())
            .unwrap()
    }

    #[test]
    fn constants_and_arithmetic() {
        assert_eq!(eval("1 + 2 * 3"), r(7, 1));
        assert_eq!(eval("(1 + 2) * 3"), r(9, 1));
        assert_eq!(eval("1/2 + 1/3"), r(5, 6));
        assert_eq!(eval("-2 + 5"), r(3, 1));
        assert_eq!(eval("2 - 3 - 1"), r(-2, 1)); // left associative
    }

    #[test]
    fn aggregates() {
        assert_eq!(eval("sum x. f(x)"), r(6, 1));
        assert_eq!(eval("prod x. f(x)"), r(6, 1));
        assert_eq!(eval("max x. f(x)"), r(3, 1));
        assert_eq!(eval("min x. f(x)"), r(1, 1));
        assert_eq!(eval("avg x. f(x)"), r(2, 1));
        assert_eq!(eval("count x. 1"), r(3, 1));
        assert_eq!(eval("sum x y. 1"), r(9, 1));
    }

    #[test]
    fn characteristic_functions_and_binary_min_max() {
        assert_eq!(eval("eq(1, 1)"), r(1, 1));
        assert_eq!(eval("lt(1, 2)"), r(1, 1));
        assert_eq!(eval("le(2, 2)"), r(1, 1));
        assert_eq!(eval("min(3, 5)"), r(3, 1));
        assert_eq!(eval("max(3, 5)"), r(5, 1));
        // Filtered sum: entries with g = 1 → f(0) + f(1) = 3.
        assert_eq!(eval("sum x. f(x) * eq(g(x), 1)"), r(3, 1));
    }

    #[test]
    fn min_disambiguation() {
        // Aggregate form vs binary form of min.
        assert_eq!(eval("min x. f(x) + 10"), r(11, 1)); // body extends right
        assert_eq!(eval("min(2, 1) + 10"), r(11, 1));
    }

    #[test]
    fn nested_aggregates() {
        // max_x Σ_y χ[g(x) = g(y)] = size of largest g-class = 2.
        assert_eq!(eval("max x. sum y. eq(g(x), g(y))"), r(2, 1));
    }

    #[test]
    fn free_variables() {
        let t = parse_term("f(x) + sum y. f(y)").unwrap();
        assert_eq!(t.free_vars(), vec!["x".to_string()]);
    }

    #[test]
    fn errors() {
        assert!(parse_term("").is_err());
        assert!(parse_term("f(").is_err());
        assert!(parse_term("1 +").is_err());
        assert!(parse_term("sum . f(x)").is_err());
        assert!(parse_term("f(x) f(y)").is_err());
        assert!(parse_term("1/0").is_err());
        assert!(
            parse_term("f(1)").is_err(),
            "function args must be variables"
        );
        assert!(parse_term("eq(1)").is_err());
        assert!(parse_term("@").is_err());
    }

    #[test]
    fn roundtrip_against_builders() {
        use crate::term::{MTerm, MultisetOp, ROp};
        let parsed = parse_term("sum x. f(x) * eq(g(x), 2)").unwrap();
        let built = MTerm::multiset(
            MultisetOp::Sum,
            ["x"],
            MTerm::apply(
                ROp::Mul,
                [
                    MTerm::func("f", ["x"]),
                    MTerm::apply(
                        ROp::CharEq,
                        [MTerm::func("g", ["x"]), MTerm::constant(2, 1)],
                    ),
                ],
            ),
        );
        assert_eq!(parsed, built);
    }
}
