//! Second-order metafinite terms (Theorem 6.2(iii)).
//!
//! The paper extends first-order metafinite queries "by multiset
//! operations over relations (rather than tuples)": given a term
//! `F(S, x̄)` with a free second-order variable `S`, one builds
//! `Σ_S F(S, x̄)` ranging over all relations of the given arity. With
//! `Σ, max, min` over relations the expressive power sits between #P
//! and PSPACE (inside Wagner's counting hierarchy CH), and the
//! reliability of every second-order query is in `FP^CH` by the same
//! enumerate-worlds-and-evaluate algorithm.
//!
//! We model second-order variables as 0/1-valued *function variables*
//! `S : A^k → {0, 1}` (the characteristic function — consistent with how
//! the encoder of [`crate::definability`] represents relations).
//! Evaluation enumerates all `2^(n^k)` tables, so this is exact and
//! deliberately exponential (the class is above #P); a size guard keeps
//! it honest.

use crate::fdb::FunctionalDatabase;
use crate::term::{MTerm, MultisetOp, TermError};
use crate::unreliable::UnreliableFunctionalDatabase;
use qrel_arith::BigRational;
use std::collections::HashMap;

/// A second-order metafinite term: first-order [`MTerm`]s extended by
/// multiset operations binding a function variable.
#[derive(Debug, Clone, PartialEq)]
pub enum SoTerm {
    /// Embed a first-order term (which may mention bound function
    /// variables as ordinary functions).
    First(MTerm),
    /// `Op_{S : A^arity → {0,1}} body` — multiset operation over all
    /// relations of the arity.
    MultisetRel {
        op: MultisetOp,
        var: String,
        arity: usize,
        body: Box<SoTerm>,
    },
    /// Interpreted operation over subterms (so SO quantifiers can nest
    /// inside arithmetic).
    Apply(crate::term::ROp, Vec<SoTerm>),
}

/// Guard: a second-order binder enumerates `2^(n^arity)` tables; refuse
/// beyond this many *entries* per table.
const SO_GUARD_ENTRIES: usize = 20;

impl SoTerm {
    /// Evaluate on a functional database.
    ///
    /// Bound function variables are installed as temporary functions in a
    /// scratch copy of the database (shadowing is rejected to keep
    /// semantics obvious).
    pub fn eval(
        &self,
        db: &FunctionalDatabase,
        env: &HashMap<String, u32>,
    ) -> Result<BigRational, TermError> {
        match self {
            SoTerm::First(t) => t.eval(db, env),
            SoTerm::Apply(op, ts) => {
                let args: Vec<BigRational> = ts
                    .iter()
                    .map(|t| t.eval(db, env))
                    .collect::<Result<_, _>>()?;
                assert_eq!(args.len(), op.arity(), "operator arity mismatch");
                Ok(op.apply(&args))
            }
            SoTerm::MultisetRel {
                op,
                var,
                arity,
                body,
            } => {
                let n = db.size();
                let entries = n.pow(*arity as u32);
                assert!(
                    entries <= SO_GUARD_ENTRIES,
                    "second-order enumeration over {entries} entries exceeds the guard"
                );
                assert!(
                    db.function(var).is_none(),
                    "second-order variable {var:?} shadows an existing function"
                );
                let mut values = Vec::with_capacity(1usize << entries);
                let mut scratch = db.clone();
                scratch.add_function(var, *arity);
                for mask in 0u64..(1u64 << entries) {
                    {
                        let table = scratch.function_mut(var).expect("just added");
                        for e in 0..entries {
                            table.set_at(
                                e,
                                if (mask >> e) & 1 == 1 {
                                    BigRational::one()
                                } else {
                                    BigRational::zero()
                                },
                            );
                        }
                    }
                    values.push(body.eval(&scratch, env)?);
                }
                reduce(*op, values)
            }
        }
    }

    /// Free first-order variables.
    pub fn free_vars(&self) -> Vec<String> {
        match self {
            SoTerm::First(t) => t.free_vars(),
            SoTerm::Apply(_, ts) => {
                let mut out: Vec<String> = ts.iter().flat_map(|t| t.free_vars()).collect();
                out.sort();
                out.dedup();
                out
            }
            SoTerm::MultisetRel { body, .. } => body.free_vars(),
        }
    }
}

fn reduce(op: MultisetOp, values: Vec<BigRational>) -> Result<BigRational, TermError> {
    match op {
        MultisetOp::Sum => Ok(values
            .iter()
            .fold(BigRational::zero(), |acc, v| acc.add_ref(v))),
        MultisetOp::Prod => Ok(values
            .iter()
            .fold(BigRational::one(), |acc, v| acc.mul_ref(v))),
        MultisetOp::Count => Ok(BigRational::from_int(values.len() as i64)),
        MultisetOp::Min => values.into_iter().min().ok_or(TermError::EmptyMultiset),
        MultisetOp::Max => values.into_iter().max().ok_or(TermError::EmptyMultiset),
        MultisetOp::Avg => {
            if values.is_empty() {
                return Err(TermError::EmptyMultiset);
            }
            let count = BigRational::from_int(values.len() as i64);
            let sum = values
                .iter()
                .fold(BigRational::zero(), |acc, v| acc.add_ref(v));
            Ok(sum.div_ref(&count))
        }
    }
}

/// Exact reliability of a second-order Boolean-valued term query by full
/// world enumeration — the `FP^CH` algorithm of Theorem 6.2(iii)
/// executed literally: "on each branch of the computation tree one of
/// the finitely many possible databases is guessed; … finally the query
/// is evaluated and the result compared against the result on the
/// observed database."
pub fn so_reliability(
    ud: &UnreliableFunctionalDatabase,
    term: &SoTerm,
) -> Result<crate::reliability::MetaReport, TermError> {
    assert!(
        term.free_vars().is_empty(),
        "so_reliability requires a sentence"
    );
    let env = HashMap::new();
    let observed = term.eval(ud.observed(), &env)?;
    let mut h = BigRational::zero();
    for (world, prob) in ud.worlds() {
        if term.eval(&world, &env)? != observed {
            h = h.add_ref(&prob);
        }
    }
    Ok(crate::reliability::MetaReport {
        expected_error: h.clone(),
        reliability: h.one_minus(),
    })
}

/// Convenience: count the number of tables (of given arity) for which a
/// 0/1-valued body evaluates to 1 — a second-order counting quantifier,
/// the basic operation of Wagner's counting hierarchy.
pub fn count_relations(
    db: &FunctionalDatabase,
    var: &str,
    arity: usize,
    body: &SoTerm,
) -> Result<BigRational, TermError> {
    SoTerm::MultisetRel {
        op: MultisetOp::Sum,
        var: var.to_string(),
        arity,
        body: Box::new(body.clone()),
    }
    .eval(db, &HashMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::ROp;
    use crate::unreliable::EntryDistribution;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_int(n).div_ref(&BigRational::from_int(d as i64))
    }

    fn db2() -> FunctionalDatabase {
        let mut db = FunctionalDatabase::new(2);
        db.add_function_values("f", 1, vec![r(1, 1), r(2, 1)]);
        db
    }

    /// Σ_S 1 over unary S on |A| = 2: there are 2² = 4 relations.
    #[test]
    fn counting_all_relations() {
        let t = SoTerm::MultisetRel {
            op: MultisetOp::Count,
            var: "S".into(),
            arity: 1,
            body: Box::new(SoTerm::First(MTerm::constant(0, 1))),
        };
        assert_eq!(t.eval(&db2(), &HashMap::new()).unwrap(), r(4, 1));
    }

    /// Σ_S (Σ_x S(x)) = Σ over all subsets of their sizes = n·2^{n−1}.
    #[test]
    fn sum_of_subset_sizes() {
        let t = SoTerm::MultisetRel {
            op: MultisetOp::Sum,
            var: "S".into(),
            arity: 1,
            body: Box::new(SoTerm::First(MTerm::multiset(
                MultisetOp::Sum,
                ["x"],
                MTerm::func("S", ["x"]),
            ))),
        };
        // n = 2: sizes 0+1+1+2 = 4 = 2·2^1.
        assert_eq!(t.eval(&db2(), &HashMap::new()).unwrap(), r(4, 1));
    }

    /// max_S Σ_x S(x)·f(x) — the maximum-weight subset: takes everything
    /// positive, here f ≥ 0 so the full set: 1 + 2 = 3.
    #[test]
    fn max_weight_subset() {
        let t = SoTerm::MultisetRel {
            op: MultisetOp::Max,
            var: "S".into(),
            arity: 1,
            body: Box::new(SoTerm::First(MTerm::multiset(
                MultisetOp::Sum,
                ["x"],
                MTerm::apply(ROp::Mul, [MTerm::func("S", ["x"]), MTerm::func("f", ["x"])]),
            ))),
        };
        assert_eq!(t.eval(&db2(), &HashMap::new()).unwrap(), r(3, 1));
    }

    /// A second-order *counting quantifier*: how many subsets S have
    /// Σ_x S(x)·f(x) ≥ 2?  Subsets of {f=1, f=2}: {2}, {1,2} → 2.
    #[test]
    fn counting_quantifier() {
        let weight = SoTerm::First(MTerm::multiset(
            MultisetOp::Sum,
            ["x"],
            MTerm::apply(ROp::Mul, [MTerm::func("S", ["x"]), MTerm::func("f", ["x"])]),
        ));
        let indicator = SoTerm::Apply(
            ROp::CharLe,
            vec![SoTerm::First(MTerm::constant(2, 1)), weight],
        );
        let count = count_relations(&db2(), "S", 1, &indicator).unwrap();
        assert_eq!(count, r(2, 1));
    }

    #[test]
    fn so_reliability_of_max_subset_sum() {
        // f(1) ∈ {2 w.p. 1/2, 0 w.p. 1/2}: the SO query
        // max_S Σ S(x)f(x) changes (3 → 1) iff the entry flips: H = 1/2.
        let mut ud = UnreliableFunctionalDatabase::reliable(db2());
        ud.set_distribution(
            "f",
            &[1],
            EntryDistribution::new(vec![
                (r(2, 1), BigRational::from_ratio(1, 2)),
                (r(0, 1), BigRational::from_ratio(1, 2)),
            ])
            .unwrap(),
        );
        let t = SoTerm::MultisetRel {
            op: MultisetOp::Max,
            var: "S".into(),
            arity: 1,
            body: Box::new(SoTerm::First(MTerm::multiset(
                MultisetOp::Sum,
                ["x"],
                MTerm::apply(ROp::Mul, [MTerm::func("S", ["x"]), MTerm::func("f", ["x"])]),
            ))),
        };
        let rep = so_reliability(&ud, &t).unwrap();
        assert_eq!(rep.expected_error, BigRational::from_ratio(1, 2));
        assert_eq!(rep.reliability, BigRational::from_ratio(1, 2));
    }

    #[test]
    #[should_panic(expected = "exceeds the guard")]
    fn guard_enforced() {
        let big = FunctionalDatabase::new(5);
        let t = SoTerm::MultisetRel {
            op: MultisetOp::Count,
            var: "S".into(),
            arity: 2, // 25 entries > guard
            body: Box::new(SoTerm::First(MTerm::constant(0, 1))),
        };
        let _ = t.eval(&big, &HashMap::new());
    }

    #[test]
    #[should_panic(expected = "shadows")]
    fn shadowing_rejected() {
        let t = SoTerm::MultisetRel {
            op: MultisetOp::Count,
            var: "f".into(), // collides with the database function
            arity: 1,
            body: Box::new(SoTerm::First(MTerm::constant(0, 1))),
        };
        let _ = t.eval(&db2(), &HashMap::new());
    }
}
