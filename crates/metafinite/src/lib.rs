//! Metafinite (functional) databases with aggregates — Section 6 of the
//! paper.
//!
//! A functional database over an interpreted structure `ℜ` is a pair
//! `𝔄 = (A, ℱ)`: a finite set `A` and finitely many functions
//! `f : A^k → R`. Queries are terms built from the database functions,
//! the interpreted operations of `ℜ`, and *multiset operations*
//! (`Σ`, `Π`, `min`, `max`, …) binding first-order variables — the
//! formalization of SQL-style aggregates. Here `ℜ` is the field of
//! rationals (exact `BigRational` arithmetic) with the comparison
//! characteristic functions and the multiset operations
//! `Σ, Π, min, max, count, avg`.
//!
//! An *unreliable functional database* (Definition 6.1) assigns to every
//! entry `f(ā)` a finite-support probability distribution over values
//! (consistency `Σ_r ν(f(ā) = r) = 1` is enforced). The reliability
//! results of Theorem 6.2 are implemented in [`reliability`]:
//! quantifier-free terms in polynomial time, first-order (aggregate)
//! terms by exact weighted world enumeration, plus Monte-Carlo
//! estimation.

pub mod definability;
pub mod fdb;
pub mod parser;
pub mod reliability;
pub mod second_order;
pub mod term;
pub mod unreliable;

pub use fdb::{FunctionTable, FunctionalDatabase};
pub use second_order::SoTerm;
pub use term::{MTerm, MultisetOp, ROp};
pub use unreliable::{EntryDistribution, UnreliableFunctionalDatabase};
