//! The term query language over functional databases.
//!
//! Quantifier-free terms are the closure of the database functions
//! `f(x̄)` and rational constants under the interpreted operations of
//! `ℜ`; first-order terms additionally close under multiset operations
//! `Op_y T(x̄, y)` binding first-order variables — the metafinite
//! generalization of quantifiers (`max`/`min` generalize `∃`/`∀`, as the
//! paper notes; `Σ` is SQL's `SUM`, etc.).

use crate::fdb::FunctionalDatabase;
use qrel_arith::BigRational;
use std::collections::HashMap;
use std::fmt;

/// Interpreted operations of `ℜ = (ℚ, …)`. Comparisons are
/// characteristic functions into `{0, 1}` (the paper requires 0, 1 and
/// the Boolean operations to be available).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ROp {
    Add,
    Sub,
    Mul,
    Neg,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
    /// Characteristic function of equality: `1` if equal else `0`.
    CharEq,
    /// Characteristic function of `<`.
    CharLt,
    /// Characteristic function of `≤`.
    CharLe,
}

impl ROp {
    pub fn arity(self) -> usize {
        match self {
            ROp::Neg => 1,
            _ => 2,
        }
    }

    pub fn apply(self, args: &[BigRational]) -> BigRational {
        debug_assert_eq!(args.len(), self.arity());
        let one = BigRational::one;
        let zero = BigRational::zero;
        match self {
            ROp::Add => args[0].add_ref(&args[1]),
            ROp::Sub => args[0].sub_ref(&args[1]),
            ROp::Mul => args[0].mul_ref(&args[1]),
            ROp::Neg => args[0].neg_ref(),
            ROp::Min => {
                if args[0] <= args[1] {
                    args[0].clone()
                } else {
                    args[1].clone()
                }
            }
            ROp::Max => {
                if args[0] >= args[1] {
                    args[0].clone()
                } else {
                    args[1].clone()
                }
            }
            ROp::CharEq => {
                if args[0] == args[1] {
                    one()
                } else {
                    zero()
                }
            }
            ROp::CharLt => {
                if args[0] < args[1] {
                    one()
                } else {
                    zero()
                }
            }
            ROp::CharLe => {
                if args[0] <= args[1] {
                    one()
                } else {
                    zero()
                }
            }
        }
    }
}

/// Multiset operations over `{T(ā, b) : b ∈ A^m}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultisetOp {
    Sum,
    Prod,
    Min,
    Max,
    /// Number of elements (= `Σ 1`, provided for convenience).
    Count,
    /// Arithmetic mean.
    Avg,
}

/// A term of the metafinite query language.
#[derive(Debug, Clone, PartialEq)]
pub enum MTerm {
    /// A rational constant.
    Const(BigRational),
    /// A first-order variable used as… no: variables only index
    /// functions; a bare variable is not a term (they range over `A`,
    /// not `R`). Use `Func` to read values.
    /// Database function application `f(x̄)` (arguments are variables).
    Func { name: String, args: Vec<String> },
    /// Interpreted operation application.
    Apply(ROp, Vec<MTerm>),
    /// `Op_{ȳ} T` — multiset operation binding the listed variables.
    Multiset {
        op: MultisetOp,
        vars: Vec<String>,
        body: Box<MTerm>,
    },
}

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermError {
    UnknownFunction(String),
    ArityMismatch {
        function: String,
        expected: usize,
        got: usize,
    },
    UnboundVariable(String),
    /// `min`/`max`/`avg` over an empty multiset (empty universe).
    EmptyMultiset,
}

impl fmt::Display for TermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermError::UnknownFunction(n) => write!(f, "unknown function {n:?}"),
            TermError::ArityMismatch {
                function,
                expected,
                got,
            } => {
                write!(
                    f,
                    "function {function:?} expects {expected} arguments, got {got}"
                )
            }
            TermError::UnboundVariable(v) => write!(f, "unbound variable {v:?}"),
            TermError::EmptyMultiset => write!(f, "min/max/avg over an empty multiset"),
        }
    }
}

impl std::error::Error for TermError {}

impl MTerm {
    pub fn constant(n: i64, d: u64) -> MTerm {
        MTerm::Const(BigRational::from_ratio(n, d))
    }

    pub fn func(name: &str, args: impl IntoIterator<Item = &'static str>) -> MTerm {
        MTerm::Func {
            name: name.to_string(),
            args: args.into_iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn apply(op: ROp, args: impl IntoIterator<Item = MTerm>) -> MTerm {
        MTerm::Apply(op, args.into_iter().collect())
    }

    pub fn multiset(
        op: MultisetOp,
        vars: impl IntoIterator<Item = &'static str>,
        body: MTerm,
    ) -> MTerm {
        MTerm::Multiset {
            op,
            vars: vars.into_iter().map(|s| s.to_string()).collect(),
            body: Box::new(body),
        }
    }

    /// Free variables (sorted).
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out.into_iter().collect()
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut std::collections::BTreeSet<String>) {
        match self {
            MTerm::Const(_) => {}
            MTerm::Func { args, .. } => {
                for a in args {
                    if !bound.contains(a) {
                        out.insert(a.clone());
                    }
                }
            }
            MTerm::Apply(_, ts) => {
                for t in ts {
                    t.collect_free(bound, out);
                }
            }
            MTerm::Multiset { vars, body, .. } => {
                let depth = bound.len();
                bound.extend(vars.iter().cloned());
                body.collect_free(bound, out);
                bound.truncate(depth);
            }
        }
    }

    /// True iff the term uses no multiset operations (quantifier-free in
    /// the paper's sense).
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            MTerm::Const(_) | MTerm::Func { .. } => true,
            MTerm::Apply(_, ts) => ts.iter().all(|t| t.is_quantifier_free()),
            MTerm::Multiset { .. } => false,
        }
    }

    /// Evaluate on a functional database under variable bindings.
    pub fn eval(
        &self,
        db: &FunctionalDatabase,
        env: &HashMap<String, u32>,
    ) -> Result<BigRational, TermError> {
        match self {
            MTerm::Const(c) => Ok(c.clone()),
            MTerm::Func { name, args } => {
                let table = db
                    .function(name)
                    .ok_or_else(|| TermError::UnknownFunction(name.clone()))?;
                if table.arity() != args.len() {
                    return Err(TermError::ArityMismatch {
                        function: name.clone(),
                        expected: table.arity(),
                        got: args.len(),
                    });
                }
                let tuple: Vec<u32> = args
                    .iter()
                    .map(|a| {
                        env.get(a)
                            .copied()
                            .ok_or_else(|| TermError::UnboundVariable(a.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                Ok(db.value(name, &tuple).clone())
            }
            MTerm::Apply(op, ts) => {
                let args: Vec<BigRational> = ts
                    .iter()
                    .map(|t| t.eval(db, env))
                    .collect::<Result<_, _>>()?;
                assert_eq!(args.len(), op.arity(), "operator arity mismatch");
                Ok(op.apply(&args))
            }
            MTerm::Multiset { op, vars, body } => {
                let n = db.size() as u32;
                let m = vars.len();
                let mut env2 = env.clone();
                let mut values: Vec<BigRational> = Vec::new();
                let mut tuple = vec![0u32; m];
                'outer: loop {
                    for (v, e) in vars.iter().zip(tuple.iter()) {
                        env2.insert(v.clone(), *e);
                    }
                    if n > 0 || m == 0 {
                        values.push(body.eval(db, &env2)?);
                    }
                    // Increment base-n counter (last fastest); m = 0 runs once.
                    if m == 0 || n == 0 {
                        break;
                    }
                    let mut i = m;
                    loop {
                        if i == 0 {
                            break 'outer;
                        }
                        i -= 1;
                        if tuple[i] + 1 < n {
                            tuple[i] += 1;
                            for t in tuple.iter_mut().skip(i + 1) {
                                *t = 0;
                            }
                            break;
                        }
                    }
                }
                reduce_multiset(*op, values)
            }
        }
    }
}

fn reduce_multiset(op: MultisetOp, values: Vec<BigRational>) -> Result<BigRational, TermError> {
    match op {
        MultisetOp::Sum => Ok(values
            .iter()
            .fold(BigRational::zero(), |acc, v| acc.add_ref(v))),
        MultisetOp::Prod => Ok(values
            .iter()
            .fold(BigRational::one(), |acc, v| acc.mul_ref(v))),
        MultisetOp::Count => Ok(BigRational::from_int(values.len() as i64)),
        MultisetOp::Min => values.into_iter().min().ok_or(TermError::EmptyMultiset),
        MultisetOp::Max => values.into_iter().max().ok_or(TermError::EmptyMultiset),
        MultisetOp::Avg => {
            if values.is_empty() {
                return Err(TermError::EmptyMultiset);
            }
            let count = BigRational::from_int(values.len() as i64);
            let sum = values
                .iter()
                .fold(BigRational::zero(), |acc, v| acc.add_ref(v));
            Ok(sum.div_ref(&count))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn salary_db() -> FunctionalDatabase {
        let mut db = FunctionalDatabase::new(4);
        db.add_function_values(
            "salary",
            1,
            vec![r(1000, 1), r(2000, 1), r(1500, 1), r(500, 1)],
        );
        db.add_function_values("dept", 1, vec![r(1, 1), r(1, 1), r(2, 1), r(2, 1)]);
        db
    }

    fn ev(t: &MTerm) -> BigRational {
        t.eval(&salary_db(), &HashMap::new()).unwrap()
    }

    #[test]
    fn quantifier_free_terms() {
        let db = salary_db();
        let mut env = HashMap::new();
        env.insert("x".to_string(), 1u32);
        let t = MTerm::apply(
            ROp::Add,
            [MTerm::func("salary", ["x"]), MTerm::constant(100, 1)],
        );
        assert!(t.is_quantifier_free());
        assert_eq!(t.eval(&db, &env).unwrap(), r(2100, 1));
    }

    #[test]
    fn aggregates() {
        // Σ_x salary(x) = 5000.
        let total = MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::func("salary", ["x"]));
        assert!(!total.is_quantifier_free());
        assert_eq!(ev(&total), r(5000, 1));
        // max_x salary(x) = 2000, min = 500, avg = 1250, count = 4.
        assert_eq!(
            ev(&MTerm::multiset(
                MultisetOp::Max,
                ["x"],
                MTerm::func("salary", ["x"])
            )),
            r(2000, 1)
        );
        assert_eq!(
            ev(&MTerm::multiset(
                MultisetOp::Min,
                ["x"],
                MTerm::func("salary", ["x"])
            )),
            r(500, 1)
        );
        assert_eq!(
            ev(&MTerm::multiset(
                MultisetOp::Avg,
                ["x"],
                MTerm::func("salary", ["x"])
            )),
            r(1250, 1)
        );
        assert_eq!(
            ev(&MTerm::multiset(
                MultisetOp::Count,
                ["x"],
                MTerm::constant(1, 1)
            )),
            r(4, 1)
        );
    }

    #[test]
    fn filtered_aggregate_via_characteristic_function() {
        // SQL: SELECT SUM(salary) WHERE dept = 2
        //  ⇒ Σ_x salary(x) · χ[dept(x) = 2] = 1500 + 500.
        let t = MTerm::multiset(
            MultisetOp::Sum,
            ["x"],
            MTerm::apply(
                ROp::Mul,
                [
                    MTerm::func("salary", ["x"]),
                    MTerm::apply(
                        ROp::CharEq,
                        [MTerm::func("dept", ["x"]), MTerm::constant(2, 1)],
                    ),
                ],
            ),
        );
        assert_eq!(ev(&t), r(2000, 1));
    }

    #[test]
    fn nested_aggregates() {
        // max_x Σ_y χ[dept(x) = dept(y)] — size of the largest department.
        let t = MTerm::multiset(
            MultisetOp::Max,
            ["x"],
            MTerm::multiset(
                MultisetOp::Sum,
                ["y"],
                MTerm::apply(
                    ROp::CharEq,
                    [MTerm::func("dept", ["x"]), MTerm::func("dept", ["y"])],
                ),
            ),
        );
        assert_eq!(ev(&t), r(2, 1));
    }

    #[test]
    fn multi_variable_multiset() {
        // Σ_{x,y} 1 = n² = 16.
        let t = MTerm::multiset(MultisetOp::Count, ["x", "y"], MTerm::constant(0, 1));
        assert_eq!(ev(&t), r(16, 1));
    }

    #[test]
    fn free_vars_and_shadowing() {
        let t = MTerm::multiset(
            MultisetOp::Sum,
            ["y"],
            MTerm::apply(
                ROp::Add,
                [MTerm::func("salary", ["x"]), MTerm::func("salary", ["y"])],
            ),
        );
        assert_eq!(t.free_vars(), vec!["x".to_string()]);
    }

    #[test]
    fn rops() {
        assert_eq!(ROp::Sub.apply(&[r(1, 2), r(1, 3)]), r(1, 6));
        assert_eq!(ROp::Neg.apply(&[r(1, 2)]), r(-1, 2));
        assert_eq!(ROp::Min.apply(&[r(1, 2), r(1, 3)]), r(1, 3));
        assert_eq!(ROp::Max.apply(&[r(1, 2), r(1, 3)]), r(1, 2));
        assert_eq!(ROp::CharLt.apply(&[r(1, 3), r(1, 2)]), r(1, 1));
        assert_eq!(ROp::CharLe.apply(&[r(1, 2), r(1, 2)]), r(1, 1));
        assert_eq!(ROp::CharEq.apply(&[r(1, 2), r(1, 3)]), r(0, 1));
    }

    #[test]
    fn errors() {
        let db = salary_db();
        let env = HashMap::new();
        assert!(matches!(
            MTerm::func("missing", ["x"]).eval(&db, &env),
            Err(TermError::UnknownFunction(_))
        ));
        assert!(matches!(
            MTerm::func("salary", ["x"]).eval(&db, &env),
            Err(TermError::UnboundVariable(_))
        ));
        assert!(matches!(
            MTerm::Func {
                name: "salary".into(),
                args: vec![]
            }
            .eval(&db, &env),
            Err(TermError::ArityMismatch { .. })
        ));
        let empty = FunctionalDatabase::new(0);
        assert!(matches!(
            MTerm::multiset(MultisetOp::Max, ["x"], MTerm::constant(1, 1)).eval(&empty, &env),
            Err(TermError::EmptyMultiset)
        ));
        // Σ over an empty universe is 0, not an error.
        assert_eq!(
            MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::constant(1, 1))
                .eval(&empty, &env)
                .unwrap(),
            BigRational::zero()
        );
    }
}
