//! Definability of reliability (the closing remark of Section 6).
//!
//! The paper notes (citing Grädel–Gurevich, *Metafinite Model Theory*)
//! that the **reliability of a quantifier-free relational query is
//! itself a first-order metafinite query**: encode the unreliable
//! relational database `(𝔄, μ)` as a functional database carrying, per
//! relation `R`, the characteristic function `χ_R : A^k → {0,1}` of the
//! observed relation and the probability function `ν_R : A^k → ℚ`;
//! then `H_ψ` is expressed by a fixed term using `Σ` and arithmetic.
//!
//! This module implements that translation *constructively*:
//! [`encode_relational`] builds the functional database, and
//! [`expected_error_term`] compiles a quantifier-free relational formula
//! `ψ(x̄)` into a metafinite term `T` with `T^{enc(𝔇)} = H_ψ(𝔇)` exactly
//! — verified against the Proposition 3.1 engine in the tests.
//!
//! The subtlety is atom coincidence: two syntactic atoms of `ψ(ā)` may
//! denote the *same* fact for some tuples `ā` (e.g. `S(x) ∧ S(y)` at
//! `x = y`), and then their truth values are not independent. The
//! compiled term enumerates the finitely many *coincidence patterns*
//! (partitions of same-relation atoms), guards each with characteristic
//! functions of the defining (in)equalities, and within a pattern treats
//! each class as one fact — exactly how the definability proof handles
//! it.

use crate::fdb::FunctionalDatabase;
use crate::term::{MTerm, MultisetOp, ROp};
use qrel_arith::BigRational;
use qrel_db::Database;
use qrel_logic::{Formula, Term};
use qrel_prob::UnreliableDatabase;

/// Encode `(𝔄, μ)` as a functional database with `chi_R` and `nu_R`
/// functions per relation symbol `R`.
pub fn encode_relational(ud: &UnreliableDatabase) -> FunctionalDatabase {
    let db: &Database = ud.observed();
    let n = db.size();
    let mut out = FunctionalDatabase::new(n);
    for (rel_ix, sym) in db.vocabulary().symbols().iter().enumerate() {
        let arity = sym.arity();
        let mut chi = Vec::with_capacity(n.pow(arity as u32));
        let mut nu = Vec::with_capacity(n.pow(arity as u32));
        for tuple in db.universe().tuples(arity) {
            let fact = qrel_db::Fact::new(rel_ix, tuple);
            chi.push(if db.holds(&fact) {
                BigRational::one()
            } else {
                BigRational::zero()
            });
            nu.push(ud.nu(&fact));
        }
        out.add_function_values(&format!("chi_{}", sym.name()), arity, chi);
        out.add_function_values(&format!("nu_{}", sym.name()), arity, nu);
    }
    out
}

/// A syntactic atom of the quantifier-free formula.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AtomRef {
    rel: String,
    args: Vec<Term>,
}

/// Collect the distinct syntactic atoms (relation + argument terms).
fn collect_atoms(f: &Formula, out: &mut Vec<AtomRef>) {
    match f {
        Formula::Atom { rel, args } => {
            let a = AtomRef {
                rel: rel.clone(),
                args: args.clone(),
            };
            if !out.contains(&a) {
                out.push(a);
            }
        }
        Formula::Not(g) => collect_atoms(g, out),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                collect_atoms(g, out);
            }
        }
        Formula::True | Formula::False | Formula::Eq(..) => {}
        _ => panic!("expected_error_term requires a quantifier-free formula"),
    }
}

/// Numeric term for a variable-or-constant argument: variables stay
/// variables (they index functions); constants are not supported in this
/// translation (the paper's setting has pure relational queries).
fn arg_var(t: &Term) -> &str {
    match t {
        Term::Var(v) => v,
        Term::Const(_) => {
            panic!("definability translation supports variable arguments only")
        }
    }
}

/// χ[args of a = args of b] as a product of per-position CharEq over a
/// helper identity function `id : A → ℚ` (included by the encoder? No —
/// equality of *elements* is expressed through any injective function;
/// we use the guaranteed-present `idx` function added by the encoder).
fn args_equal_term(a: &AtomRef, b: &AtomRef) -> MTerm {
    debug_assert_eq!(a.args.len(), b.args.len());
    let mut factors = Vec::new();
    for (ta, tb) in a.args.iter().zip(&b.args) {
        factors.push(MTerm::apply(
            ROp::CharEq,
            [
                MTerm::Func {
                    name: "idx".into(),
                    args: vec![arg_var(ta).to_string()],
                },
                MTerm::Func {
                    name: "idx".into(),
                    args: vec![arg_var(tb).to_string()],
                },
            ],
        ));
    }
    product(factors)
}

fn product(mut factors: Vec<MTerm>) -> MTerm {
    match factors.len() {
        0 => MTerm::constant(1, 1),
        1 => factors.pop().unwrap(),
        _ => {
            let mut acc = factors.pop().unwrap();
            while let Some(f) = factors.pop() {
                acc = MTerm::apply(ROp::Mul, [f, acc]);
            }
            acc
        }
    }
}

fn one_minus(t: MTerm) -> MTerm {
    MTerm::apply(ROp::Sub, [MTerm::constant(1, 1), t])
}

/// The Boolean value of `ψ` (0/1 term) when atom `i` takes the value of
/// term `values[i]` (each values[i] is a 0/1-valued term).
fn formula_value(f: &Formula, atoms: &[AtomRef], values: &[MTerm]) -> MTerm {
    match f {
        Formula::True => MTerm::constant(1, 1),
        Formula::False => MTerm::constant(0, 1),
        Formula::Eq(a, b) => MTerm::apply(
            ROp::CharEq,
            [
                MTerm::Func {
                    name: "idx".into(),
                    args: vec![arg_var(a).to_string()],
                },
                MTerm::Func {
                    name: "idx".into(),
                    args: vec![arg_var(b).to_string()],
                },
            ],
        ),
        Formula::Atom { rel, args } => {
            let a = AtomRef {
                rel: rel.clone(),
                args: args.clone(),
            };
            let i = atoms.iter().position(|x| x == &a).expect("collected atom");
            values[i].clone()
        }
        Formula::Not(g) => one_minus(formula_value(g, atoms, values)),
        Formula::And(gs) => product(gs.iter().map(|g| formula_value(g, atoms, values)).collect()),
        Formula::Or(gs) => {
            // a ∨ b = 1 − (1−a)(1−b), n-ary.
            one_minus(product(
                gs.iter()
                    .map(|g| one_minus(formula_value(g, atoms, values)))
                    .collect(),
            ))
        }
        _ => unreachable!("quantifier-free checked earlier"),
    }
}

/// Enumerate partitions of `0..m` where `i` and `j` may share a block
/// only if `compatible(i, j)`.
fn partitions(m: usize, compatible: &dyn Fn(usize, usize) -> bool) -> Vec<Vec<Vec<usize>>> {
    let mut out = Vec::new();
    let mut current: Vec<Vec<usize>> = Vec::new();
    fn go(
        i: usize,
        m: usize,
        compatible: &dyn Fn(usize, usize) -> bool,
        current: &mut Vec<Vec<usize>>,
        out: &mut Vec<Vec<Vec<usize>>>,
    ) {
        if i == m {
            out.push(current.clone());
            return;
        }
        for b in 0..current.len() {
            if current[b].iter().all(|&j| compatible(i, j)) {
                current[b].push(i);
                go(i + 1, m, compatible, current, out);
                current[b].pop();
            }
        }
        current.push(vec![i]);
        go(i + 1, m, compatible, current, out);
        current.pop();
    }
    go(0, m, compatible, &mut current, &mut out);
    out
}

/// Compile a quantifier-free relational formula into a metafinite term
/// computing `H_ψ` on [`encode_relational`]'s output (plus the `idx`
/// identity function, which [`encode_with_idx`] adds).
///
/// # Panics
/// Panics if the formula is not quantifier-free, uses constants, or
/// `free_vars` does not cover its free variables.
pub fn expected_error_term(formula: &Formula, free_vars: &[String]) -> MTerm {
    assert!(
        formula.is_quantifier_free(),
        "formula must be quantifier-free"
    );
    {
        let mut sorted = free_vars.to_vec();
        sorted.sort();
        assert_eq!(sorted, formula.free_vars(), "free-variable order mismatch");
    }
    let mut atoms = Vec::new();
    collect_atoms(formula, &mut atoms);
    let m = atoms.len();

    // Observed truth values: χ_R(args) per atom.
    let observed: Vec<MTerm> = atoms
        .iter()
        .map(|a| MTerm::Func {
            name: format!("chi_{}", a.rel),
            args: a.args.iter().map(|t| arg_var(t).to_string()).collect(),
        })
        .collect();
    let observed_value = formula_value(formula, &atoms, &observed);

    // Coincidence patterns: same-relation atoms may collapse.
    let compat = |i: usize, j: usize| atoms[i].rel == atoms[j].rel;
    let all_partitions = partitions(m, &compat);

    let mut pattern_terms: Vec<MTerm> = Vec::new();
    for part in &all_partitions {
        // Guard: within a block all argument tuples equal; across blocks
        // of the same relation, argument tuples differ.
        let mut guard_factors: Vec<MTerm> = Vec::new();
        for block in part {
            for w in block.windows(2) {
                guard_factors.push(args_equal_term(&atoms[w[0]], &atoms[w[1]]));
            }
        }
        for (bi, block_i) in part.iter().enumerate() {
            for block_j in part.iter().skip(bi + 1) {
                let (i, j) = (block_i[0], block_j[0]);
                if atoms[i].rel == atoms[j].rel {
                    guard_factors.push(one_minus(args_equal_term(&atoms[i], &atoms[j])));
                }
            }
        }
        let guard = product(guard_factors);

        // Error probability under this pattern: sum over truth
        // assignments to the blocks.
        let num_blocks = part.len();
        let mut err_sum: Vec<MTerm> = Vec::new();
        for mask in 0u32..(1 << num_blocks) {
            // Atom values induced by the block assignment.
            let mut values = vec![MTerm::constant(0, 1); m];
            for (b, block) in part.iter().enumerate() {
                let v = (mask >> b) & 1 == 1;
                for &i in block {
                    values[i] = MTerm::constant(v as i64, 1);
                }
            }
            let actual_value = formula_value(formula, &atoms, &values);
            // |actual − observed| for 0/1 quantities:
            // actual·(1−obs) + (1−actual)·obs.
            let disagree = MTerm::apply(
                ROp::Add,
                [
                    MTerm::apply(
                        ROp::Mul,
                        [actual_value.clone(), one_minus(observed_value.clone())],
                    ),
                    MTerm::apply(ROp::Mul, [one_minus(actual_value), observed_value.clone()]),
                ],
            );
            // Probability of the block assignment: ∏ ν or (1−ν) on block
            // representatives.
            let mut prob_factors = Vec::new();
            for (b, block) in part.iter().enumerate() {
                let rep = &atoms[block[0]];
                let nu = MTerm::Func {
                    name: format!("nu_{}", rep.rel),
                    args: rep.args.iter().map(|t| arg_var(t).to_string()).collect(),
                };
                prob_factors.push(if (mask >> b) & 1 == 1 {
                    nu
                } else {
                    one_minus(nu)
                });
            }
            err_sum.push(MTerm::apply(ROp::Mul, [disagree, product(prob_factors)]));
        }
        let err = err_sum
            .into_iter()
            .reduce(|a, b| MTerm::apply(ROp::Add, [a, b]))
            .unwrap_or(MTerm::constant(0, 1));
        pattern_terms.push(MTerm::apply(ROp::Mul, [guard, err]));
    }

    let per_tuple = pattern_terms
        .into_iter()
        .reduce(|a, b| MTerm::apply(ROp::Add, [a, b]))
        .unwrap_or(MTerm::constant(0, 1));

    // H = Σ_{x̄} per_tuple — a single multiset Sum over the free vars.
    if free_vars.is_empty() {
        per_tuple
    } else {
        MTerm::Multiset {
            op: MultisetOp::Sum,
            vars: free_vars.to_vec(),
            body: Box::new(per_tuple),
        }
    }
}

/// Encode and add the `idx : A → ℚ` identity function (element `i ↦ i`)
/// used by the equality guards.
pub fn encode_with_idx(ud: &UnreliableDatabase) -> FunctionalDatabase {
    let mut out = encode_relational(ud);
    let n = out.size();
    out.add_function_values(
        "idx",
        1,
        (0..n).map(|i| BigRational::from_int(i as i64)).collect(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_core::quantifier_free::qf_reliability;
    use qrel_db::{DatabaseBuilder, Fact};
    use qrel_logic::parser::parse_formula;
    use std::collections::HashMap;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn setup() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .tuples("S", [vec![0], vec![2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 4)).unwrap();
        ud.set_error(&Fact::new(0, vec![2, 2]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(1, vec![0]), r(1, 5)).unwrap();
        ud.set_error(&Fact::new(1, vec![1]), r(2, 7)).unwrap();
        ud
    }

    fn check(src: &str, free: &[&str]) {
        let ud = setup();
        let f = parse_formula(src).unwrap();
        let free: Vec<String> = free.iter().map(|s| s.to_string()).collect();
        // Reference: the Prop 3.1 engine.
        let reference = qf_reliability(&ud, &f, &free).unwrap().expected_error;
        // Definability route: compile to a metafinite term, evaluate on
        // the encoded functional database.
        let term = expected_error_term(&f, &free);
        let fdb = encode_with_idx(&ud);
        let via_term = term.eval(&fdb, &HashMap::new()).unwrap();
        assert_eq!(via_term, reference, "query {src}");
    }

    #[test]
    fn single_atom() {
        check("S(x)", &["x"]);
        check("E(x,y)", &["x", "y"]);
    }

    #[test]
    fn boolean_connectives() {
        check("S(x) & E(x,y)", &["x", "y"]);
        check("S(x) | !S(y)", &["x", "y"]);
        check("!(S(x) & E(x,x))", &["x"]);
    }

    #[test]
    fn coincidence_patterns_matter() {
        // S(x) ∧ S(y): at x = y the two atoms are the SAME fact — a naive
        // independent-product term would get this wrong; the pattern
        // guards must handle it.
        check("S(x) & S(y)", &["x", "y"]);
        check("S(x) | S(y)", &["x", "y"]);
        check("E(x,y) & E(y,x)", &["x", "y"]);
    }

    #[test]
    fn equalities_in_formula() {
        check("S(x) & x = y", &["x", "y"]);
        check("E(x,y) & x != y", &["x", "y"]);
    }

    #[test]
    fn encoder_shape() {
        let ud = setup();
        let fdb = encode_with_idx(&ud);
        assert_eq!(fdb.size(), 3);
        // chi_E, nu_E, chi_S, nu_S, idx.
        assert_eq!(fdb.function_names().count(), 5);
        assert_eq!(fdb.value("chi_E", &[0, 1]), &BigRational::one());
        assert_eq!(fdb.value("chi_E", &[1, 0]), &BigRational::zero());
        assert_eq!(fdb.value("nu_E", &[0, 1]), &r(3, 4));
        assert_eq!(fdb.value("nu_E", &[2, 2]), &r(1, 3));
        assert_eq!(fdb.value("idx", &[2]), &r(2, 1));
    }

    #[test]
    fn partition_enumeration() {
        // 3 mutually compatible atoms: Bell(3) = 5 partitions.
        let parts = partitions(3, &|_, _| true);
        assert_eq!(parts.len(), 5);
        // No compatibility: only the discrete partition.
        let parts2 = partitions(3, &|_, _| false);
        assert_eq!(parts2.len(), 1);
        assert_eq!(parts2[0].len(), 3);
    }

    #[test]
    fn term_is_first_order_metafinite() {
        // The compiled term uses only Σ over free variables — i.e. it is
        // a first-order metafinite query, as the paper's remark states.
        let f = parse_formula("S(x) & E(x,y)").unwrap();
        let t = expected_error_term(&f, &["x".to_string(), "y".to_string()]);
        match &t {
            MTerm::Multiset { op, vars, .. } => {
                assert_eq!(*op, MultisetOp::Sum);
                assert_eq!(vars.len(), 2);
            }
            _ => panic!("expected a top-level Σ"),
        }
        assert!(t.free_vars().is_empty());
    }
}
