//! Unreliable functional databases (Definition 6.1).
//!
//! Every entry `f(ā)` carries a finite-support probability distribution
//! over values: `ν(f(ā) = r)` for finitely many `r`, summing to exactly
//! 1; entries are independent. This induces finitely many possible
//! databases (at most `∏` support sizes) with efficiently computable
//! probabilities — the two properties the paper's Section 6 isolates.

use crate::fdb::FunctionalDatabase;
use qrel_arith::BigRational;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// A finite-support distribution over values for one entry.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryDistribution {
    /// `(value, probability)` pairs; probabilities positive, sum = 1,
    /// values distinct.
    support: Vec<(BigRational, BigRational)>,
}

/// Validation errors for distributions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// Probabilities do not sum to 1 (the paper's consistency condition).
    Inconsistent {
        sum: String,
    },
    NonPositiveProbability,
    DuplicateValue,
    EmptySupport,
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Inconsistent { sum } => {
                write!(f, "probabilities sum to {sum}, expected 1")
            }
            DistError::NonPositiveProbability => write!(f, "probabilities must be positive"),
            DistError::DuplicateValue => write!(f, "duplicate value in support"),
            DistError::EmptySupport => write!(f, "support must be nonempty"),
        }
    }
}

impl std::error::Error for DistError {}

impl EntryDistribution {
    /// Build and validate.
    pub fn new(support: Vec<(BigRational, BigRational)>) -> Result<Self, DistError> {
        if support.is_empty() {
            return Err(DistError::EmptySupport);
        }
        let mut sum = BigRational::zero();
        for (v, p) in &support {
            if p.is_zero() || p.is_negative() {
                return Err(DistError::NonPositiveProbability);
            }
            if support.iter().filter(|(v2, _)| v2 == v).count() > 1 {
                return Err(DistError::DuplicateValue);
            }
            sum = sum.add_ref(p);
        }
        if !sum.is_one() {
            return Err(DistError::Inconsistent {
                sum: sum.to_string(),
            });
        }
        Ok(EntryDistribution { support })
    }

    /// Point mass at a value.
    pub fn certain(value: BigRational) -> Self {
        EntryDistribution {
            support: vec![(value, BigRational::one())],
        }
    }

    pub fn support(&self) -> &[(BigRational, BigRational)] {
        &self.support
    }

    /// Number of values with positive probability.
    pub fn support_size(&self) -> usize {
        self.support.len()
    }

    pub fn is_certain(&self) -> bool {
        self.support.len() == 1
    }

    /// `ν(f(ā) = r)`.
    pub fn probability_of(&self, value: &BigRational) -> BigRational {
        self.support
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(BigRational::zero)
    }

    /// Sample a value (exact Bernoulli chain on rational cut points).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> &BigRational {
        // Sequential conditional draws keep each step an exact Bernoulli.
        let mut remaining = BigRational::one();
        for (v, p) in &self.support[..self.support.len() - 1] {
            let cond = p.div_ref(&remaining);
            if qrel_prob::sampler::bernoulli(&cond, rng) {
                return v;
            }
            remaining = remaining.sub_ref(p);
        }
        &self.support[self.support.len() - 1].0
    }
}

/// An unreliable functional database `(𝔄, ν)`.
#[derive(Debug, Clone)]
pub struct UnreliableFunctionalDatabase {
    observed: FunctionalDatabase,
    /// Distribution per entry, keyed by `(function name, rank)`; entries
    /// absent from the map are certain at their observed value.
    dists: BTreeMap<(String, usize), EntryDistribution>,
}

impl UnreliableFunctionalDatabase {
    pub fn reliable(observed: FunctionalDatabase) -> Self {
        UnreliableFunctionalDatabase {
            observed,
            dists: BTreeMap::new(),
        }
    }

    pub fn observed(&self) -> &FunctionalDatabase {
        &self.observed
    }

    /// Attach a distribution to entry `f(ā)`.
    ///
    /// # Panics
    /// Panics for unknown functions or arity mismatches.
    pub fn set_distribution(&mut self, function: &str, tuple: &[u32], dist: EntryDistribution) {
        let table = self
            .observed
            .function(function)
            .unwrap_or_else(|| panic!("unknown function {function:?}"));
        assert_eq!(
            table.arity(),
            tuple.len(),
            "arity mismatch for {function:?}"
        );
        let rank = table.rank(self.observed.size(), tuple);
        if dist.is_certain() && &dist.support()[0].0 == table.get_at(rank) {
            // Point mass at the observed value: same as no entry.
            self.dists.remove(&(function.to_string(), rank));
        } else {
            self.dists.insert((function.to_string(), rank), dist);
        }
    }

    /// Entries with genuinely random values.
    pub fn uncertain_entries(&self) -> Vec<(&str, usize, &EntryDistribution)> {
        self.dists
            .iter()
            .filter(|(_, d)| !d.is_certain())
            .map(|((f, r), d)| (f.as_str(), *r, d))
            .collect()
    }

    /// Number of possible databases with positive probability.
    pub fn world_count(&self) -> u64 {
        self.dists
            .values()
            .map(|d| d.support_size() as u64)
            .product()
    }

    /// Probability of a concrete database of the same format.
    pub fn world_probability(&self, world: &FunctionalDatabase) -> BigRational {
        assert_eq!(world.size(), self.observed.size(), "size mismatch");
        let mut p = BigRational::one();
        for (name, rank) in self.observed.entries() {
            let actual = world
                .function(&name)
                .unwrap_or_else(|| panic!("world missing function {name:?}"))
                .get_at(rank);
            let prob = match self.dists.get(&(name.clone(), rank)) {
                Some(d) => d.probability_of(actual),
                None => {
                    if actual == self.observed.function(&name).unwrap().get_at(rank) {
                        BigRational::one()
                    } else {
                        BigRational::zero()
                    }
                }
            };
            if prob.is_zero() {
                return BigRational::zero();
            }
            p = p.mul_ref(&prob);
        }
        p
    }

    /// Enumerate all possible databases with their exact probabilities.
    ///
    /// # Panics
    /// Panics beyond 2^22 worlds.
    pub fn worlds(&self) -> Vec<(FunctionalDatabase, BigRational)> {
        let count = self.world_count();
        assert!(count <= 1 << 22, "world enumeration limited to 2^22 worlds");
        let entries: Vec<(&(String, usize), &EntryDistribution)> = self.dists.iter().collect();
        let mut out = Vec::with_capacity(count as usize);
        let mut choice = vec![0usize; entries.len()];
        loop {
            let mut world = self.observed.clone();
            let mut prob = BigRational::one();
            for (i, ((name, rank), dist)) in entries.iter().enumerate() {
                let (v, p) = &dist.support()[choice[i]];
                world.function_mut(name).unwrap().set_at(*rank, v.clone());
                prob = prob.mul_ref(p);
            }
            out.push((world, prob));
            // Increment the mixed-radix counter over supports.
            let mut i = entries.len();
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if choice[i] + 1 < entries[i].1.support_size() {
                    choice[i] += 1;
                    for c in choice.iter_mut().skip(i + 1) {
                        *c = 0;
                    }
                    break;
                }
            }
        }
    }

    /// Sample a database `𝔅 ~ ν`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> FunctionalDatabase {
        let mut world = self.observed.clone();
        for ((name, rank), dist) in &self.dists {
            let v = dist.sample(rng).clone();
            world.function_mut(name).unwrap().set_at(*rank, v);
        }
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn dist(pairs: &[(i64, u64, i64, u64)]) -> EntryDistribution {
        EntryDistribution::new(
            pairs
                .iter()
                .map(|&(vn, vd, pn, pd)| (r(vn, vd), r(pn, pd)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn distribution_validation() {
        assert!(EntryDistribution::new(vec![]).is_err());
        assert!(matches!(
            EntryDistribution::new(vec![(r(1, 1), r(1, 2))]),
            Err(DistError::Inconsistent { .. })
        ));
        assert!(matches!(
            EntryDistribution::new(vec![(r(1, 1), r(1, 2)), (r(1, 1), r(1, 2))]),
            Err(DistError::DuplicateValue)
        ));
        assert!(matches!(
            EntryDistribution::new(vec![(r(1, 1), r(3, 2)), (r(2, 1), r(-1, 2))]),
            Err(DistError::NonPositiveProbability)
        ));
        assert!(EntryDistribution::new(vec![(r(5, 1), r(1, 3)), (r(6, 1), r(2, 3))]).is_ok());
    }

    fn setup() -> UnreliableFunctionalDatabase {
        let mut db = FunctionalDatabase::new(2);
        db.add_function_values("f", 1, vec![r(10, 1), r(20, 1)]);
        let mut ud = UnreliableFunctionalDatabase::reliable(db);
        // f(0) ∈ {10 w.p. 2/3, 11 w.p. 1/3}; f(1) certain.
        ud.set_distribution("f", &[0], dist(&[(10, 1, 2, 3), (11, 1, 1, 3)]));
        ud
    }

    #[test]
    fn world_enumeration_sums_to_one() {
        let ud = setup();
        assert_eq!(ud.world_count(), 2);
        let worlds = ud.worlds();
        let total = worlds
            .iter()
            .fold(BigRational::zero(), |acc, (_, p)| acc.add_ref(p));
        assert_eq!(total, BigRational::one());
        for (w, p) in &worlds {
            assert_eq!(&ud.world_probability(w), p);
        }
    }

    #[test]
    fn observed_world_probability() {
        let ud = setup();
        assert_eq!(ud.world_probability(ud.observed()), r(2, 3));
    }

    #[test]
    fn contradicting_certain_entry_has_probability_zero() {
        let ud = setup();
        let mut w = ud.observed().clone();
        w.function_mut("f").unwrap().set(2, &[1], r(999, 1));
        assert_eq!(ud.world_probability(&w), BigRational::zero());
    }

    #[test]
    fn certain_point_mass_is_removed() {
        let mut ud = setup();
        ud.set_distribution("f", &[0], EntryDistribution::certain(r(10, 1)));
        assert_eq!(ud.world_count(), 1);
        assert!(ud.uncertain_entries().is_empty());
    }

    #[test]
    fn sampling_frequencies() {
        let ud = setup();
        let mut rng = StdRng::seed_from_u64(55);
        let trials = 30_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            let w = ud.sample(&mut rng);
            if w.value("f", &[0]) == &r(11, 1) {
                hits += 1;
            }
        }
        let freq = hits as f64 / trials as f64;
        assert!((freq - 1.0 / 3.0).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn three_point_support() {
        let mut db = FunctionalDatabase::new(1);
        db.add_function_values("g", 0, vec![r(0, 1)]);
        let mut ud = UnreliableFunctionalDatabase::reliable(db);
        ud.set_distribution("g", &[], dist(&[(0, 1, 1, 2), (1, 1, 1, 4), (2, 1, 1, 4)]));
        assert_eq!(ud.world_count(), 3);
        let worlds = ud.worlds();
        assert_eq!(worlds.len(), 3);
        let total = worlds
            .iter()
            .fold(BigRational::zero(), |acc, (_, p)| acc.add_ref(p));
        assert_eq!(total, BigRational::one());
        // Sampling hits all three values.
        let mut rng = StdRng::seed_from_u64(56);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(ud.sample(&mut rng).value("g", &[]).to_string());
        }
        assert_eq!(seen.len(), 3);
    }
}
