//! Property-based tests for the metafinite layer.

use proptest::prelude::*;
use qrel_arith::BigRational;
use qrel_metafinite::reliability::{exact_reliability, qf_reliability};
use qrel_metafinite::{
    EntryDistribution, FunctionalDatabase, MTerm, MultisetOp, ROp, UnreliableFunctionalDatabase,
};

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// Random unreliable functional database: one unary function over a
/// universe of 2–3 elements, entries optionally two-point distributed.
fn ufd_strategy() -> impl Strategy<Value = UnreliableFunctionalDatabase> {
    (
        2usize..4,
        proptest::collection::vec((0i64..5, proptest::option::of(0i64..5)), 3),
    )
        .prop_map(|(n, entries)| {
            let mut db = FunctionalDatabase::new(n);
            db.add_function_values("f", 1, (0..n).map(|i| r(entries[i % 3].0, 1)).collect());
            let mut ud = UnreliableFunctionalDatabase::reliable(db);
            for i in 0..n {
                if let Some(alt) = entries[i % 3].1 {
                    let observed = r(entries[i % 3].0, 1);
                    let alt = r(alt, 1);
                    if alt != observed {
                        ud.set_distribution(
                            "f",
                            &[i as u32],
                            EntryDistribution::new(vec![(observed, r(2, 3)), (alt, r(1, 3))])
                                .unwrap(),
                        );
                    }
                }
            }
            ud
        })
}

/// A small pool of QF terms over `f`.
fn qf_term(ix: usize) -> MTerm {
    match ix % 4 {
        0 => MTerm::func("f", ["x"]),
        1 => MTerm::apply(ROp::Add, [MTerm::func("f", ["x"]), MTerm::constant(1, 1)]),
        2 => MTerm::apply(
            ROp::CharLe,
            [MTerm::func("f", ["x"]), MTerm::constant(2, 1)],
        ),
        _ => MTerm::apply(ROp::Mul, [MTerm::func("f", ["x"]), MTerm::func("f", ["x"])]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn world_probabilities_sum_to_one(ud in ufd_strategy()) {
        let total = ud
            .worlds()
            .into_iter()
            .fold(BigRational::zero(), |acc, (_, p)| acc.add_ref(&p));
        prop_assert_eq!(total, BigRational::one());
    }

    #[test]
    fn qf_fast_path_equals_enumeration(ud in ufd_strategy(), ix in 0usize..4) {
        let t = qf_term(ix);
        let free = vec!["x".to_string()];
        let fast = qf_reliability(&ud, &t, &free).unwrap();
        let slow = exact_reliability(&ud, &t, &free).unwrap();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn reliability_in_unit_interval(ud in ufd_strategy(), ix in 0usize..4) {
        let t = qf_term(ix);
        let rep = qf_reliability(&ud, &t, &["x".to_string()]).unwrap();
        prop_assert!(rep.reliability >= BigRational::zero());
        prop_assert!(rep.reliability <= BigRational::one());
    }

    #[test]
    fn aggregate_of_certain_db_fully_reliable(vals in proptest::collection::vec(0i64..100, 3)) {
        let mut db = FunctionalDatabase::new(3);
        db.add_function_values("f", 1, vals.iter().map(|&v| r(v, 1)).collect());
        let ud = UnreliableFunctionalDatabase::reliable(db);
        let agg = MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::func("f", ["x"]));
        let rep = exact_reliability(&ud, &agg, &[]).unwrap();
        prop_assert_eq!(rep.reliability, BigRational::one());
    }

    #[test]
    fn constant_term_immune_to_noise(ud in ufd_strategy()) {
        // A term that ignores the database entirely has reliability 1.
        let t = MTerm::apply(
            ROp::Add,
            [MTerm::constant(3, 1), MTerm::constant(4, 1)],
        );
        let rep = exact_reliability(&ud, &t, &[]).unwrap();
        prop_assert_eq!(rep.reliability, BigRational::one());
    }
}
