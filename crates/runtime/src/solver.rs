//! The budgeted solver: fragment-based routing plus a graceful
//! degradation ladder over every reliability method in the workspace.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use qrel_arith::BigRational;
use qrel_budget::{Budget, Exhausted, QrelError, Resource};
use qrel_core::{
    approximate_reliability_budgeted_parallel, exact_reliability_budgeted_sharded,
    qf_reliability_budgeted, ApproxOutcome, ExactOutcome, PaddingEstimator, PaddingOutcome,
    QfOutcome,
};
use qrel_count::bounds::hoeffding_samples;
use qrel_eval::{FoQuery, Query};
use qrel_logic::Fragment;
use qrel_par::{resolve_threads, run_shards_with, shard_counts, split_seed, DEFAULT_SHARDS};
use qrel_prob::{UnreliableDatabase, WorldSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use crate::report::{Confidence, Method, SolveReport, TraceStep};

/// Default cap on `2^u` below which `Method::Auto` runs the exact
/// enumeration. `2^14` worlds evaluate in well under a second for the
/// databases in `data/`.
pub const DEFAULT_MAX_EXACT_WORLDS: u64 = 1 << 14;

/// A progress event emitted by the ladder while a solve is in flight.
///
/// Events fire at the start of every rung attempt and after its
/// outcome, so an observer (the serve job scheduler, a CLI spinner)
/// can report where a long solve currently is without polling.
#[derive(Debug, Clone)]
pub struct ProgressEvent {
    /// Zero-based rung index in the ladder.
    pub rung: usize,
    /// Ladder length.
    pub of: usize,
    pub method: Method,
    /// 1-based attempt number (retries increment this).
    pub attempt: u32,
    /// `None` when the attempt starts; the trace note once it ends.
    pub note: Option<String>,
}

/// A shareable observer for [`ProgressEvent`]s.
///
/// Wraps the callback in an [`Arc`](std::sync::Arc) so [`Solver`] stays `Clone`, with a
/// manual `Debug` (closures have none). The hook runs on the solving
/// thread — keep it cheap.
#[derive(Clone)]
pub struct ProgressHook(std::sync::Arc<dyn Fn(ProgressEvent) + Send + Sync>);

impl ProgressHook {
    pub fn new(f: impl Fn(ProgressEvent) + Send + Sync + 'static) -> Self {
        ProgressHook(std::sync::Arc::new(f))
    }

    fn emit(&self, event: ProgressEvent) {
        (self.0)(event)
    }
}

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// A candidate answer produced by one ladder rung.
#[derive(Debug, Clone)]
struct Answer {
    estimate: f64,
    exact: Option<BigRational>,
    bounds: Option<(f64, f64)>,
    confidence: Confidence,
}

/// What a rung did with its budget slice.
enum Rung {
    /// Finished with a full-guarantee answer; `String` is the trace note.
    Done(Answer, String),
    /// Budget tripped; carries the partial answer (if any estimate was
    /// accumulated) for the ladder's last-resort report.
    Degraded(Option<Answer>, Exhausted),
    /// Method does not apply to this query.
    Skip(String),
}

/// The budgeted reliability solver.
///
/// Wraps every method in the workspace behind one
/// [`Solver::solve`] call: routing (for [`Method::Auto`]) follows the
/// classify-then-solve pattern — quantifier-free queries take the
/// Prop 3.1 fast path, small world counts take the Thm 4.2 exact
/// enumeration, existential/universal queries take the Cor 5.5 FPTRAS,
/// and everything else falls to the Thm 5.12 padding estimator — while
/// a tripped [`Budget`] degrades to the next-cheaper method instead of
/// failing, and a panicking rung is caught and skipped.
#[derive(Debug, Clone)]
pub struct Solver {
    method: Method,
    eps: f64,
    delta: f64,
    max_exact_worlds: u64,
    seed: u64,
    threads: Option<usize>,
    rung_retries: u32,
    progress: Option<ProgressHook>,
    plan_hint: Option<Arc<qrel_plan::Plan>>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            method: Method::Auto,
            eps: 0.1,
            delta: 0.05,
            max_exact_worlds: DEFAULT_MAX_EXACT_WORLDS,
            seed: 0x5EED,
            threads: None,
            rung_retries: MAX_RUNG_RETRIES,
            progress: None,
            plan_hint: None,
        }
    }
}

impl Solver {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Accuracy targets for the sampling rungs.
    pub fn with_accuracy(mut self, eps: f64, delta: f64) -> Self {
        assert!(
            eps > 0.0 && delta > 0.0 && delta < 1.0,
            "need ε > 0, δ ∈ (0,1)"
        );
        self.eps = eps;
        self.delta = delta;
        self
    }

    /// World-count cap under which `Method::Auto` picks the exact
    /// enumeration.
    pub fn with_max_exact_worlds(mut self, cap: u64) -> Self {
        self.max_exact_worlds = cap;
        self
    }

    /// Seed for the sampling rungs (deterministic by default).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker-thread count for the sharded engines. Unset, the
    /// `RAYON_NUM_THREADS` environment variable and then the machine's
    /// available parallelism decide. The answer never depends on this
    /// knob: every rung runs on a fixed shard count with per-shard
    /// seed-split RNGs, so any thread count reproduces `threads = 1`
    /// bit for bit (see `qrel_par`).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Retries per rung after a transient (caught-panic) failure, on
    /// top of the first attempt. Defaults to [`MAX_RUNG_RETRIES`]; `0`
    /// disables rung self-healing entirely (the E16 "before" arm).
    pub fn with_rung_retries(mut self, retries: u32) -> Self {
        self.rung_retries = retries;
        self
    }

    /// Observe [`ProgressEvent`]s while a solve is in flight (rung
    /// starts and outcomes). The hook never affects the answer.
    pub fn with_progress(mut self, hook: ProgressHook) -> Self {
        self.progress = Some(hook);
        self
    }

    /// Reuse an already-compiled safe plan for the plan rung instead of
    /// recompiling (the serve layer's plan cache passes one in). The
    /// plan must have been compiled from this solve's query.
    pub fn with_plan_hint(mut self, plan: Arc<qrel_plan::Plan>) -> Self {
        self.plan_hint = Some(plan);
        self
    }

    /// Solve for the reliability of `query` on `ud` within `budget`.
    ///
    /// Returns `Err` only when *no* rung produced even a partial
    /// estimate — a malformed query, an unsupported fragment for an
    /// explicitly requested method, or a budget so small nothing ran.
    /// Every other outcome, including exhaustion, is an `Ok` report
    /// whose [`Confidence`] says what the number means.
    pub fn solve(
        &self,
        ud: &UnreliableDatabase,
        query: &FoQuery,
        budget: &Budget,
    ) -> Result<SolveReport, QrelError> {
        let ladder = self.ladder(ud, query, budget);
        let threads = resolve_threads(self.threads);
        let mut trace: Vec<TraceStep> = Vec::new();
        let mut best_partial: Option<(Answer, Method)> = None;
        let mut first_error: Option<QrelError> = None;

        'ladder: for (i, &method) in ladder.iter().enumerate() {
            let last = i + 1 == ladder.len();
            // Every rung gets its own seed stream, so a rung's sampling
            // never depends on how much earlier rungs drew — the answer
            // is a function of (query, seed, accuracy) alone, not of
            // thread count or of which rungs happened to run. Retries
            // reuse the same rung seed: a retried rung that completes
            // gives the same answer a first-try completion would.
            let rung_seed = split_seed(self.seed, i as u64);
            let mut attempt: u32 = 0;
            loop {
                self.emit_progress(i, ladder.len(), method, attempt + 1, None);
                let slice = slice_budget(budget, last);
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    self.run_rung(method, ud, query, &slice, rung_seed, threads)
                }));
                settle(budget, &slice);
                match outcome {
                    Ok(Ok(Rung::Done(answer, note))) => {
                        self.emit_progress(i, ladder.len(), method, attempt + 1, Some(&note));
                        trace.push(TraceStep { method, note });
                        return Ok(self.report(answer, method, trace, budget));
                    }
                    Ok(Ok(Rung::Degraded(answer, cause))) => {
                        self.emit_progress(
                            i,
                            ladder.len(),
                            method,
                            attempt + 1,
                            Some(&cause.to_string()),
                        );
                        trace.push(TraceStep {
                            method,
                            note: cause.to_string(),
                        });
                        if let Some(mut a) = answer {
                            a.confidence = Confidence::Partial {
                                reason: cause.to_string(),
                            };
                            best_partial = Some(match best_partial.take() {
                                Some(b) if width(&b.0) <= width(&a) => b,
                                _ => (a, method),
                            });
                        }
                        continue 'ladder;
                    }
                    Ok(Ok(Rung::Skip(reason))) => {
                        trace.push(TraceStep {
                            method,
                            note: format!("skipped: {reason}"),
                        });
                        continue 'ladder;
                    }
                    Ok(Err(e)) => {
                        trace.push(TraceStep {
                            method,
                            note: format!("failed: {e}"),
                        });
                        first_error.get_or_insert(e);
                        continue 'ladder;
                    }
                    Err(panic) => {
                        // `&*panic`, not `&panic`: coercing the Box
                        // itself to `dyn Any` would hide the payload.
                        let msg = panic_message(&*panic);
                        self.emit_progress(
                            i,
                            ladder.len(),
                            method,
                            attempt + 1,
                            Some(&format!("panicked: {msg}")),
                        );
                        trace.push(TraceStep {
                            method,
                            note: format!("panicked: {msg}"),
                        });
                        let err = QrelError::RungPanic(msg);
                        // Self-healing: a caught panic is the one
                        // transient failure class — retry the rung with
                        // jittered backoff while deadline remains,
                        // instead of burning the whole rung.
                        if err.is_transient() && attempt < self.rung_retries {
                            if let Some(pause) = retry_backoff(self.seed, i as u64, attempt, budget)
                            {
                                trace.push(TraceStep {
                                    method,
                                    note: format!(
                                        "retrying after {}ms (attempt {} of {})",
                                        pause.as_millis(),
                                        attempt + 2,
                                        self.rung_retries + 1
                                    ),
                                });
                                std::thread::sleep(pause);
                                attempt += 1;
                                continue;
                            }
                        }
                        first_error.get_or_insert(err);
                        continue 'ladder;
                    }
                }
            }
        }

        match best_partial {
            Some((answer, method)) => Ok(self.report(answer, method, trace, budget)),
            None => Err(first_error.unwrap_or_else(|| {
                QrelError::Degraded(
                    trace
                        .iter()
                        .map(|s| format!("{}: {}", s.method, s.note))
                        .collect::<Vec<_>>()
                        .join("; "),
                )
            })),
        }
    }

    fn emit_progress(
        &self,
        rung: usize,
        of: usize,
        method: Method,
        attempt: u32,
        note: Option<&str>,
    ) {
        if let Some(hook) = &self.progress {
            hook.emit(ProgressEvent {
                rung,
                of,
                method,
                attempt,
                note: note.map(str::to_string),
            });
        }
    }

    /// Build the rung sequence for this query. Explicit methods get a
    /// one-rung ladder; `Auto` routes by fragment and world count, then
    /// appends the universal sampling fallbacks.
    fn ladder(&self, ud: &UnreliableDatabase, query: &FoQuery, budget: &Budget) -> Vec<Method> {
        if self.method != Method::Auto {
            return vec![self.method];
        }
        let fragment = query.formula().fragment();
        let u = ud.uncertain_facts().len();
        let world_cap = self
            .max_exact_worlds
            .min(budget.remaining(Resource::Worlds).unwrap_or(u64::MAX));
        let fits = u < 64 && (1u64 << u) <= world_cap;
        let groundable = matches!(
            fragment,
            Fragment::QuantifierFree
                | Fragment::Conjunctive
                | Fragment::Existential
                | Fragment::Universal
        );

        let mut ladder = Vec::new();
        if fragment == Fragment::QuantifierFree {
            // The QF fast path is already exact and PTIME; keep it first.
            ladder.push(Method::Qf);
        } else {
            // Rung 0 for every quantified query: the safe-plan compiler
            // answers hierarchical self-join-free shapes exactly in
            // PTIME and skips (cheaply, with the decline reason in the
            // trace) when the shape is provably unsafe.
            ladder.push(Method::Plan);
            if fits {
                ladder.push(Method::Exact);
            }
        }
        if groundable && !ladder.contains(&Method::Fptras) {
            ladder.push(Method::Fptras);
        }
        ladder.push(Method::Padding);
        ladder.push(Method::NaiveMc);
        ladder
    }

    fn run_rung(
        &self,
        method: Method,
        ud: &UnreliableDatabase,
        query: &FoQuery,
        budget: &Budget,
        seed: u64,
        threads: usize,
    ) -> Result<Rung, QrelError> {
        // Chaos hooks: an armed plan can panic this rung (caught at the
        // ladder's catch_unwind, classified transient, retried) or stall
        // it (eating wall-clock so the deadline machinery degrades it).
        // One relaxed load each when disarmed.
        if qrel_faults::armed() {
            qrel_faults::maybe_panic(&qrel_faults::points::rung_panic(method.name()));
            qrel_faults::maybe_stall(&qrel_faults::points::rung_stall(method.name()));
        }
        match method {
            Method::Auto => unreachable!("Auto expands into concrete rungs"),
            Method::Plan => self.run_plan(ud, query, budget),
            Method::Qf => self.run_qf(ud, query, budget),
            Method::Exact => self.run_exact(ud, query, budget, threads),
            Method::Fptras => self.run_fptras(ud, query, budget, seed, threads),
            Method::Padding => self.run_padding(ud, query, budget, seed, threads),
            Method::NaiveMc => self.run_naive_mc(ud, query, budget, seed, threads),
        }
    }

    fn run_plan(
        &self,
        ud: &UnreliableDatabase,
        query: &FoQuery,
        budget: &Budget,
    ) -> Result<Rung, QrelError> {
        // A cancelled/expired budget degrades before any work is done;
        // past that point the plan evaluates in one uninterruptible
        // polynomial pass (it enumerates no worlds and draws no
        // samples, so the world/sample budgets don't apply).
        if let Err(cause) = budget.probe() {
            return Ok(Rung::Degraded(None, cause));
        }
        let plan = match &self.plan_hint {
            Some(hint) => Arc::clone(hint),
            None => match qrel_plan::compile(query.formula()) {
                Ok(plan) => Arc::new(plan),
                Err(reason) => {
                    return Ok(Rung::Skip(format!("no safe plan: {reason}")));
                }
            },
        };
        let rep = qrel_plan::reliability(ud, &plan, query.formula(), query.free_vars())?;
        let note = format!("completed exactly (safe plan, {} nodes)", plan.node_count());
        Ok(Rung::Done(
            Answer {
                estimate: rep.reliability.to_f64(),
                exact: Some(rep.reliability),
                bounds: None,
                confidence: Confidence::Exact,
            },
            note,
        ))
    }

    fn run_qf(
        &self,
        ud: &UnreliableDatabase,
        query: &FoQuery,
        budget: &Budget,
    ) -> Result<Rung, QrelError> {
        if !query.formula().is_quantifier_free() {
            return Ok(Rung::Skip("query is not quantifier-free".into()));
        }
        match qf_reliability_budgeted(ud, query.formula(), query.free_vars(), budget)? {
            QfOutcome::Complete(rep) => {
                let note = format!(
                    "completed exactly ({} atoms/tuple)",
                    rep.max_atoms_per_tuple
                );
                Ok(Rung::Done(
                    Answer {
                        estimate: rep.reliability.to_f64(),
                        exact: Some(rep.reliability),
                        bounds: None,
                        confidence: Confidence::Exact,
                    },
                    note,
                ))
            }
            QfOutcome::Exhausted {
                partial_expected_error,
                tuples_done,
                tuples_total,
                cause,
            } => {
                let nk = tuples_total.max(1) as f64;
                let lo_h = partial_expected_error.to_f64();
                let hi_h = lo_h + (tuples_total - tuples_done) as f64;
                let answer = (tuples_done > 0).then(|| bracketed(lo_h, hi_h, nk));
                Ok(Rung::Degraded(answer, cause))
            }
        }
    }

    fn run_exact(
        &self,
        ud: &UnreliableDatabase,
        query: &FoQuery,
        budget: &Budget,
        threads: usize,
    ) -> Result<Rung, QrelError> {
        match exact_reliability_budgeted_sharded(ud, query, budget, threads)? {
            ExactOutcome::Complete(rep) => {
                let note = format!("completed exactly ({} worlds)", rep.worlds);
                Ok(Rung::Done(
                    Answer {
                        estimate: rep.reliability.to_f64(),
                        exact: Some(rep.reliability),
                        bounds: None,
                        confidence: Confidence::Exact,
                    },
                    note,
                ))
            }
            ExactOutcome::Exhausted {
                partial_expected_error,
                mass_visited,
                worlds,
                cause,
            } => {
                let k = query.arity() as i32;
                let n = ud.observed().size() as f64;
                let nk = n.powi(k).max(1.0);
                let lo_h = partial_expected_error.to_f64();
                let hi_h = lo_h + (1.0 - mass_visited.to_f64()).max(0.0) * nk;
                let answer = (worlds > 0).then(|| bracketed(lo_h, hi_h, nk));
                Ok(Rung::Degraded(answer, cause))
            }
        }
    }

    fn run_fptras(
        &self,
        ud: &UnreliableDatabase,
        query: &FoQuery,
        budget: &Budget,
        seed: u64,
        threads: usize,
    ) -> Result<Rung, QrelError> {
        let outcome = approximate_reliability_budgeted_parallel(
            ud,
            query.formula(),
            query.free_vars(),
            self.eps,
            self.delta,
            budget,
            seed,
            threads,
        );
        match outcome {
            Ok(ApproxOutcome::Complete(rep)) => {
                let note = format!(
                    "completed with (ε={}, δ={}) guarantee ({} tuples)",
                    self.eps, self.delta, rep.tuples
                );
                Ok(Rung::Done(
                    Answer {
                        estimate: rep.reliability.clamp(0.0, 1.0),
                        exact: None,
                        bounds: None,
                        confidence: Confidence::Fptras {
                            eps: self.eps,
                            delta: self.delta,
                        },
                    },
                    note,
                ))
            }
            Ok(ApproxOutcome::Exhausted {
                partial_expected_error,
                tuples_done,
                tuples_total,
                cause,
            }) => {
                // The in-flight tuple's estimate is guarantee-free, so
                // these bounds are advisory, not hard — bounds stay None.
                let nk = tuples_total.max(1) as f64;
                let hi_h = partial_expected_error + (tuples_total - tuples_done) as f64;
                let estimate = 1.0 - (partial_expected_error + hi_h) / (2.0 * nk);
                let answer = (tuples_done > 0 || partial_expected_error > 0.0).then(|| Answer {
                    estimate: estimate.clamp(0.0, 1.0),
                    exact: None,
                    bounds: None,
                    confidence: Confidence::Exact, // overwritten by the ladder
                });
                Ok(Rung::Degraded(answer, cause))
            }
            Err(QrelError::Unsupported(reason)) => Ok(Rung::Skip(reason)),
            Err(
                QrelError::BudgetExhausted(cause)
                | QrelError::Timeout(cause)
                | QrelError::Cancelled(cause),
            ) => Ok(Rung::Degraded(None, cause)),
            Err(e) => Err(e),
        }
    }

    fn run_padding(
        &self,
        ud: &UnreliableDatabase,
        query: &FoQuery,
        budget: &Budget,
        seed: u64,
        threads: usize,
    ) -> Result<Rung, QrelError> {
        let est = PaddingEstimator::default_xi();
        match est.estimate_reliability_budgeted_sharded(
            ud,
            query,
            self.eps,
            self.delta,
            budget,
            seed,
            DEFAULT_SHARDS,
            threads,
        )? {
            PaddingOutcome::Complete(rep) => {
                let note = format!(
                    "completed with (ε={}, δ={}) guarantee ({} worlds)",
                    self.eps, self.delta, rep.samples
                );
                Ok(Rung::Done(
                    Answer {
                        estimate: rep.estimate.clamp(0.0, 1.0),
                        exact: None,
                        bounds: None,
                        confidence: Confidence::Fptras {
                            eps: self.eps,
                            delta: self.delta,
                        },
                    },
                    note,
                ))
            }
            PaddingOutcome::Exhausted {
                partial_estimate,
                samples,
                cause,
            } => {
                let answer = (samples > 0).then(|| Answer {
                    estimate: partial_estimate.clamp(0.0, 1.0),
                    exact: None,
                    bounds: None,
                    confidence: Confidence::Exact, // overwritten by the ladder
                });
                Ok(Rung::Degraded(answer, cause))
            }
        }
    }

    /// Direct Monte-Carlo: sample worlds, count the per-world symmetric
    /// difference `|ψ^𝔄 Δ ψ^𝔅|/n^k ∈ [0, 1]`, and average. One world
    /// serves every tuple at once and the per-world statistic is already
    /// the normalized error, so a single Hoeffding bound on `t` samples
    /// gives `±ε` on the reliability itself — no per-tuple `ε/n^k`
    /// split, which is what makes this the cheapest rung.
    ///
    /// Sharded like the other sampling rungs: the sample budget splits
    /// across [`DEFAULT_SHARDS`] seed-split workers and the *integer*
    /// symmetric-difference totals merge exactly, so the estimate never
    /// depends on the thread count.
    fn run_naive_mc(
        &self,
        ud: &UnreliableDatabase,
        query: &FoQuery,
        budget: &Budget,
        seed: u64,
        threads: usize,
    ) -> Result<Rung, QrelError> {
        let k = query.arity();
        let db = ud.observed();
        let tuples: Vec<Vec<u32>> = db.universe().tuples(k).collect();
        let nk = tuples.len().max(1);
        let observed = query.answers(db)?;
        let t = hoeffding_samples(self.eps, self.delta);
        let counts = shard_counts(t, DEFAULT_SHARDS);

        let children = budget.split(DEFAULT_SHARDS);
        let parts = run_shards_with(children, threads, |s, child: Budget| {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, s as u64));
            let sampler = WorldSampler::new(ud);
            let mut diff_total = 0u64;
            let mut drawn = 0u64;
            let mut cause = None;
            for _ in 0..counts[s] {
                if let Err(e) = child.charge(Resource::Samples, 1) {
                    cause = Some(e);
                    break;
                }
                let answers = match query.answers(&sampler.sample(&mut rng)) {
                    Ok(a) => a,
                    Err(e) => return (diff_total, drawn, cause, Some(e), child),
                };
                diff_total += tuples
                    .iter()
                    .filter(|tuple| answers.contains(tuple) != observed.contains(tuple))
                    .count() as u64;
                drawn += 1;
            }
            (diff_total, drawn, cause, None, child)
        });
        let mut diff_total = 0u64;
        let mut drawn = 0u64;
        let mut cause: Option<Exhausted> = None;
        let mut failure: Option<qrel_eval::EvalError> = None;
        for (part_diff, part_drawn, part_cause, part_failure, child) in parts {
            budget.settle(&child);
            diff_total += part_diff;
            drawn += part_drawn;
            if cause.is_none() {
                cause = part_cause;
            }
            if failure.is_none() {
                failure = part_failure;
            }
        }
        if let Some(e) = failure {
            return Err(e.into());
        }
        let mean = diff_total as f64 / nk as f64 / drawn.max(1) as f64;
        let estimate = (1.0 - mean).clamp(0.0, 1.0);
        match cause {
            None => Ok(Rung::Done(
                Answer {
                    estimate,
                    exact: None,
                    bounds: None,
                    confidence: Confidence::Fptras {
                        eps: self.eps,
                        delta: self.delta,
                    },
                },
                format!(
                    "completed with (ε={}, δ={}) Hoeffding guarantee ({drawn} worlds)",
                    self.eps, self.delta
                ),
            )),
            Some(cause) => {
                let answer = (drawn > 0).then_some(Answer {
                    estimate,
                    exact: None,
                    bounds: None,
                    confidence: Confidence::Exact, // overwritten by the ladder
                });
                Ok(Rung::Degraded(answer, cause))
            }
        }
    }

    fn report(
        &self,
        answer: Answer,
        method: Method,
        trace: Vec<TraceStep>,
        budget: &Budget,
    ) -> SolveReport {
        SolveReport {
            reliability: answer.estimate.clamp(0.0, 1.0),
            exact: answer.exact,
            bounds: answer.bounds,
            confidence: answer.confidence,
            method,
            trace,
            elapsed: budget.elapsed(),
            worlds: budget.spent(Resource::Worlds),
            samples: budget.spent(Resource::Samples),
            terms: budget.spent(Resource::Terms),
        }
    }
}

/// Reliability bracket from hard bounds on the expected error `H`.
fn bracketed(lo_h: f64, hi_h: f64, nk: f64) -> Answer {
    let lo = (1.0 - hi_h / nk).clamp(0.0, 1.0);
    let hi = (1.0 - lo_h / nk).clamp(0.0, 1.0);
    Answer {
        estimate: (lo + hi) / 2.0,
        exact: None,
        bounds: Some((lo, hi)),
        confidence: Confidence::Exact, // overwritten by the ladder
    }
}

/// Width of a partial answer's bracket (1 when there are no bounds),
/// used to keep the most informative partial across rungs.
fn width(a: &Answer) -> f64 {
    a.bounds.map(|(lo, hi)| hi - lo).unwrap_or(1.0)
}

/// Retries per rung after a transient (caught-panic) failure, on top of
/// the first attempt.
pub const MAX_RUNG_RETRIES: u32 = 2;

/// Deadline-aware jittered backoff before retrying a panicked rung.
///
/// The pause doubles per attempt from a 4ms base and carries a
/// deterministic jitter drawn from `split_seed` over (solver seed, rung
/// index, attempt) — same inputs, same pause, so a replayed chaos run
/// sleeps identically. Returns `None` (don't retry) when the budget is
/// already tripped or the pause would eat more than half the remaining
/// deadline.
fn retry_backoff(seed: u64, rung: u64, attempt: u32, budget: &Budget) -> Option<Duration> {
    if budget.probe().is_err() {
        return None;
    }
    let base = 4u64 << attempt.min(6);
    let jitter = split_seed(split_seed(seed, 0x9A5E ^ rung), attempt as u64) % base;
    let pause = Duration::from_millis(base + jitter);
    if let Some(left) = budget.time_left() {
        if pause > left / 2 {
            return None;
        }
    }
    Some(pause)
}

/// Derive a rung budget from the parent: half the remaining time and
/// counters for a non-final rung (so a trip leaves room to degrade),
/// everything left for the final rung. The cancel token is shared.
fn slice_budget(parent: &Budget, last: bool) -> Budget {
    let halve = |n: u64| if last { n } else { n.div_ceil(2) };
    let mut b = Budget::unlimited().with_cancel_token(parent.cancel_token());
    if let Some(left) = parent.time_left() {
        b = b.with_deadline(if last { left } else { left / 2 });
    }
    if let Some(n) = parent.remaining(Resource::Worlds) {
        b = b.with_max_worlds(halve(n));
    }
    if let Some(n) = parent.remaining(Resource::Samples) {
        b = b.with_max_samples(halve(n));
    }
    if let Some(n) = parent.remaining(Resource::Terms) {
        b = b.with_max_terms(halve(n));
    }
    b
}

/// Charge a finished rung's spend back into the parent budget (the
/// trip, if any, is already recorded — the `Err` here is irrelevant).
fn settle(parent: &Budget, slice: &Budget) {
    for r in [Resource::Worlds, Resource::Samples, Resource::Terms] {
        let _ = parent.charge(r, slice.spent(r));
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_budget::CancelToken;
    use qrel_core::exact_reliability;
    use qrel_db::{DatabaseBuilder, Fact};
    use std::time::Duration;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    /// Three uncertain S-facts over a 3-element universe (8 worlds).
    fn small_ud() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("S", 1)
            .tuples("S", [vec![0], vec![2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_relation_error("S", r(1, 4)).unwrap();
        ud
    }

    /// Sixteen uncertain facts (65536 worlds) — past the test cap below.
    fn wide_ud() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(16)
            .relation("S", 1)
            .tuples("S", (0..8).map(|i| vec![i]))
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        for i in 0..16 {
            ud.set_error(&Fact::new(0, vec![i]), r(1, 10)).unwrap();
        }
        ud
    }

    #[test]
    fn auto_routes_qf_and_matches_oracle() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("S(x)").unwrap();
        let report = Solver::new().solve(&ud, &q, &Budget::unlimited()).unwrap();
        assert_eq!(report.method, Method::Qf);
        assert_eq!(report.confidence, Confidence::Exact);
        let oracle = exact_reliability(&ud, &q).unwrap().reliability;
        assert_eq!(report.exact.unwrap(), oracle);
    }

    #[test]
    fn auto_routes_plan_for_safe_queries() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let report = Solver::new().solve(&ud, &q, &Budget::unlimited()).unwrap();
        assert_eq!(report.method, Method::Plan);
        assert_eq!(report.confidence, Confidence::Exact);
        let oracle = exact_reliability(&ud, &q).unwrap().reliability;
        assert_eq!(report.exact.as_ref().unwrap(), &oracle);
        assert!(
            report.trace_line().contains("safe plan"),
            "trace: {}",
            report.trace_line()
        );
    }

    #[test]
    fn plan_skips_unsafe_shapes_with_reason_in_trace() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
        let report = Solver::new().solve(&ud, &q, &Budget::unlimited()).unwrap();
        assert_eq!(report.method, Method::Exact);
        let line = report.trace_line();
        assert!(line.contains("no safe plan"), "trace: {line}");
        assert!(line.contains("self-join"), "trace: {line}");
    }

    #[test]
    fn explicit_plan_on_unsafe_query_is_degraded() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x y. (S(x) & E(x, y) & T(y))").unwrap();
        let err = Solver::new()
            .with_method(Method::Plan)
            .solve(&ud, &q, &Budget::unlimited())
            .unwrap_err();
        assert!(matches!(err, QrelError::Degraded(_)), "got: {err}");
    }

    #[test]
    fn plan_hint_is_honored() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let hint = Arc::new(qrel_plan::compile(q.formula()).unwrap());
        let report = Solver::new()
            .with_plan_hint(Arc::clone(&hint))
            .solve(&ud, &q, &Budget::unlimited())
            .unwrap();
        assert_eq!(report.method, Method::Plan);
        let fresh = Solver::new().solve(&ud, &q, &Budget::unlimited()).unwrap();
        assert_eq!(report.exact, fresh.exact);
    }

    #[test]
    fn auto_routes_exact_when_worlds_fit() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
        let report = Solver::new().solve(&ud, &q, &Budget::unlimited()).unwrap();
        assert_eq!(report.method, Method::Exact);
        let oracle = exact_reliability(&ud, &q).unwrap().reliability;
        assert_eq!(report.exact.unwrap(), oracle);
    }

    #[test]
    fn auto_degrades_to_fptras_when_worlds_capped() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
        let report = Solver::new()
            .with_max_exact_worlds(4)
            .solve(&ud, &q, &Budget::unlimited())
            .unwrap();
        assert_eq!(report.method, Method::Fptras);
        assert!(report.confidence.is_guaranteed());
        let oracle = exact_reliability(&ud, &q).unwrap().reliability.to_f64();
        assert!(
            (report.reliability - oracle).abs() <= 0.1,
            "fptras answer {} vs oracle {oracle}",
            report.reliability
        );
    }

    #[test]
    fn exhausted_budget_returns_partial_with_trace() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = wide_ud();
        let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
        // Worlds run out mid-enumeration, samples run out mid-sampling:
        // every rung degrades and the best partial survives.
        let budget = Budget::unlimited()
            .with_max_worlds(100)
            .with_max_samples(40);
        let report = Solver::new().solve(&ud, &q, &budget).unwrap();
        assert!(report.is_degraded());
        assert!((0.0..=1.0).contains(&report.reliability));
        assert!(report.trace.len() >= 2, "trace: {}", report.trace_line());
        let line = report.trace_line();
        assert!(line.starts_with("tried "), "trace: {line}");
        assert!(line.contains("fell back to "), "trace: {line}");
        if let Some((lo, hi)) = report.bounds {
            assert!(lo <= report.reliability && report.reliability <= hi);
        }
    }

    #[test]
    fn cancelled_before_start_yields_error_not_panic() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel_token(token);
        let err = Solver::new().solve(&ud, &q, &budget).unwrap_err();
        assert!(
            matches!(err, QrelError::Cancelled(_) | QrelError::Degraded(_)),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn explicit_exact_without_budget_is_exact() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = wide_ud();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let report = Solver::new()
            .with_method(Method::Exact)
            .solve(&ud, &q, &Budget::unlimited())
            .unwrap();
        assert_eq!(report.confidence, Confidence::Exact);
        assert_eq!(report.worlds, 1 << 16);
        let oracle = exact_reliability(&ud, &q).unwrap().reliability;
        assert_eq!(report.exact.unwrap(), oracle);
    }

    #[test]
    fn explicit_qf_on_quantified_query_is_unsupported() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let err = Solver::new()
            .with_method(Method::Qf)
            .solve(&ud, &q, &Budget::unlimited())
            .unwrap_err();
        assert!(matches!(err, QrelError::Degraded(_)), "got: {err}");
    }

    #[test]
    fn naive_mc_agrees_with_oracle() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let report = Solver::new()
            .with_method(Method::NaiveMc)
            .with_accuracy(0.05, 0.02)
            .solve(&ud, &q, &Budget::unlimited())
            .unwrap();
        let oracle = exact_reliability(&ud, &q).unwrap().reliability.to_f64();
        assert!(
            (report.reliability - oracle).abs() <= 0.05,
            "mc answer {} vs oracle {oracle}",
            report.reliability
        );
    }

    #[test]
    fn answer_is_thread_count_invariant() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        // The determinism contract at the solver level: the sampling
        // rungs run on fixed shard counts with seed-split RNGs, so the
        // reported reliability is bit-identical for every --threads.
        let ud = small_ud();
        let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
        let solve = |threads: usize| {
            Solver::new()
                .with_max_exact_worlds(4) // force the FPTRAS rung
                .with_threads(threads)
                .solve(&ud, &q, &Budget::unlimited())
                .unwrap()
        };
        let base = solve(1);
        assert_eq!(base.method, Method::Fptras);
        for threads in [2usize, 4, 8] {
            let rep = solve(threads);
            assert_eq!(rep.method, base.method);
            assert_eq!(rep.reliability.to_bits(), base.reliability.to_bits());
            assert_eq!(rep.samples, base.samples);
        }
    }

    #[test]
    fn deadline_is_respected_within_slack() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = wide_ud();
        let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(200));
        let started = std::time::Instant::now();
        let result = Solver::new()
            .with_max_exact_worlds(1 << 20)
            .solve(&ud, &q, &budget);
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_millis(1000),
            "solve took {elapsed:?} against a 200ms deadline"
        );
        // Whatever came back, it must be well-formed.
        if let Ok(report) = result {
            assert!((0.0..=1.0).contains(&report.reliability));
        }
    }

    #[test]
    fn progress_hook_observes_rung_attempts() {
        // Serialize against fault-armed tests (arming is process-global).
        let _quiet = qrel_faults::quiesce();
        let ud = small_ud();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let events = std::sync::Arc::new(std::sync::Mutex::new(Vec::<ProgressEvent>::new()));
        let sink = std::sync::Arc::clone(&events);
        let report = Solver::new()
            .with_progress(ProgressHook::new(move |e| sink.lock().unwrap().push(e)))
            .solve(&ud, &q, &Budget::unlimited())
            .unwrap();
        assert_eq!(report.method, Method::Plan);
        let events = events.lock().unwrap();
        // One start event (note: None) and one outcome event per rung
        // attempt; the single plan rung completes on its first try.
        assert_eq!(events.len(), 2, "events: {events:?}");
        assert_eq!(events[0].attempt, 1);
        assert!(events[0].note.is_none());
        assert_eq!(events[1].method, Method::Plan);
        assert!(events[1].note.as_deref().unwrap().contains("completed"));
    }

    #[test]
    fn injected_rung_panic_is_retried_and_heals() {
        let ud = small_ud();
        let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
        let clean = Solver::new().solve(&ud, &q, &Budget::unlimited()).unwrap();
        assert_eq!(clean.method, Method::Exact);

        // One injected panic on the exact rung: the ladder must retry
        // the rung (transient class), then complete with an answer
        // bit-identical to the fault-free solve.
        let plan = qrel_faults::FaultPlan::new(3).with_rule(
            &qrel_faults::points::rung_panic(Method::Exact.name()),
            1.0,
            0,
            1, // fire once, then heal
        );
        let _guard = plan.arm();
        let healed = Solver::new().solve(&ud, &q, &Budget::unlimited()).unwrap();
        assert_eq!(healed.method, Method::Exact);
        assert_eq!(healed.reliability.to_bits(), clean.reliability.to_bits());
        assert_eq!(healed.exact, clean.exact);
        let notes: Vec<&str> = healed.trace.iter().map(|s| s.note.as_str()).collect();
        assert!(
            notes.iter().any(|n| n.contains("injected fault")),
            "trace must record the caught panic: {notes:?}"
        );
        assert!(
            notes.iter().any(|n| n.contains("retrying after")),
            "trace must record the retry: {notes:?}"
        );
    }

    #[test]
    fn persistent_rung_panic_falls_through_the_ladder() {
        let ud = small_ud();
        let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
        // The exact rung panics on every attempt; retries exhaust and
        // the ladder falls through to a sampling rung instead of
        // failing the whole solve.
        let plan = qrel_faults::FaultPlan::new(5).with_rule(
            &qrel_faults::points::rung_panic(Method::Exact.name()),
            1.0,
            0,
            0, // unlimited fires
        );
        let _guard = plan.arm();
        let report = Solver::new().solve(&ud, &q, &Budget::unlimited()).unwrap();
        assert_ne!(report.method, Method::Exact);
        assert!((0.0..=1.0).contains(&report.reliability));
    }

    #[test]
    fn stalled_rung_degrades_within_the_deadline() {
        let ud = small_ud();
        let q = FoQuery::parse("exists x y. (S(x) & S(y))").unwrap();
        let plan = qrel_faults::FaultPlan::new(9).with_rule(
            &qrel_faults::points::rung_stall(Method::Exact.name()),
            1.0,
            300, // stall past the whole deadline
            0,
        );
        let _guard = plan.arm();
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(150));
        let started = std::time::Instant::now();
        let result = Solver::new().solve(&ud, &q, &budget);
        // The stall eats the exact rung's slice; whatever the outcome,
        // the solve returns promptly after it (deadline + injected
        // stall bound) and never hangs.
        assert!(
            started.elapsed() < Duration::from_millis(300 * 4 + 1000),
            "stalled solve took {:?}",
            started.elapsed()
        );
        if let Ok(report) = result {
            assert!((0.0..=1.0).contains(&report.reliability));
        }
    }
}
