//! Budgeted solver runtime: deadlines, cancellation, and a graceful
//! degradation ladder over the paper's reliability methods.
//!
//! The complexity landscape of Grädel, Gurevich & Hirsch makes every
//! entry point in this workspace a potential cliff: exact reliability is
//! FP^#P-complete (Thm 4.2, `2^u` worlds), grounding an existential
//! query can blow up a DNF, and the FPTRAS sampling loops run for
//! `O(m·ε⁻²·ln(1/δ))` iterations. The [`Solver`] here makes all of that
//! callable from a service:
//!
//! - a cooperative [`Budget`] (wall-clock deadline + caps on worlds,
//!   samples, and DNF terms + a thread-safe [`CancelToken`]) that the
//!   core hot loops observe via cheap `charge`/`checkpoint` calls;
//! - fragment-based routing plus a **degradation ladder**
//!   ([`Method::Auto`]): qf fast path → exact enumeration (when `2^u`
//!   fits a cap) → FPTRAS → padding estimator → naive Monte-Carlo, where
//!   a budget trip falls through to the next rung instead of failing and
//!   the final answer carries an explicit [`Confidence`] tag;
//! - the structured [`QrelError`] taxonomy shared by the whole
//!   workspace; and
//! - panic isolation: each rung runs under `catch_unwind`, so a solver
//!   bug degrades the answer instead of aborting the process.
//!
//! ```
//! use qrel_arith::BigRational;
//! use qrel_db::DatabaseBuilder;
//! use qrel_eval::FoQuery;
//! use qrel_prob::UnreliableDatabase;
//! use qrel_runtime::{Budget, Confidence, Solver};
//! use std::time::Duration;
//!
//! let db = DatabaseBuilder::new()
//!     .universe_size(2)
//!     .relation("S", 1)
//!     .tuples("S", [vec![0]])
//!     .build();
//! let mut ud = UnreliableDatabase::reliable(db);
//! ud.set_relation_error("S", BigRational::from_ratio(1, 3)).unwrap();
//!
//! let query = FoQuery::parse("exists x. S(x)").unwrap();
//! let budget = Budget::unlimited().with_deadline(Duration::from_secs(5));
//! let report = Solver::new().solve(&ud, &query, &budget).unwrap();
//! assert_eq!(report.confidence, Confidence::Exact);
//! ```

mod report;
mod solver;

pub use qrel_budget::{Budget, CancelToken, Exhausted, QrelError, Resource};
pub use report::{Confidence, Method, SolveReport, TraceStep};
pub use solver::{ProgressEvent, ProgressHook, Solver, DEFAULT_MAX_EXACT_WORLDS, MAX_RUNG_RETRIES};
