//! Solve reports: which method answered, with what guarantee, and the
//! degradation trace of everything tried along the way.

use std::fmt;
use std::time::Duration;

use qrel_arith::BigRational;

/// A solving method — one rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Route by fragment and world count, degrading on budget trips.
    Auto,
    /// Safe-plan compiler: hierarchical self-join-free shapes evaluated
    /// extensionally over fact probabilities (exact, PTIME).
    Plan,
    /// Prop 3.1 quantifier-free fast path (exact, PTIME).
    Qf,
    /// Thm 4.2 weighted world enumeration (exact, `2^u` worlds).
    Exact,
    /// Cor 5.5 FPTRAS via grounding + Karp–Luby (existential/universal).
    Fptras,
    /// Thm 5.12 padding estimator (any PTIME-evaluable query).
    Padding,
    /// Naive Monte-Carlo over worlds with the Hoeffding bound — the
    /// cheapest rung: one shared world estimates all `n^k` tuples at
    /// once, with no per-tuple `ε` split.
    NaiveMc,
}

impl Method {
    pub fn name(self) -> &'static str {
        match self {
            Method::Auto => "auto",
            Method::Plan => "plan",
            Method::Qf => "qf",
            Method::Exact => "exact",
            Method::Fptras => "fptras",
            Method::Padding => "padding",
            Method::NaiveMc => "mc",
        }
    }

    /// Parse a CLI method name (`approx` is accepted as an alias for
    /// `fptras`, matching the pre-runtime CLI).
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "auto" => Some(Method::Auto),
            "plan" => Some(Method::Plan),
            "qf" => Some(Method::Qf),
            "exact" => Some(Method::Exact),
            "fptras" | "approx" => Some(Method::Fptras),
            "padding" => Some(Method::Padding),
            "mc" | "naive-mc" => Some(Method::NaiveMc),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The guarantee attached to a [`SolveReport`], mapping onto the paper's
/// results: `Exact` answers carry a Thm 4.2 / Prop 3.1 rational, `Fptras`
/// answers carry a Cor 5.5 / Thm 5.12 `(ε, δ)` absolute-error bound, and
/// `Partial` answers are whatever a tripped budget left behind.
#[derive(Debug, Clone, PartialEq)]
pub enum Confidence {
    /// The answer is an exact rational (also in [`SolveReport::exact`]).
    Exact,
    /// `Pr[|answer − truth| > eps] < delta`.
    Fptras { eps: f64, delta: f64 },
    /// Best-effort estimate with no statistical guarantee; `reason`
    /// explains which budget tripped.
    Partial { reason: String },
}

impl Confidence {
    /// True unless this is a guarantee-free `Partial` answer.
    pub fn is_guaranteed(&self) -> bool {
        !matches!(self, Confidence::Partial { .. })
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Confidence::Exact => f.write_str("exact"),
            Confidence::Fptras { eps, delta } => write!(f, "(ε={eps}, δ={delta})"),
            Confidence::Partial { reason } => write!(f, "partial: {reason}"),
        }
    }
}

/// One rung attempt in the degradation trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    pub method: Method,
    /// What happened: "completed …", a budget-exhaustion message, a
    /// skip reason, or a caught panic.
    pub note: String,
}

/// The result of a [`crate::Solver::solve`] call.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Best point estimate of the reliability `R_ψ(𝔇)`, in `[0, 1]`.
    pub reliability: f64,
    /// The exact rational, when [`Confidence::Exact`].
    pub exact: Option<BigRational>,
    /// Hard bounds `[lo, hi]` on the true reliability, when a tripped
    /// exact/qf enumeration left provable partial sums behind.
    pub bounds: Option<(f64, f64)>,
    pub confidence: Confidence,
    /// The rung that produced the answer.
    pub method: Method,
    /// Every rung tried, in order.
    pub trace: Vec<TraceStep>,
    pub elapsed: Duration,
    /// Worlds enumerated across all rungs.
    pub worlds: u64,
    /// Monte-Carlo samples drawn across all rungs.
    pub samples: u64,
    /// Ground DNF terms produced across all rungs.
    pub terms: u64,
}

impl SolveReport {
    /// True if the answer carries no `Exact`/`Fptras` guarantee — the
    /// CLI maps this to the "degraded" exit code.
    pub fn is_degraded(&self) -> bool {
        !self.confidence.is_guaranteed()
    }

    /// Human-readable degradation trace:
    /// `tried exact → budget of 16384 worlds exhausted after 16385 →
    /// fell back to fptras → completed`.
    pub fn trace_line(&self) -> String {
        let mut parts = Vec::new();
        for (i, step) in self.trace.iter().enumerate() {
            if i == 0 {
                parts.push(format!("tried {}", step.method));
            } else {
                parts.push(format!("fell back to {}", step.method));
            }
            parts.push(step.note.clone());
        }
        parts.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_round_trip() {
        for m in [
            Method::Auto,
            Method::Plan,
            Method::Qf,
            Method::Exact,
            Method::Fptras,
            Method::Padding,
            Method::NaiveMc,
        ] {
            assert_eq!(Method::parse(m.name()), Some(m));
        }
        assert_eq!(Method::parse("approx"), Some(Method::Fptras));
        assert_eq!(Method::parse("nope"), None);
    }

    #[test]
    fn trace_line_reads_like_a_story() {
        let report = SolveReport {
            reliability: 0.5,
            exact: None,
            bounds: None,
            confidence: Confidence::Partial {
                reason: "deadline of 200ms exceeded after 204ms".into(),
            },
            method: Method::Fptras,
            trace: vec![
                TraceStep {
                    method: Method::Exact,
                    note: "budget of 16384 worlds exhausted after 16385".into(),
                },
                TraceStep {
                    method: Method::Fptras,
                    note: "completed".into(),
                },
            ],
            elapsed: Duration::from_millis(250),
            worlds: 16385,
            samples: 100,
            terms: 3,
        };
        assert_eq!(
            report.trace_line(),
            "tried exact → budget of 16384 worlds exhausted after 16385 → \
             fell back to fptras → completed"
        );
    }
}
