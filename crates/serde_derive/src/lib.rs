//! Vendored `#[derive(Serialize, Deserialize)]` macros for the offline
//! serde stub.
//!
//! Built directly on the `proc_macro` token API (no `syn`/`quote`): the
//! item is parsed with a small hand-rolled cursor, and the impl is
//! emitted as a source string re-parsed into a `TokenStream`. Supported
//! shapes are exactly the ones this workspace uses:
//!
//! - structs with named fields;
//! - enums with unit, newtype, tuple and struct variants, serialized
//!   with serde's externally-tagged convention (`"Variant"` for unit,
//!   `{"Variant": content}` otherwise);
//! - container attributes `#[serde(from = "T")]` and
//!   `#[serde(try_from = "T")]` (with `TryFrom::Error: Display`);
//! - field attributes `#[serde(default)]` and
//!   `#[serde(default = "path")]`.
//!
//! Anything else (generics, tuple structs, renames, skips) is rejected
//! with a `compile_error!` so misuse fails loudly at build time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let source = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("compile_error!({:?});", msg),
    };
    source
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive produced invalid Rust: {e}\n{source}"))
}

// ---------------------------------------------------------------------------
// Parsed item model

struct Item {
    name: String,
    from: Option<String>,
    try_from: Option<String>,
    kind: Kind,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: Option<FieldDefault>,
}

enum FieldDefault {
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    /// Tuple variant with this many fields (1 = serde newtype variant).
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-level parsing

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consume a leading attribute (`#[...]` / `#![...]`), returning the
    /// serde metas it contains (empty for non-serde attributes).
    fn eat_attr(&mut self) -> Option<Vec<(String, Option<String>)>> {
        if !matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            return None;
        }
        self.pos += 1;
        self.eat_punct('!');
        let Some(TokenTree::Group(g)) = self.bump() else {
            return Some(Vec::new());
        };
        let mut inner = Cursor::new(g.stream());
        if inner.eat_ident("serde") {
            if let Some(TokenTree::Group(args)) = inner.peek() {
                if args.delimiter() == Delimiter::Parenthesis {
                    return Some(parse_metas(args.stream()));
                }
            }
        }
        Some(Vec::new())
    }

    /// Skip `pub` / `pub(crate)` / `pub(in ...)`.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }
}

/// Parse `key`, `key = "value"` pairs separated by commas.
fn parse_metas(stream: TokenStream) -> Vec<(String, Option<String>)> {
    let mut cur = Cursor::new(stream);
    let mut metas = Vec::new();
    while let Some(tok) = cur.bump() {
        let TokenTree::Ident(key) = tok else { continue };
        let mut value = None;
        if cur.eat_punct('=') {
            if let Some(TokenTree::Literal(lit)) = cur.bump() {
                value = Some(strip_quotes(&lit.to_string()));
            }
        }
        metas.push((key.to_string(), value));
        cur.eat_punct(',');
    }
    metas
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor::new(input);
    let mut from = None;
    let mut try_from = None;

    // Leading attributes and visibility.
    loop {
        if let Some(metas) = cur.eat_attr() {
            for (key, value) in metas {
                match (key.as_str(), value) {
                    ("from", Some(v)) => from = Some(v),
                    ("try_from", Some(v)) => try_from = Some(v),
                    ("default", _) => {}
                    (other, _) => {
                        return Err(format!(
                            "serde stub: unsupported container attribute `{other}`"
                        ))
                    }
                }
            }
            continue;
        }
        if matches!(cur.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            cur.eat_visibility();
            continue;
        }
        break;
    }

    let is_enum = if cur.eat_ident("struct") {
        false
    } else if cur.eat_ident("enum") {
        true
    } else {
        return Err("serde stub: expected `struct` or `enum`".to_string());
    };

    let name = match cur.bump() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stub: expected type name".to_string()),
    };

    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde stub: generic type `{name}` not supported"));
    }

    let body = match cur.bump() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            return Err(format!("serde stub: tuple struct `{name}` not supported"));
        }
        _ => return Err(format!("serde stub: unit struct `{name}` not supported")),
    };

    let kind = if is_enum {
        Kind::Enum(parse_variants(body)?)
    } else {
        Kind::Struct(parse_named_fields(body)?)
    };

    Ok(Item {
        name,
        from,
        try_from,
        kind,
    })
}

/// Split a token sequence at top-level commas (commas inside `<...>`
/// still count as nested: angle brackets are not token groups, so track
/// their depth explicitly).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        segments.last_mut().unwrap().push(tok);
    }
    segments.retain(|seg| !seg.is_empty());
    segments
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for segment in split_top_level(stream) {
        let mut cur = Cursor {
            toks: segment,
            pos: 0,
        };
        let mut default = None;
        while let Some(metas) = cur.eat_attr() {
            for (key, value) in metas {
                match (key.as_str(), value) {
                    ("default", None) => default = Some(FieldDefault::Std),
                    ("default", Some(path)) => default = Some(FieldDefault::Path(path)),
                    (other, _) => {
                        return Err(format!("serde stub: unsupported field attribute `{other}`"))
                    }
                }
            }
        }
        cur.eat_visibility();
        let name = match cur.bump() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde stub: expected field name".to_string()),
        };
        if !cur.eat_punct(':') {
            return Err(format!("serde stub: expected `:` after field `{name}`"));
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for segment in split_top_level(stream) {
        let mut cur = Cursor {
            toks: segment,
            pos: 0,
        };
        while cur.eat_attr().is_some() {}
        let name = match cur.bump() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde stub: expected variant name".to_string()),
        };
        let shape = match cur.bump() {
            None => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream())?)
            }
            Some(other) => {
                return Err(format!(
                    "serde stub: unsupported token `{other}` in variant `{name}`"
                ))
            }
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), \
                         ::serde::Serialize::serialize_value(&self.{n})),",
                        n = f.name
                    )
                })
                .collect::<String>();
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| gen_serialize_arm(name, v))
                .collect::<String>();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    let tag = format!("::std::string::String::from({vn:?})");
    match &v.shape {
        Shape::Unit => format!("{name}::{vn} => ::serde::Value::Str({tag}),"),
        Shape::Tuple(1) => format!(
            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![\
             ({tag}, ::serde::Serialize::serialize_value(f0))]),"
        ),
        Shape::Tuple(n) => {
            let binders = (0..*n).map(|i| format!("f{i},")).collect::<String>();
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(f{i}),"))
                .collect::<String>();
            format!(
                "{name}::{vn}({binders}) => ::serde::Value::Object(::std::vec![\
                 ({tag}, ::serde::Value::Array(::std::vec![{items}]))]),"
            )
        }
        Shape::Struct(fields) => {
            let binders = fields
                .iter()
                .map(|f| format!("{},", f.name))
                .collect::<String>();
            let pairs = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), \
                         ::serde::Serialize::serialize_value({n})),",
                        n = f.name
                    )
                })
                .collect::<String>();
            format!(
                "{name}::{vn} {{ {binders} }} => ::serde::Value::Object(::std::vec![\
                 ({tag}, ::serde::Value::Object(::std::vec![{pairs}]))]),"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    // `from` / `try_from` route through the shadow type's Deserialize.
    if let Some(raw) = &item.from {
        return format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let raw: {raw} = ::serde::Deserialize::deserialize_value(v)?;\n\
                     ::std::result::Result::Ok(\
                         <{name} as ::std::convert::From<{raw}>>::from(raw))\n\
                 }}\n\
             }}"
        );
    }
    if let Some(raw) = &item.try_from {
        return format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_value(v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let raw: {raw} = ::serde::Deserialize::deserialize_value(v)?;\n\
                     <{name} as ::std::convert::TryFrom<{raw}>>::try_from(raw)\
                         .map_err(::serde::DeError::custom)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let build = gen_struct_build(name, fields, "pairs");
            format!(
                "let pairs = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                     ::std::format!(\"expected object for struct {name}, got {{}}\", v.kind())))?;\n\
                 ::std::result::Result::Ok({build})"
            )
        }
        Kind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Struct-literal construction `Path { f: ..., ... }` reading each field
/// from the object pair list named by `pairs_var`.
fn gen_struct_build(path: &str, fields: &[Field], pairs_var: &str) -> String {
    let inits = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            let missing = match &f.default {
                None => format!(
                    "return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"missing field `{n}`\"))"
                ),
                Some(FieldDefault::Std) => "::std::default::Default::default()".to_string(),
                Some(FieldDefault::Path(p)) => format!("{p}()"),
            };
            format!(
                "{n}: match ::serde::field({pairs_var}, {n:?}) {{\n\
                     ::std::option::Option::Some(fv) => \
                         ::serde::Deserialize::deserialize_value(fv)\
                             .map_err(|e| e.in_context({n:?}))?,\n\
                     ::std::option::Option::None => {missing},\n\
                 }},"
            )
        })
        .collect::<String>();
    format!("{path} {{ {inits} }}")
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| {
            format!(
                "{vn:?} => ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect::<String>();
    let content_arms = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| gen_enum_content_arm(name, v))
        .collect::<String>();
    // Avoid an unused-variable warning in all-unit enums.
    let content_binder = if content_arms.is_empty() {
        "_"
    } else {
        "content"
    };
    format!(
        "match v {{\n\
             ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, {content_binder}) = &pairs[0];\n\
                 match tag.as_str() {{\n\
                     {content_arms}\n\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected variant of {name}, got {{}}\", other.kind()))),\n\
         }}"
    )
}

fn gen_enum_content_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.shape {
        Shape::Unit => unreachable!("unit variants handled in the string arm"),
        Shape::Tuple(1) => format!(
            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                 ::serde::Deserialize::deserialize_value(content)\
                     .map_err(|e| e.in_context({vn:?}))?)),"
        ),
        Shape::Tuple(n) => {
            let items = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize_value(&items[{i}])\
                         .map_err(|e| e.in_context({vn:?}))?,"
                    )
                })
                .collect::<String>();
            format!(
                "{vn:?} => {{\n\
                     let items = content.as_array().ok_or_else(|| \
                         ::serde::DeError::custom(\
                             \"expected array for tuple variant `{vn}`\"))?;\n\
                     if items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\
                                 \"expected {n} elements for variant `{vn}`, got {{}}\",\
                                 items.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}::{vn}({items}))\n\
                 }}"
            )
        }
        Shape::Struct(fields) => {
            let build = gen_struct_build(&format!("{name}::{vn}"), fields, "inner");
            format!(
                "{vn:?} => {{\n\
                     let inner = content.as_object().ok_or_else(|| \
                         ::serde::DeError::custom(\
                             \"expected object for struct variant `{vn}`\"))?;\n\
                     ::std::result::Result::Ok({build})\n\
                 }}"
            )
        }
    }
}
