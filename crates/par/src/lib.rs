//! Deterministic parallel execution layer: seed-splitting, fixed
//! sharding, scoped-thread fan-out.
//!
//! Every sampling estimator and the exact world enumerator parallelize
//! the same way: the work (a sample budget, a world index-space) is cut
//! into a **fixed** number of shards, each shard runs with its own
//! deterministically derived RNG stream, and the per-shard partial
//! results are merged exactly (integer hit counts, exact rationals).
//! Threads only decide *which worker executes which shard* — never what
//! a shard computes — so the merged result is bit-identical for any
//! thread count, including 1. That is the determinism contract:
//!
//! ```text
//! result(seed, shards, threads) == result(seed, shards, 1)   ∀ threads
//! ```
//!
//! The shard count is therefore part of the reproducibility key and is
//! pinned at [`DEFAULT_SHARDS`] rather than derived from the machine's
//! core count: deriving it from `available_parallelism` would make the
//! answer depend on the hardware the run happened to land on.
//!
//! Seed-splitting uses the SplitMix64 finalizer, the standard generator
//! for statistically independent streams from one master seed (it is
//! also how `StdRng` seeds are expanded internally); consecutive shard
//! indices land in unrelated regions of the state space, unlike the raw
//! `seed ⊕ shard` which `StdRng`'s own seeding would then have to
//! de-correlate.

use std::sync::Mutex;

/// Fixed shard count used by the parallel estimators. 16 shards keep
/// up to 16 hardware threads busy while staying cheap to merge; the
/// value is deliberately **not** derived from the machine (see the
/// module docs for why).
pub const DEFAULT_SHARDS: usize = 16;

/// Derive an independent RNG seed for `stream` from a master seed, via
/// the SplitMix64 finalizer over `master ⊕ (stream+1)·γ` (γ is the
/// golden-ratio increment). Used both for shard seeds and for giving
/// each solver rung / tuple its own stream.
pub fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Split `total` units of work into `shards` counts that sum exactly to
/// `total`, remainder going to the earliest shards.
///
/// # Panics
/// Panics if `shards == 0`.
pub fn shard_counts(total: u64, shards: usize) -> Vec<u64> {
    assert!(shards > 0, "need at least one shard");
    let k = shards as u64;
    (0..k)
        .map(|i| total / k + u64::from(i < total % k))
        .collect()
}

/// Split the index range `[0, total)` into `shards` contiguous
/// `(start, end)` ranges covering it exactly, sized as [`shard_counts`].
pub fn shard_ranges(total: u64, shards: usize) -> Vec<(u64, u64)> {
    let mut start = 0u64;
    shard_counts(total, shards)
        .into_iter()
        .map(|n| {
            let r = (start, start + n);
            start += n;
            r
        })
        .collect()
}

/// Split `[0, total)` into `shards` contiguous ranges whose boundaries
/// fall on multiples of `align` (except the final boundary at `total`).
///
/// This is the lane-aware variant of [`shard_ranges`] used by the
/// bit-parallel kernels: work is distributed in whole `align`-sized
/// blocks (remainder blocks to the earliest shards) so no 64-world lane
/// block is ever split across two shards. Trailing shards may be empty
/// when there are fewer blocks than shards.
///
/// # Panics
/// Panics if `shards == 0` or `align == 0`.
pub fn shard_ranges_aligned(total: u64, shards: usize, align: u64) -> Vec<(u64, u64)> {
    assert!(align > 0, "alignment must be positive");
    let blocks = total.div_ceil(align);
    shard_ranges(blocks, shards)
        .into_iter()
        .map(|(bs, be)| ((bs * align).min(total), (be * align).min(total)))
        .collect()
}

/// Resolve the worker-thread count: an explicit request wins, then the
/// `RAYON_NUM_THREADS` environment variable (the conventional knob for
/// this layer, honored even though the implementation uses scoped std
/// threads), then the machine's available parallelism. Always ≥ 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("RAYON_NUM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Run `job(shard)` for every shard in `0..shards` on up to `threads`
/// workers and return the results in shard order.
///
/// Workers take shards by striding (`worker w` runs shards
/// `w, w+threads, …`), but since each shard is self-contained the
/// assignment is irrelevant to the output. With `threads <= 1` the
/// shards run inline on the caller's thread — same results, no spawn.
///
/// # Panics
/// Panics if `shards == 0` or if a worker panics (the panic is
/// propagated).
pub fn run_shards<T, F>(shards: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(shards > 0, "need at least one shard");
    let threads = threads.max(1).min(shards);
    // Chaos hook: stall individual shards. Keyed by shard index, so the
    // same (seed, plan) stalls the same shards under any thread count —
    // a stall delays a shard's identical result, it never changes it.
    let job = |s: usize| {
        if qrel_faults::armed() {
            qrel_faults::stall_at(qrel_faults::points::PAR_SHARD_STALL, s as u64);
        }
        job(s)
    };
    if threads == 1 {
        return (0..shards).map(job).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(shards);
    out.resize_with(shards, || None);
    std::thread::scope(|scope| {
        let job = &job;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    (w..shards)
                        .step_by(threads)
                        .map(|s| (s, job(s)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (s, t) in h.join().expect("shard worker panicked") {
                out[s] = Some(t);
            }
        }
    });
    out.into_iter()
        .map(|t| t.expect("all shards completed"))
        .collect()
}

/// [`run_shards`] with an owned, `Send`-but-not-`Sync` context per shard
/// (a child `qrel_budget::Budget` is the motivating case): shard `s`
/// consumes `contexts[s]`. The context is returned to the caller as part
/// of the job's result if it needs settling.
///
/// # Panics
/// Panics if `contexts` is empty or a worker panics.
pub fn run_shards_with<C, T, F>(contexts: Vec<C>, threads: usize, job: F) -> Vec<T>
where
    C: Send,
    T: Send,
    F: Fn(usize, C) -> T + Sync,
{
    let shards = contexts.len();
    assert!(shards > 0, "need at least one shard");
    let threads = threads.max(1).min(shards);
    // Same shard-indexed stall hook as `run_shards`.
    let job = |s: usize, c: C| {
        if qrel_faults::armed() {
            qrel_faults::stall_at(qrel_faults::points::PAR_SHARD_STALL, s as u64);
        }
        job(s, c)
    };
    if threads == 1 {
        return contexts
            .into_iter()
            .enumerate()
            .map(|(s, c)| job(s, c))
            .collect();
    }
    let slots: Vec<Mutex<Option<C>>> = contexts.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let mut out: Vec<Option<T>> = Vec::with_capacity(shards);
    out.resize_with(shards, || None);
    std::thread::scope(|scope| {
        let job = &job;
        let slots = &slots;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    (w..shards)
                        .step_by(threads)
                        .map(|s| {
                            let c = slots[s]
                                .lock()
                                .expect("context slot poisoned")
                                .take()
                                .expect("context taken once");
                            (s, job(s, c))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (s, t) in h.join().expect("shard worker panicked") {
                out[s] = Some(t);
            }
        }
    });
    out.into_iter()
        .map(|t| t.expect("all shards completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_distinct_streams() {
        let mut seeds: Vec<u64> = (0..64).map(|s| split_seed(0x5EED, s)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "shard seeds must be pairwise distinct");
        // A zero master seed must not collapse the streams either.
        assert_ne!(split_seed(0, 0), split_seed(0, 1));
        assert_ne!(split_seed(0, 0), 0);
    }

    #[test]
    fn split_seed_is_pure() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
    }

    #[test]
    fn shard_ranges_aligned_boundaries() {
        for (total, shards, align) in [
            (1000u64, 16usize, 64u64),
            (64, 16, 64),
            (63, 16, 64),
            (4096, 3, 64),
            (130, 4, 64),
            (0, 4, 64),
            (7, 3, 1),
        ] {
            let ranges = shard_ranges_aligned(total, shards, align);
            assert_eq!(ranges.len(), shards);
            let mut cursor = 0u64;
            for &(s, e) in &ranges {
                assert_eq!(s, cursor, "ranges must be contiguous");
                assert!(s <= e);
                // Interior boundaries sit on block multiples.
                if e != total {
                    assert_eq!(e % align, 0, "unaligned cut at {e}");
                }
                cursor = e;
            }
            assert_eq!(cursor, total, "ranges must cover [0, total)");
        }
        // align=1 degenerates to plain shard_ranges.
        assert_eq!(shard_ranges_aligned(100, 7, 1), shard_ranges(100, 7));
    }

    #[test]
    fn shard_counts_conserve_total() {
        for total in [0u64, 1, 15, 16, 17, 1000, 12345] {
            for shards in [1usize, 2, 3, 16, 40] {
                let counts = shard_counts(total, shards);
                assert_eq!(counts.len(), shards);
                assert_eq!(counts.iter().sum::<u64>(), total, "{total}/{shards}");
                // Remainder goes to the earliest shards: sizes are
                // non-increasing and differ by at most one.
                let max = *counts.iter().max().unwrap();
                let min = *counts.iter().min().unwrap();
                assert!(max - min <= 1);
                assert!(counts.windows(2).all(|w| w[0] >= w[1]));
            }
        }
    }

    #[test]
    fn shard_ranges_tile_the_interval() {
        for total in [0u64, 1, 31, 32, 33] {
            let ranges = shard_ranges(total, 4);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, total);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
            }
        }
    }

    #[test]
    fn run_shards_ordered_and_thread_invariant() {
        let job = |s: usize| (s * s) as u64;
        let serial = run_shards(16, 1, job);
        for threads in [2, 3, 4, 16, 99] {
            assert_eq!(run_shards(16, threads, job), serial);
        }
        assert_eq!(serial[3], 9);
    }

    #[test]
    fn run_shards_with_passes_owned_contexts() {
        let contexts: Vec<String> = (0..8).map(|i| format!("ctx{i}")).collect();
        let results = run_shards_with(contexts.clone(), 4, |s, c: String| format!("{s}:{c}"));
        for (s, r) in results.iter().enumerate() {
            assert_eq!(r, &format!("{s}:ctx{s}"));
        }
        let serial = run_shards_with(contexts, 1, |s, c: String| format!("{s}:{c}"));
        assert_eq!(results, serial);
    }

    #[test]
    fn resolve_threads_explicit_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn stalled_shards_still_merge_thread_invariantly() {
        // A shard stall delays work but must never change it: results
        // stay bit-identical to the serial, fault-free run.
        let job = |s: usize| (s * 7 + 1) as u64;
        let clean = run_shards(8, 1, job);
        let plan = qrel_faults::FaultPlan::new(0xABCD).with_rule(
            qrel_faults::points::PAR_SHARD_STALL,
            0.5,
            5,
            0,
        );
        let _guard = plan.arm();
        for threads in [1, 2, 4, 8] {
            assert_eq!(run_shards(8, threads, job), clean);
        }
    }
}
