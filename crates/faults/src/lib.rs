//! `qrel-faults` — a seeded, deterministic fault-injection plane.
//!
//! Production traffic over the Grädel–Gurevich–Hirsch dichotomy mixes
//! sub-millisecond safe queries with #P-hard solves that trip budgets,
//! stall shards, or (when a bug slips in) panic a ladder rung. The serve
//! path is supposed to *degrade, never lie, never hang* under all of
//! that — but an invariant nobody exercises is a hope, not a property.
//! This crate makes failure a first-class, replayable input:
//!
//! * **Named injection points** ([`points`]) are compiled into the
//!   runtime, parallel, budget, and serve crates. Each hook is a single
//!   relaxed atomic load when no plan is armed — the disarmed fault
//!   plane costs one predictable-branch per call site and allocates
//!   nothing.
//! * **A [`FaultPlan`]** `{ seed, rules }` arms the plane. Every rule
//!   names a point and a per-hit firing probability; each point draws
//!   from its own SplitMix64-derived stream, so the decision for the
//!   i-th hit of point `p` is a pure function of `(seed, p, i)` — a
//!   `(seed, plan)` pair replays bit-identically, on any thread count,
//!   because threads only change *which worker asks*, never the answer
//!   for a given hit index.
//! * **Arming is scoped**: [`FaultPlan::arm`] returns a guard holding a
//!   process-wide session lock; dropping it disarms. Concurrent tests
//!   serialize instead of contaminating each other.
//!
//! The semantics of a fired fault live at the call site (a `*.panic`
//! point panics, a `*.stall` point sleeps `delay_ms`, `cache.reply.poison`
//! flips a byte, `budget.charge.spurious_trip` rejects a charge); this
//! crate only decides *whether* hit `i` fires and with what magnitude.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use serde::{Deserialize, Serialize};

/// The registry of injection-point names threaded through the stack.
/// Points are plain strings so a plan can name per-method rungs
/// (`runtime.rung.exact.panic`) without this crate depending on the
/// runtime's `Method` enum; these constants document the fixed surface.
pub mod points {
    /// Panic inside a serve worker's request handler.
    pub const SERVE_WORKER_PANIC: &str = "serve.worker.panic";
    /// Stall the connection read path in a serve worker.
    pub const SERVE_CONN_SLOW_READ: &str = "serve.conn.slow_read";
    /// Panic at the start of ladder rung `<method>`:
    /// `runtime.rung.<method>.panic` (method ∈ qf|exact|fptras|padding|mc).
    pub const RUNTIME_RUNG_PANIC_PREFIX: &str = "runtime.rung.";
    /// Stall ladder rung `<method>` for `delay_ms`:
    /// `runtime.rung.<method>.stall`.
    pub const RUNTIME_RUNG_STALL_PREFIX: &str = "runtime.rung.";
    /// Stall one shard of a parallel fan-out for `delay_ms`.
    pub const PAR_SHARD_STALL: &str = "par.shard.stall";
    /// Corrupt a cached serve reply before it is returned.
    pub const CACHE_REPLY_POISON: &str = "cache.reply.poison";
    /// Reject a budget charge that should have been admitted.
    pub const BUDGET_SPURIOUS_TRIP: &str = "budget.charge.spurious_trip";
    /// Make a scheduler submit report a full queue despite capacity
    /// remaining (spurious 429 upstream).
    pub const SCHED_QUEUE_SPURIOUS_FULL: &str = "sched.queue.spurious_full";
    /// Stall a scheduler worker for `delay_ms` just before it executes
    /// a job.
    pub const SCHED_WORKER_STALL: &str = "sched.worker.stall";
    /// Tear a store segment write: persist a prefix of the file, then
    /// fail the write. The commit must abort with the manifest
    /// untouched — the torn file is never referenced.
    pub const STORE_SEGMENT_TORN_WRITE: &str = "store.segment.torn_write";
    /// Crash a store commit after the segment file is published but
    /// before the manifest is — reopen must recover the previous state
    /// and garbage-collect the orphan segment.
    pub const STORE_COMMIT_CRASH: &str = "store.commit.crash";

    /// The full point name for a runtime rung panic.
    pub fn rung_panic(method: &str) -> String {
        format!("runtime.rung.{method}.panic")
    }

    /// The full point name for a runtime rung stall.
    pub fn rung_stall(method: &str) -> String {
        format!("runtime.rung.{method}.stall")
    }
}

/// One rule of a [`FaultPlan`]: fire at `point` with per-hit
/// probability `prob`, at most `max_fires` times, stalling `delay_ms`
/// where the point's semantics involve a delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Exact injection-point name (see [`points`]).
    pub point: String,
    /// Per-hit firing probability in `[0, 1]`. The draw for hit `i` is
    /// `splitmix(seed ⊕ fnv(point), i)` mapped to `[0, 1)` — pure, so
    /// replay is bit-exact.
    pub prob: f64,
    /// Stall duration for `*.stall` / `*.slow_read` points; ignored by
    /// panic/poison/trip points.
    #[serde(default)]
    pub delay_ms: u64,
    /// Stop firing after this many fires (`0` = unlimited).
    #[serde(default)]
    pub max_fires: u64,
}

/// A seeded fault schedule: which points misbehave, how often, and from
/// which deterministic stream.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed for all per-point decision streams.
    pub seed: u64,
    /// The armed rules. Multiple rules for one point are allowed; the
    /// first matching rule wins (keep plans one-rule-per-point).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Builder-style rule addition.
    pub fn with_rule(mut self, point: &str, prob: f64, delay_ms: u64, max_fires: u64) -> Self {
        self.rules.push(FaultRule {
            point: point.to_string(),
            prob,
            delay_ms,
            max_fires,
        });
        self
    }

    /// Arm this plan process-wide. The returned guard holds the global
    /// fault-session lock — concurrent armers block — and disarms on
    /// drop. Per-point hit counters start from zero on every arm, so
    /// the schedule replays from the top.
    pub fn arm(&self) -> FaultGuard {
        let session = session_lock().lock().unwrap_or_else(|e| e.into_inner());
        let armed = Arc::new(ArmedPlan::new(self.clone()));
        *plan_slot().lock().expect("fault plan slot poisoned") = Some(armed);
        ARMED.store(true, Ordering::Release);
        FaultGuard { _session: session }
    }

    /// The deterministic fire/no-fire decision sequence a rule's point
    /// would see for its first `n` hits (ignoring `max_fires`). This is
    /// the replayable "fault schedule" — byte-identical for a given
    /// `(seed, point, prob)` on every run and thread count.
    pub fn schedule_preview(&self, point: &str, n: u64) -> Vec<bool> {
        let Some(rule) = self.rules.iter().find(|r| r.point == point) else {
            return vec![false; n as usize];
        };
        (0..n)
            .map(|i| decision(self.seed, point, i, rule.prob))
            .collect()
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan serialization is infallible")
    }

    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad fault plan JSON: {e}"))
    }

    /// Largest `delay_ms` any rule can inject — the term a latency
    /// invariant must budget for on top of deadlines and watchdog
    /// periods.
    pub fn max_delay_ms(&self) -> u64 {
        self.rules.iter().map(|r| r.delay_ms).max().unwrap_or(0)
    }
}

/// Hold the fault session exclusively while injecting *nothing*: arms
/// an empty plan, so `armed()` is true but no point ever fires. Tests
/// that must not observe another test's injected faults take this guard
/// — it serializes them with fault-armed tests through the session
/// lock, which is the whole point of arming being process-global.
pub fn quiesce() -> FaultGuard {
    FaultPlan::new(0).arm()
}

/// RAII guard for an armed plan; disarms (and releases the session
/// lock) on drop.
pub struct FaultGuard {
    _session: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *plan_slot().lock().expect("fault plan slot poisoned") = None;
    }
}

/// A fired fault, carrying the magnitude the call site should apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fired {
    pub delay_ms: u64,
}

// ---------------------------------------------------------------------------
// Armed state

struct RuleState {
    rule: FaultRule,
    hits: AtomicU64,
    fires: AtomicU64,
}

struct ArmedPlan {
    seed: u64,
    states: Vec<RuleState>,
}

impl ArmedPlan {
    fn new(plan: FaultPlan) -> Self {
        ArmedPlan {
            seed: plan.seed,
            states: plan
                .rules
                .into_iter()
                .map(|rule| RuleState {
                    rule,
                    hits: AtomicU64::new(0),
                    fires: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Arc<ArmedPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<ArmedPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// True iff a plan is armed. The single relaxed load every hook pays
/// when the fault plane is dormant.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// FNV-1a over the point name, folded into the seed so each point gets
/// an unrelated SplitMix64 stream.
fn point_hash(point: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in point.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — the same stream generator `qrel-par` uses for
/// shard seeds, reproduced here so this crate stays at the bottom of
/// the workspace.
fn splitmix(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pure per-hit decision: does hit `i` of `point` fire under
/// `(seed, prob)`? 53 mantissa bits of the stream value mapped to
/// `[0, 1)` and compared against `prob`.
fn decision(seed: u64, point: &str, hit: u64, prob: f64) -> bool {
    if prob <= 0.0 {
        return false;
    }
    if prob >= 1.0 {
        return true;
    }
    let u = splitmix(seed ^ point_hash(point), hit) >> 11;
    (u as f64) * (1.0 / (1u64 << 53) as f64) < prob
}

/// Record a hit at `point` and return the fired fault, if the armed
/// plan says this hit fires. `None` when disarmed, when no rule names
/// the point, when the stream says "pass", or when the rule's
/// `max_fires` is spent.
pub fn hit(point: &str) -> Option<Fired> {
    if !armed() {
        return None;
    }
    let plan = plan_slot()
        .lock()
        .expect("fault plan slot poisoned")
        .clone()?;
    let state = plan.states.iter().find(|s| s.rule.point == point)?;
    let i = state.hits.fetch_add(1, Ordering::Relaxed);
    if !decision(plan.seed, point, i, state.rule.prob) {
        return None;
    }
    if state.rule.max_fires > 0 {
        // Claim a fire slot; back out if the cap is spent.
        let prev = state.fires.fetch_add(1, Ordering::Relaxed);
        if prev >= state.rule.max_fires {
            return None;
        }
    } else {
        state.fires.fetch_add(1, Ordering::Relaxed);
    }
    Some(Fired {
        delay_ms: state.rule.delay_ms,
    })
}

/// Like [`hit`] but with a caller-supplied index instead of the global
/// hit counter — for call sites with a natural deterministic index (a
/// shard number, a rung index), making the fired set independent of
/// thread interleaving, not just the decision stream. `max_fires` caps
/// by counting firing indices below `index`, so the cap is deterministic
/// too (indices are expected to be small, e.g. `< DEFAULT_SHARDS`).
pub fn hit_at(point: &str, index: u64) -> Option<Fired> {
    if !armed() {
        return None;
    }
    let plan = plan_slot()
        .lock()
        .expect("fault plan slot poisoned")
        .clone()?;
    let state = plan.states.iter().find(|s| s.rule.point == point)?;
    if !decision(plan.seed, point, index, state.rule.prob) {
        return None;
    }
    if state.rule.max_fires > 0 {
        let earlier = (0..index)
            .filter(|&j| decision(plan.seed, point, j, state.rule.prob))
            .count() as u64;
        if earlier >= state.rule.max_fires {
            return None;
        }
    }
    Some(Fired {
        delay_ms: state.rule.delay_ms,
    })
}

/// Sleep the rule's `delay_ms` if the armed plan fires at `point` for
/// the deterministic `index` (see [`hit_at`]). Returns the injected
/// delay in milliseconds.
#[inline]
pub fn stall_at(point: &str, index: u64) -> u64 {
    if !armed() {
        return 0;
    }
    match hit_at(point, index) {
        Some(f) if f.delay_ms > 0 => {
            std::thread::sleep(std::time::Duration::from_millis(f.delay_ms));
            f.delay_ms
        }
        Some(_) | None => 0,
    }
}

/// Panic if the armed plan fires at `point`. The panic message carries
/// the point name so caught panics are attributable in traces.
#[inline]
pub fn maybe_panic(point: &str) {
    if armed() && hit(point).is_some() {
        panic!("injected fault: {point}");
    }
}

/// Sleep the rule's `delay_ms` if the armed plan fires at `point`.
/// Returns the injected delay (0 when nothing fired) so call sites can
/// account for it.
#[inline]
pub fn maybe_stall(point: &str) -> u64 {
    if !armed() {
        return 0;
    }
    match hit(point) {
        Some(f) if f.delay_ms > 0 => {
            std::thread::sleep(std::time::Duration::from_millis(f.delay_ms));
            f.delay_ms
        }
        Some(_) | None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(0xC0FFEE)
            .with_rule(points::SERVE_WORKER_PANIC, 0.5, 0, 0)
            .with_rule(points::PAR_SHARD_STALL, 0.25, 40, 2)
    }

    #[test]
    fn disarmed_plane_is_inert() {
        assert!(!armed());
        assert!(hit(points::SERVE_WORKER_PANIC).is_none());
        maybe_panic(points::SERVE_WORKER_PANIC); // must not panic
        assert_eq!(maybe_stall(points::PAR_SHARD_STALL), 0);
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_point_index() {
        let p = plan();
        let a = p.schedule_preview(points::SERVE_WORKER_PANIC, 256);
        let b = p.schedule_preview(points::SERVE_WORKER_PANIC, 256);
        assert_eq!(a, b);
        // Distinct points see unrelated streams.
        let c = p.schedule_preview(points::PAR_SHARD_STALL, 256);
        assert_ne!(a, c);
        // A different seed reshuffles the schedule.
        let mut p2 = p.clone();
        p2.seed ^= 1;
        assert_ne!(a, p2.schedule_preview(points::SERVE_WORKER_PANIC, 256));
        // prob=0.5 actually mixes fires and passes.
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn armed_plan_replays_its_preview_and_disarms_on_drop() {
        let p = plan();
        let preview = p.schedule_preview(points::SERVE_WORKER_PANIC, 64);
        {
            let _guard = p.arm();
            assert!(armed());
            let lived: Vec<bool> = (0..64)
                .map(|_| hit(points::SERVE_WORKER_PANIC).is_some())
                .collect();
            assert_eq!(lived, preview);
            // Unlisted points never fire.
            assert!(hit("no.such.point").is_none());
        }
        assert!(!armed());
        // Re-arming restarts the per-point counters: same schedule again.
        let _guard = p.arm();
        let relived: Vec<bool> = (0..64)
            .map(|_| hit(points::SERVE_WORKER_PANIC).is_some())
            .collect();
        assert_eq!(relived, preview);
    }

    #[test]
    fn decisions_are_thread_count_invariant() {
        // The per-hit decision depends only on (seed, point, index) —
        // asking from many threads cannot change any answer, so the
        // multiset of decisions over a fixed hit range is fixed.
        let p = plan();
        let serial: Vec<bool> = (0..96)
            .map(|i| decision(p.seed, points::PAR_SHARD_STALL, i, 0.25))
            .collect();
        for threads in [2usize, 4, 8] {
            let chunk = 96 / threads;
            let par: Vec<bool> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let seed = p.seed;
                        s.spawn(move || {
                            ((w * chunk) as u64..((w + 1) * chunk) as u64)
                                .map(|i| decision(seed, points::PAR_SHARD_STALL, i, 0.25))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn max_fires_caps_the_burst() {
        let p = FaultPlan::new(7).with_rule(points::BUDGET_SPURIOUS_TRIP, 1.0, 0, 3);
        let _guard = p.arm();
        let fired = (0..100)
            .filter(|_| hit(points::BUDGET_SPURIOUS_TRIP).is_some())
            .count();
        assert_eq!(fired, 3);
    }

    #[test]
    fn plan_json_round_trips() {
        let p = plan();
        let back = FaultPlan::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.max_delay_ms(), 40);
        assert!(FaultPlan::from_json("not json").is_err());
    }

    #[test]
    fn prob_extremes() {
        let p = FaultPlan::new(1)
            .with_rule("always", 1.0, 0, 0)
            .with_rule("never", 0.0, 0, 0);
        assert!(p.schedule_preview("always", 32).iter().all(|&f| f));
        assert!(p.schedule_preview("never", 32).iter().all(|&f| !f));
    }

    #[test]
    fn rung_point_names() {
        assert_eq!(points::rung_panic("exact"), "runtime.rung.exact.panic");
        assert_eq!(points::rung_stall("mc"), "runtime.rung.mc.stall");
    }
}
