//! Property-based tests for the probabilistic model.

use proptest::prelude::*;
use qrel_arith::BigRational;
use qrel_db::{DatabaseBuilder, Fact};
use qrel_prob::{UnreliableDatabase, WorldSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ud_strategy() -> impl Strategy<Value = UnreliableDatabase> {
    (
        1usize..4,
        proptest::collection::vec((0usize..12, 0i64..=6, 1u64..=6), 0..6),
    )
        .prop_map(|(n, errors)| {
            let db = DatabaseBuilder::new()
                .universe_size(n)
                .relation("E", 2)
                .relation("S", 1)
                .build();
            let mut ud = UnreliableDatabase::reliable(db);
            let indexer = ud.indexer().clone();
            let total = indexer.total();
            for (fi, num, den) in errors {
                let p = BigRational::from_ratio(num.min(den as i64), den);
                ud.set_error(&indexer.fact_at(fi % total), p).unwrap();
            }
            ud
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn world_probabilities_sum_to_one(ud in ud_strategy()) {
        let total = ud
            .worlds()
            .fold(BigRational::zero(), |acc, (_, p)| acc.add_ref(&p));
        prop_assert_eq!(total, BigRational::one());
    }

    #[test]
    fn every_enumerated_world_matches_direct_formula(ud in ud_strategy()) {
        for (w, p) in ud.worlds() {
            prop_assert_eq!(ud.world_probability(&w), p);
        }
    }

    #[test]
    fn sampled_worlds_have_positive_probability(ud in ud_strategy(), seed in 0u64..100) {
        let sampler = WorldSampler::new(&ud);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..5 {
            let w = sampler.sample(&mut rng);
            prop_assert!(ud.world_probability(&w) > BigRational::zero());
        }
    }

    #[test]
    fn nu_and_mu_are_complementary_on_observed_truth(ud in ud_strategy()) {
        let indexer = ud.indexer().clone();
        for i in 0..indexer.total() {
            let fact = indexer.fact_at(i);
            let nu = ud.nu_at(i);
            let mu = ud.mu_at(i).clone();
            if ud.observed().holds(&fact) {
                prop_assert_eq!(nu, mu.one_minus());
            } else {
                prop_assert_eq!(nu, mu);
            }
        }
    }

    #[test]
    fn world_count_matches_enumeration(ud in ud_strategy()) {
        prop_assert_eq!(ud.worlds().count() as u64, ud.world_count().unwrap());
    }

    #[test]
    fn mode_world_is_a_most_probable_world(ud in ud_strategy()) {
        let mode = ud.mode_world();
        let p_mode = ud.world_probability(&mode);
        for (_, p) in ud.worlds() {
            prop_assert!(p <= p_mode);
        }
    }

    #[test]
    fn sound_g_clears_every_world(ud in ud_strategy()) {
        use qrel_arith::BigInt;
        use qrel_prob::normalizer::sound_g;
        let g = BigRational::new(
            BigInt::from_biguint(sound_g(&ud)),
            BigInt::one(),
        );
        for (_, p) in ud.worlds() {
            prop_assert!(p.mul_ref(&g).is_integer());
        }
    }

    #[test]
    fn flipping_observation_flips_nu(n in 1usize..4) {
        let db = DatabaseBuilder::new().universe_size(n).relation("S", 1).build();
        let mut with_fact = db.clone();
        with_fact.set_fact(&Fact::new(0, vec![0]), true);
        let p = BigRational::from_ratio(1, 3);
        let mut ud_off = UnreliableDatabase::reliable(db);
        ud_off.set_error(&Fact::new(0, vec![0]), p.clone()).unwrap();
        let mut ud_on = UnreliableDatabase::reliable(with_fact);
        ud_on.set_error(&Fact::new(0, vec![0]), p.clone()).unwrap();
        prop_assert_eq!(ud_off.nu(&Fact::new(0, vec![0])), p.clone());
        prop_assert_eq!(ud_on.nu(&Fact::new(0, vec![0])), p.one_minus());
    }
}
