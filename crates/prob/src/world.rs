//! Exact enumeration of the possible-world space `Ω(𝔇)`.

use crate::model::UnreliableDatabase;
use qrel_arith::BigRational;
use qrel_db::Database;

/// Iterator over all worlds with nonzero probability, with their exact
/// probabilities. There are `2^u` of them for `u` uncertain facts — this
/// is the exponential enumeration at the heart of the FP^#P algorithm of
/// Theorem 4.2, usable in practice for small `u` and as a ground-truth
/// oracle for the approximation algorithms.
pub struct WorldIter<'a> {
    ud: &'a UnreliableDatabase,
    /// Base world: observed database with `μ = 1` facts pre-flipped.
    base: Database,
    uncertain: Vec<usize>,
    /// For each uncertain fact: (ν, 1−ν) — probability of true / false.
    nu: Vec<(BigRational, BigRational)>,
    next_mask: u64,
    done: bool,
}

impl<'a> WorldIter<'a> {
    /// Create the iterator.
    ///
    /// # Panics
    /// Panics if there are more than 63 uncertain facts (the enumeration
    /// would not terminate in any case).
    pub fn new(ud: &'a UnreliableDatabase) -> Self {
        let uncertain = ud.uncertain_facts();
        assert!(
            uncertain.len() < 64,
            "world enumeration limited to 63 uncertain facts (got {})",
            uncertain.len()
        );
        let base = ud.mode_world_base();
        let nu = uncertain
            .iter()
            .map(|&i| {
                let nu = ud.nu_at(i);
                let co = nu.one_minus();
                (nu, co)
            })
            .collect();
        WorldIter {
            ud,
            base,
            uncertain,
            nu,
            next_mask: 0,
            done: false,
        }
    }

    /// Number of worlds this iterator will yield.
    pub fn len(&self) -> u64 {
        1u64 << self.uncertain.len()
    }

    pub fn is_empty(&self) -> bool {
        false // always at least the base world
    }
}

impl UnreliableDatabase {
    /// Observed database with every `μ = 1` fact flipped (the deterministic
    /// part of each world).
    pub(crate) fn mode_world_base(&self) -> Database {
        let mut base = self.observed().clone();
        let one = BigRational::one();
        for i in 0..self.indexer().total() {
            if self.mu_at(i) == &one {
                let fact = self.indexer().fact_at(i);
                let observed = self.observed().holds(&fact);
                base.set_fact(&fact, !observed);
            }
        }
        base
    }

    /// Iterate all nonzero-probability worlds with exact probabilities.
    pub fn worlds(&self) -> WorldIter<'_> {
        WorldIter::new(self)
    }
}

impl UnreliableDatabase {
    /// Visit every nonzero-probability world in Gray-code order: between
    /// consecutive worlds exactly one fact flips, so the visitor pays one
    /// `set_fact` and one rational multiply/divide per world instead of
    /// rebuilding the database — the fast path for the exact engines.
    ///
    /// The visitor receives each world by reference with its exact
    /// probability; returning `false` stops early.
    ///
    /// # Panics
    /// Panics beyond 63 uncertain facts.
    pub fn visit_worlds<F>(&self, visitor: F)
    where
        F: FnMut(&Database, &BigRational) -> bool,
    {
        let u = self.uncertain_facts().len();
        assert!(
            u < 64,
            "world enumeration limited to 63 uncertain facts (got {u})"
        );
        self.visit_worlds_range(0, 1u64 << u, visitor);
    }

    /// Visit the contiguous slice `[start, end)` of the Gray-code world
    /// sequence of [`Self::visit_worlds`] (world `k` is the Gray code of
    /// `k`). Partitioning `[0, 2^u)` into ranges therefore visits every
    /// world exactly once — the basis of the parallel exact engines:
    /// each shard takes one range and pays `O(u)` rational work to seed
    /// its starting world, then the usual one flip per step.
    ///
    /// # Panics
    /// Panics beyond 63 uncertain facts or when the range exceeds
    /// `[0, 2^u]`.
    pub fn visit_worlds_range<F>(&self, start: u64, end: u64, mut visitor: F)
    where
        F: FnMut(&Database, &BigRational) -> bool,
    {
        let uncertain = self.uncertain_facts();
        assert!(
            uncertain.len() < 64,
            "world enumeration limited to 63 uncertain facts (got {})",
            uncertain.len()
        );
        let total = 1u64 << uncertain.len();
        assert!(
            start <= end && end <= total,
            "world range [{start}, {end}) out of bounds for {total} worlds"
        );
        if start == end {
            return;
        }
        let mut world = self.mode_world_base();
        let mut prob = BigRational::one();
        let nu: Vec<(BigRational, BigRational)> = uncertain
            .iter()
            .map(|&i| {
                let nu = self.nu_at(i);
                (nu.clone(), nu.one_minus())
            })
            .collect();
        // Seed the state at position `start`: Gray code of the index.
        let gray = start ^ (start >> 1);
        let mut state = vec![false; uncertain.len()];
        for (bit, &fact_ix) in uncertain.iter().enumerate() {
            let on = (gray >> bit) & 1 == 1;
            state[bit] = on;
            let fact = self.indexer().fact_at(fact_ix);
            world.set_fact(&fact, on);
            prob = prob.mul_ref(if on { &nu[bit].0 } else { &nu[bit].1 });
        }
        if !visitor(&world, &prob) {
            return;
        }
        // Standard Gray code: step k flips the bit at trailing_zeros(k).
        for k in (start + 1)..end {
            let bit = k.trailing_zeros() as usize;
            let fact = self.indexer().fact_at(uncertain[bit]);
            let new_value = !state[bit];
            state[bit] = new_value;
            world.set_fact(&fact, new_value);
            let (on, off) = &nu[bit];
            // Both factors are nonzero for genuinely uncertain facts.
            prob = if new_value {
                prob.div_ref(off).mul_ref(on)
            } else {
                prob.div_ref(on).mul_ref(off)
            };
            if !visitor(&world, &prob) {
                return;
            }
        }
    }
}

impl Iterator for WorldIter<'_> {
    type Item = (Database, BigRational);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mask = self.next_mask;
        let mut world = self.base.clone();
        let mut prob = BigRational::one();
        for (bit, &fact_ix) in self.uncertain.iter().enumerate() {
            let fact = self.ud.indexer().fact_at(fact_ix);
            let set_true = (mask >> bit) & 1 == 1;
            world.set_fact(&fact, set_true);
            let (nu, co) = &self.nu[bit];
            prob = prob.mul_ref(if set_true { nu } else { co });
        }
        if mask + 1 == 1u64 << self.uncertain.len() {
            self.done = true;
        } else {
            self.next_mask += 1;
        }
        Some((world, prob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_arith::BigRational;
    use qrel_db::{DatabaseBuilder, Fact};

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn setup() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(1, 4)).unwrap();
        ud
    }

    #[test]
    fn enumerates_all_worlds_with_correct_probabilities() {
        let ud = setup();
        let worlds: Vec<_> = ud.worlds().collect();
        assert_eq!(worlds.len(), 4);
        // Probabilities sum to exactly 1.
        let total = worlds
            .iter()
            .fold(BigRational::zero(), |acc, (_, p)| acc.add_ref(p));
        assert_eq!(total, BigRational::one());
        // Each enumerated probability matches the model's direct formula.
        for (w, p) in &worlds {
            assert_eq!(&ud.world_probability(w), p, "world:\n{w}");
        }
        // The observed world has probability (2/3)(3/4) = 1/2.
        let observed = ud.observed().clone();
        let (_, p_obs) = worlds
            .iter()
            .find(|(w, _)| *w == observed)
            .expect("observed world enumerated");
        assert_eq!(p_obs, &r(1, 2));
    }

    #[test]
    fn worlds_are_distinct() {
        let ud = setup();
        let worlds: Vec<_> = ud.worlds().map(|(w, _)| w).collect();
        for i in 0..worlds.len() {
            for j in (i + 1)..worlds.len() {
                assert_ne!(worlds[i], worlds[j]);
            }
        }
    }

    #[test]
    fn deterministic_facts_pinned_in_every_world() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .relation("T", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![1]), r(1, 2)).unwrap(); // S(1) uncertain
        ud.set_error(&Fact::new(1, vec![0]), r(1, 1)).unwrap(); // T(0) surely flipped
        for (w, p) in ud.worlds() {
            assert!(w.holds(&Fact::new(0, vec![0])), "S(0) stays true");
            assert!(w.holds(&Fact::new(1, vec![0])), "T(0) flipped on");
            assert!(!w.holds(&Fact::new(1, vec![1])), "T(1) stays false");
            assert_eq!(p, r(1, 2));
        }
        assert_eq!(ud.worlds().count(), 2);
    }

    #[test]
    fn fully_reliable_single_world() {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .build();
        let ud = UnreliableDatabase::reliable(db.clone());
        let worlds: Vec<_> = ud.worlds().collect();
        assert_eq!(worlds.len(), 1);
        assert_eq!(worlds[0].0, db);
        assert_eq!(worlds[0].1, BigRational::one());
    }

    #[test]
    fn len_matches_count() {
        let ud = setup();
        assert_eq!(ud.worlds().len(), 4);
        assert_eq!(ud.worlds().count(), 4);
    }

    #[test]
    fn gray_code_visitor_matches_iterator() {
        let ud = setup();
        let mut expected: Vec<(qrel_db::Database, BigRational)> = ud.worlds().collect();
        let mut visited: Vec<(qrel_db::Database, BigRational)> = Vec::new();
        ud.visit_worlds(|w, p| {
            visited.push((w.clone(), p.clone()));
            true
        });
        assert_eq!(visited.len(), expected.len());
        // Same multiset of (world, probability) pairs, different order.
        let key = |(w, p): &(qrel_db::Database, BigRational)| (format!("{w}"), p.clone());
        expected.sort_by_key(key);
        visited.sort_by_key(key);
        assert_eq!(expected, visited);
    }

    #[test]
    fn gray_code_visitor_early_stop() {
        let ud = setup();
        let mut seen = 0;
        ud.visit_worlds(|_, _| {
            seen += 1;
            seen < 2
        });
        assert_eq!(seen, 2);
    }

    #[test]
    fn range_partition_matches_full_visit() {
        // Any partition of [0, 2^u) into contiguous ranges must visit
        // exactly the worlds of the full Gray-code sweep, in order.
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(1, 4)).unwrap();
        ud.set_error(&Fact::new(0, vec![2]), r(2, 5)).unwrap();
        let mut full: Vec<(qrel_db::Database, BigRational)> = Vec::new();
        ud.visit_worlds(|w, p| {
            full.push((w.clone(), p.clone()));
            true
        });
        assert_eq!(full.len(), 8);
        for cuts in [vec![0u64, 8], vec![0, 3, 8], vec![0, 1, 4, 6, 8]] {
            let mut pieced: Vec<(qrel_db::Database, BigRational)> = Vec::new();
            for pair in cuts.windows(2) {
                ud.visit_worlds_range(pair[0], pair[1], |w, p| {
                    pieced.push((w.clone(), p.clone()));
                    true
                });
            }
            assert_eq!(pieced, full, "partition {cuts:?}");
        }
    }

    #[test]
    fn empty_range_visits_nothing() {
        let ud = setup();
        let mut seen = 0;
        ud.visit_worlds_range(2, 2, |_, _| {
            seen += 1;
            true
        });
        assert_eq!(seen, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_range_rejected() {
        let ud = setup();
        ud.visit_worlds_range(0, 5, |_, _| true);
    }

    #[test]
    fn gray_code_visitor_pinned_facts() {
        let db = qrel_db::DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(
            &qrel_db::Fact::new(0, vec![1]),
            BigRational::from_ratio(1, 1),
        )
        .unwrap(); // pinned flip
        let mut count = 0;
        ud.visit_worlds(|w, p| {
            assert!(w.holds(&qrel_db::Fact::new(0, vec![0])));
            assert!(w.holds(&qrel_db::Fact::new(0, vec![1])));
            assert_eq!(p, &BigRational::one());
            count += 1;
            true
        });
        assert_eq!(count, 1);
    }
}
