//! The pair `𝔇 = (𝔄, μ)` and the induced fact probabilities `ν`.

use qrel_arith::BigRational;
use qrel_db::{Database, Fact, FactIndexer};
use std::fmt;

/// Which facts are allowed to carry positive error probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorModel {
    /// The paper's model: any atomic statement may be erroneous.
    #[default]
    Full,
    /// de Rougemont's restricted model \[9\] (Remark in Section 3): only
    /// *positive* observed facts are unreliable, i.e. `𝔄 ⊨ ¬Rā` forces
    /// `μ(Rā) = 0`.
    PositiveOnly,
}

/// Validation errors for unreliable databases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An error probability outside `[0, 1]`.
    NotAProbability { fact: String, value: String },
    /// Positive-only model violated: error probability on a negative fact.
    NegativeFactError { fact: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotAProbability { fact, value } => {
                write!(f, "μ({fact}) = {value} is not a probability in [0,1]")
            }
            ModelError::NegativeFactError { fact } => write!(
                f,
                "positive-only model: μ({fact}) > 0 but the fact is false in the observed database"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// An unreliable database `𝔇 = (𝔄, μ)`.
///
/// `μ` is stored densely, one rational per atomic fact in
/// [`FactIndexer`] order; facts never touched keep `μ = 0` (fully
/// reliable), so sparse workloads stay cheap to build.
#[derive(Debug, Clone)]
pub struct UnreliableDatabase {
    observed: Database,
    indexer: FactIndexer,
    mu: Vec<BigRational>,
    model: ErrorModel,
}

impl UnreliableDatabase {
    /// Wrap an observed database with all error probabilities zero.
    pub fn reliable(observed: Database) -> Self {
        let indexer = observed.fact_indexer();
        let mu = vec![BigRational::zero(); indexer.total()];
        UnreliableDatabase {
            observed,
            indexer,
            mu,
            model: ErrorModel::Full,
        }
    }

    /// The alternative presentation from the Remark in Section 2: instead
    /// of an observed database plus error probabilities, give directly the
    /// marginal probability `ν(Rā)` that each fact holds in the actual
    /// database. The observed database is taken to be the most likely
    /// value per fact (`ν > 1/2` → observed true), which reproduces the
    /// same distribution `Ω(𝔇)` with `μ = min(ν, 1 − ν)`.
    ///
    /// `marginals` lists `(fact, ν)`; unmentioned facts get `ν = 0`
    /// (certainly absent).
    pub fn from_marginals(
        format: Database,
        marginals: impl IntoIterator<Item = (Fact, BigRational)>,
    ) -> Result<Self, ModelError> {
        let mut observed = format;
        // Clear all relations: the observed content is derived from ν.
        for i in 0..observed.vocabulary().len() {
            observed.relation_mut(i).clear();
        }
        let half = BigRational::from_ratio(1, 2);
        let collected: Vec<(Fact, BigRational)> = marginals.into_iter().collect();
        for (fact, nu) in &collected {
            if !nu.is_probability() {
                return Err(ModelError::NotAProbability {
                    fact: fact.display(observed.vocabulary()).to_string(),
                    value: nu.to_string(),
                });
            }
            if *nu > half {
                observed.set_fact(fact, true);
            }
        }
        let mut ud = UnreliableDatabase::reliable(observed);
        for (fact, nu) in collected {
            let mu = if ud.observed.holds(&fact) {
                nu.one_minus()
            } else {
                nu
            };
            ud.set_error(&fact, mu)?;
        }
        Ok(ud)
    }

    /// Restrict to de Rougemont's positive-only model; existing and future
    /// error assignments on negative facts are rejected.
    pub fn with_model(mut self, model: ErrorModel) -> Result<Self, ModelError> {
        self.model = model;
        if model == ErrorModel::PositiveOnly {
            for i in 0..self.mu.len() {
                let fact = self.indexer.fact_at(i);
                if !self.mu[i].is_zero() && !self.observed.holds(&fact) {
                    return Err(ModelError::NegativeFactError {
                        fact: fact.display(self.observed.vocabulary()).to_string(),
                    });
                }
            }
        }
        Ok(self)
    }

    /// The observed database `𝔄`.
    pub fn observed(&self) -> &Database {
        &self.observed
    }

    /// The fact indexer for this format.
    pub fn indexer(&self) -> &FactIndexer {
        &self.indexer
    }

    /// The error model in force.
    pub fn model(&self) -> ErrorModel {
        self.model
    }

    /// Universe cardinality `n`.
    pub fn size(&self) -> usize {
        self.observed.size()
    }

    /// Set `μ(fact) = p`.
    pub fn set_error(&mut self, fact: &Fact, p: BigRational) -> Result<(), ModelError> {
        if !p.is_probability() {
            return Err(ModelError::NotAProbability {
                fact: fact.display(self.observed.vocabulary()).to_string(),
                value: p.to_string(),
            });
        }
        if self.model == ErrorModel::PositiveOnly && !p.is_zero() && !self.observed.holds(fact) {
            return Err(ModelError::NegativeFactError {
                fact: fact.display(self.observed.vocabulary()).to_string(),
            });
        }
        self.mu[self.indexer.index_of(fact)] = p;
        Ok(())
    }

    /// Set `μ = p` on every fact of the named relation.
    pub fn set_relation_error(&mut self, rel: &str, p: BigRational) -> Result<(), ModelError> {
        let rel_ix = self
            .observed
            .vocabulary()
            .index_of(rel)
            .unwrap_or_else(|| panic!("unknown relation {rel:?}"));
        let arity = self.observed.vocabulary().symbols()[rel_ix].arity();
        for tuple in self.observed.universe().tuples(arity) {
            self.set_error(&Fact::new(rel_ix, tuple), p.clone())?;
        }
        Ok(())
    }

    /// Set `μ = p` on every fact of every relation.
    pub fn set_uniform_error(&mut self, p: BigRational) -> Result<(), ModelError> {
        for i in 0..self.mu.len() {
            let fact = self.indexer.fact_at(i);
            self.set_error(&fact, p.clone())?;
        }
        Ok(())
    }

    /// `μ(fact)` — probability that the observed truth value is wrong.
    pub fn mu(&self, fact: &Fact) -> &BigRational {
        &self.mu[self.indexer.index_of(fact)]
    }

    /// `μ` by dense fact index.
    pub fn mu_at(&self, index: usize) -> &BigRational {
        &self.mu[index]
    }

    /// `ν(fact)` — probability that the fact holds in the actual database.
    pub fn nu(&self, fact: &Fact) -> BigRational {
        self.nu_at(self.indexer.index_of(fact))
    }

    /// `ν` by dense fact index.
    pub fn nu_at(&self, index: usize) -> BigRational {
        let fact = self.indexer.fact_at(index);
        if self.observed.holds(&fact) {
            self.mu[index].one_minus()
        } else {
            self.mu[index].clone()
        }
    }

    /// Dense indices of facts whose actual truth value is genuinely random
    /// (`0 < μ < 1`). These are the dimensions of the world space; facts
    /// with `μ = 0` are pinned to the observed value and facts with
    /// `μ = 1` are pinned to its negation.
    pub fn uncertain_facts(&self) -> Vec<usize> {
        let one = BigRational::one();
        (0..self.mu.len())
            .filter(|&i| !self.mu[i].is_zero() && self.mu[i] != one)
            .collect()
    }

    /// The most probable world: every fact pinned or set to its likelier
    /// value (ties resolve to the observed value). With all `μ < 1/2` this
    /// is the observed database with `μ = 1` facts flipped.
    pub fn mode_world(&self) -> Database {
        let mut world = self.observed.clone();
        let half = BigRational::from_ratio(1, 2);
        for i in 0..self.mu.len() {
            if self.mu[i] > half {
                let fact = self.indexer.fact_at(i);
                let observed = self.observed.holds(&fact);
                world.set_fact(&fact, !observed);
            }
        }
        world
    }

    /// Exact probability `ν(𝔅)` that the actual database is `world`.
    ///
    /// # Panics
    /// Panics if `world` has a different format (size/vocabulary).
    pub fn world_probability(&self, world: &Database) -> BigRational {
        assert_eq!(world.size(), self.observed.size(), "universe size mismatch");
        assert_eq!(
            world.vocabulary(),
            self.observed.vocabulary(),
            "vocabulary mismatch"
        );
        let mut p = BigRational::one();
        for i in 0..self.mu.len() {
            let fact = self.indexer.fact_at(i);
            let nu = self.nu_at(i);
            let factor = if world.holds(&fact) {
                nu
            } else {
                nu.one_minus()
            };
            if factor.is_zero() {
                return BigRational::zero();
            }
            p = p.mul_ref(&factor);
        }
        p
    }

    /// Number of possible worlds with nonzero probability: `2^u` where
    /// `u = |uncertain_facts()|`. `None` if it overflows `u64`.
    pub fn world_count(&self) -> Option<u64> {
        let u = self.uncertain_facts().len();
        if u >= 64 {
            None
        } else {
            Some(1u64 << u)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_db::DatabaseBuilder;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn db() -> Database {
        DatabaseBuilder::new()
            .universe_size(2)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1]])
            .tuples("S", [vec![0]])
            .build()
    }

    #[test]
    fn reliable_database_has_zero_mu() {
        let ud = UnreliableDatabase::reliable(db());
        assert!(ud.uncertain_facts().is_empty());
        assert_eq!(ud.world_count(), Some(1));
        assert_eq!(ud.world_probability(&db()), BigRational::one());
    }

    #[test]
    fn nu_flips_with_observation() {
        let mut ud = UnreliableDatabase::reliable(db());
        let present = Fact::new(0, vec![0, 1]); // E(0,1) observed true
        let absent = Fact::new(0, vec![1, 0]); // E(1,0) observed false
        ud.set_error(&present, r(1, 4)).unwrap();
        ud.set_error(&absent, r(1, 4)).unwrap();
        assert_eq!(ud.nu(&present), r(3, 4));
        assert_eq!(ud.nu(&absent), r(1, 4));
    }

    #[test]
    fn probability_validation() {
        let mut ud = UnreliableDatabase::reliable(db());
        let f = Fact::new(1, vec![0]);
        assert!(ud.set_error(&f, r(3, 2)).is_err());
        assert!(ud.set_error(&f, r(-1, 2)).is_err());
        assert!(ud.set_error(&f, r(1, 1)).is_ok());
        assert!(ud.set_error(&f, r(0, 1)).is_ok());
    }

    #[test]
    fn positive_only_model_enforced() {
        let mut ud = UnreliableDatabase::reliable(db())
            .with_model(ErrorModel::PositiveOnly)
            .unwrap();
        // E(0,1) is observed true: error allowed.
        assert!(ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 2)).is_ok());
        // E(1,0) is observed false: error rejected.
        assert!(matches!(
            ud.set_error(&Fact::new(0, vec![1, 0]), r(1, 2)),
            Err(ModelError::NegativeFactError { .. })
        ));
        // Retrofitting the model onto a violating database is also caught.
        let mut bad = UnreliableDatabase::reliable(db());
        bad.set_error(&Fact::new(0, vec![1, 0]), r(1, 2)).unwrap();
        assert!(bad.with_model(ErrorModel::PositiveOnly).is_err());
    }

    #[test]
    fn world_probability_of_observed() {
        let mut ud = UnreliableDatabase::reliable(db());
        ud.set_error(&Fact::new(1, vec![0]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(1, vec![1]), r(1, 4)).unwrap();
        // Observed world: both S-facts as observed → (1-1/3)(1-1/4) = 1/2.
        assert_eq!(ud.world_probability(&db()), r(1, 2));
        // Flip S(1) on: (2/3)(1/4) = 1/6.
        let mut w = db();
        w.set_fact(&Fact::new(1, vec![1]), true);
        assert_eq!(ud.world_probability(&w), r(1, 6));
    }

    #[test]
    fn pinned_facts_zero_out_contradicting_worlds() {
        let ud = UnreliableDatabase::reliable(db());
        let mut w = db();
        w.set_fact(&Fact::new(1, vec![1]), true); // contradicts μ=0
        assert_eq!(ud.world_probability(&w), BigRational::zero());
    }

    #[test]
    fn mu_one_pins_to_flip() {
        let mut ud = UnreliableDatabase::reliable(db());
        ud.set_error(&Fact::new(1, vec![1]), r(1, 1)).unwrap();
        // S(1) observed false, μ=1 → actual surely true.
        assert!(ud.uncertain_facts().is_empty());
        assert_eq!(ud.world_probability(&db()), BigRational::zero());
        let mut w = db();
        w.set_fact(&Fact::new(1, vec![1]), true);
        assert_eq!(ud.world_probability(&w), BigRational::one());
        assert!(ud.mode_world().holds(&Fact::new(1, vec![1])));
    }

    #[test]
    fn relation_and_uniform_setters() {
        let mut ud = UnreliableDatabase::reliable(db());
        ud.set_relation_error("S", r(1, 2)).unwrap();
        assert_eq!(ud.uncertain_facts().len(), 2);
        ud.set_uniform_error(r(1, 8)).unwrap();
        assert_eq!(ud.uncertain_facts().len(), 6);
        assert_eq!(ud.mu(&Fact::new(0, vec![1, 1])), &r(1, 8));
    }

    #[test]
    fn world_count() {
        let mut ud = UnreliableDatabase::reliable(db());
        ud.set_relation_error("S", r(1, 2)).unwrap();
        assert_eq!(ud.world_count(), Some(4));
    }

    #[test]
    fn marginal_presentation_reproduces_distribution() {
        // Remark in Section 2: specifying ν directly gives the same Ω(𝔇).
        let format = db();
        let ud = UnreliableDatabase::from_marginals(
            format,
            [
                (Fact::new(0, vec![0, 1]), r(3, 4)), // likely present
                (Fact::new(1, vec![0]), r(1, 3)),    // likely absent
                (Fact::new(1, vec![1]), r(1, 1)),    // certainly present
            ],
        )
        .unwrap();
        // Observed database = mode: E(0,1) ∈ 𝔄, S(0) ∉ 𝔄, S(1) ∈ 𝔄.
        assert!(ud.observed().holds(&Fact::new(0, vec![0, 1])));
        assert!(!ud.observed().holds(&Fact::new(1, vec![0])));
        assert!(ud.observed().holds(&Fact::new(1, vec![1])));
        // Marginals are reproduced exactly.
        assert_eq!(ud.nu(&Fact::new(0, vec![0, 1])), r(3, 4));
        assert_eq!(ud.nu(&Fact::new(1, vec![0])), r(1, 3));
        assert_eq!(ud.nu(&Fact::new(1, vec![1])), r(1, 1));
        // Unmentioned facts are certainly absent.
        assert_eq!(ud.nu(&Fact::new(0, vec![1, 0])), BigRational::zero());
        // μ is the minority mass.
        assert_eq!(ud.mu(&Fact::new(0, vec![0, 1])), &r(1, 4));
        assert_eq!(ud.mu(&Fact::new(1, vec![0])), &r(1, 3));
    }

    #[test]
    fn marginal_presentation_validates() {
        assert!(
            UnreliableDatabase::from_marginals(db(), [(Fact::new(1, vec![0]), r(3, 2))],).is_err()
        );
    }
}
