//! The probabilistic model of unreliable databases (Section 2 of the
//! paper).
//!
//! An unreliable database is a pair `𝔇 = (𝔄, μ)`: an observed finite
//! relational structure `𝔄` together with an error probability `μ(Rā)`
//! for every atomic statement. It induces a probability space `Ω(𝔇)` of
//! databases of the same format, with
//!
//! ```text
//! ν(Rā) = 1 − μ(Rā)   if 𝔄 ⊨ Rā        (probability the fact holds
//! ν(Rā) = μ(Rā)       if 𝔄 ⊨ ¬Rā        in the actual database)
//! ν(𝔅)  = ∏_{φ ∈ Lit(𝔅)} ν(φ)
//! ```
//!
//! This crate implements the model exactly (rational arithmetic
//! end-to-end):
//!
//! * [`UnreliableDatabase`] — the pair `(𝔄, μ)` with validation,
//!   including de Rougemont's positive-only restricted model;
//! * [`WorldIter`]/[`world`] — exact enumeration of the possible worlds
//!   that have nonzero probability, with their exact probabilities;
//! * [`WorldSampler`] — exact-Bernoulli sampling of worlds (the substrate
//!   for every Monte-Carlo algorithm in the paper);
//! * [`normalizer`] — the `g` normalizer from the proof of Theorem 4.2
//!   that turns world probabilities into integer counts.

pub mod model;
pub mod normalizer;
pub mod sampler;
pub mod spec;
pub mod world;

pub use model::{ErrorModel, ModelError, UnreliableDatabase};
pub use sampler::WorldSampler;
pub use spec::{ErrorSpec, SpecError, UnreliableDatabaseSpec};
pub use world::WorldIter;
