//! The `g` normalizer from the proof of Theorem 4.2.
//!
//! The FP^#P algorithm needs a natural number `g` with `ν(𝔅)·g ∈ ℕ` for
//! every world `𝔅`, so that each leaf of the nondeterministic computation
//! tree can be split `ν(𝔅)·g` times and the accepting-path count becomes
//! `g · Pr[𝔅 ⊨ ψ]`.
//!
//! **Erratum note.** The paper computes `g` as the *lcm* of the
//! denominators of the individual fact probabilities `ν(Rā)` (the gcd
//! loop in the proof of Theorem 4.2 is exactly lcm accumulation). That is
//! not sufficient: `ν(𝔅)` is a *product* over all facts, so its
//! denominator can be the product of the per-fact denominators, not their
//! lcm. Smallest counterexample: two facts with `ν = 1/2` give a world of
//! probability `1/4`, but `lcm(2,2) = 2` and `2 · 1/4 ∉ ℕ`. The sound
//! normalizer is the *product* of the per-fact denominators (still
//! polynomially many bits, so the complexity argument is unaffected).
//! We implement both: [`paper_g`] (the published algorithm, for the
//! record) and [`sound_g`] (the corrected one used by `qrel-core`), and
//! test the discrepancy explicitly.

use crate::model::UnreliableDatabase;
use qrel_arith::BigUint;

/// The paper's `g`: the least common multiple of the denominators of the
/// normalized fact probabilities `ν(Rā)`, computed with the gcd loop from
/// the proof of Theorem 4.2. **Insufficient in general** — see the module
/// docs; retained to document the erratum.
pub fn paper_g(ud: &UnreliableDatabase) -> BigUint {
    let mut g = BigUint::one();
    for i in 0..ud.indexer().total() {
        let d = ud.nu_at(i).denom().clone();
        // gcd loop verbatim: b = gcd(g', d); if b = d, continue; else
        // g' := g'·d/b.
        let b = g.gcd(&d);
        if b != d {
            let (q, r) = d.div_rem(&b);
            debug_assert!(r.is_zero());
            g = g.mul_ref(&q);
        }
    }
    g
}

/// The corrected `g`: the product of the denominators of the normalized
/// fact probabilities. Satisfies `ν(𝔅)·g ∈ ℕ` for every world `𝔅`,
/// because each world probability is a product of factors `ν` or `1−ν`
/// whose (normalized) denominators divide the per-fact denominators.
pub fn sound_g(ud: &UnreliableDatabase) -> BigUint {
    let mut g = BigUint::one();
    for i in 0..ud.indexer().total() {
        g = g.mul_ref(ud.nu_at(i).denom());
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_arith::{BigInt, BigRational};
    use qrel_db::{DatabaseBuilder, Fact};

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn two_coin_db() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 2)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(1, 2)).unwrap();
        ud
    }

    /// Check `g · ν(𝔅) ∈ ℕ` for all worlds.
    fn g_normalizes(ud: &UnreliableDatabase, g: &BigUint) -> bool {
        ud.worlds().all(|(_, p)| {
            let scaled = p.mul_ref(&BigRational::new(
                BigInt::from_biguint(g.clone()),
                BigInt::one(),
            ));
            scaled.is_integer()
        })
    }

    #[test]
    fn paper_g_insufficient_on_two_coins() {
        // The erratum: lcm(2,2) = 2 but the worlds have probability 1/4.
        let ud = two_coin_db();
        let pg = paper_g(&ud);
        assert_eq!(pg, BigUint::from_u32(2));
        assert!(!g_normalizes(&ud, &pg), "paper g unexpectedly sufficient");
    }

    #[test]
    fn sound_g_normalizes_two_coins() {
        let ud = two_coin_db();
        let sg = sound_g(&ud);
        assert_eq!(sg, BigUint::from_u32(4));
        assert!(g_normalizes(&ud, &sg));
    }

    #[test]
    fn sound_g_normalizes_mixed_denominators() {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(2, 5)).unwrap();
        ud.set_error(&Fact::new(0, vec![2]), r(5, 12)).unwrap();
        let sg = sound_g(&ud);
        assert!(g_normalizes(&ud, &sg));
        // And the scaled values over all worlds sum to exactly g.
        let total = ud
            .worlds()
            .fold(BigRational::zero(), |acc, (_, p)| acc.add_ref(&p));
        assert_eq!(total, BigRational::one());
    }

    #[test]
    fn reliable_database_g_is_one() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .build();
        let ud = UnreliableDatabase::reliable(db);
        assert_eq!(paper_g(&ud), BigUint::one());
        assert_eq!(sound_g(&ud), BigUint::one());
    }

    #[test]
    fn paper_g_agrees_when_one_uncertain_fact() {
        // With a single uncertain fact the lcm *is* sufficient.
        let db = DatabaseBuilder::new()
            .universe_size(1)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(2, 7)).unwrap();
        let pg = paper_g(&ud);
        assert_eq!(pg, BigUint::from_u32(7));
        assert!(g_normalizes(&ud, &pg));
    }
}
