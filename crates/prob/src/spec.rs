//! A serializable interchange format for unreliable databases.
//!
//! `UnreliableDatabase` itself is optimized for computation (dense `μ`
//! vector, fact indexer); this module provides a human-editable
//! JSON-friendly *spec* — the observed database plus a sparse list of
//! error assignments with rational probabilities as strings — and the
//! conversions in both directions. The CLI and the examples use it.
//!
//! ```json
//! {
//!   "database": { ... qrel_db::Database ... },
//!   "model": "full",
//!   "errors": [
//!     { "relation": "E", "tuple": [0, 1], "mu": "1/10" },
//!     { "relation": "S", "tuple": [2],    "mu": "1/4"  }
//!   ]
//! }
//! ```

use crate::model::{ErrorModel, ModelError, UnreliableDatabase};
use qrel_arith::BigRational;
use qrel_db::{Database, Fact};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One error assignment in the spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorSpec {
    /// Relation name.
    pub relation: String,
    /// Element indices.
    pub tuple: Vec<u32>,
    /// Error probability as `"p/q"` (or an integer string).
    pub mu: String,
}

/// Serializable unreliable-database spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnreliableDatabaseSpec {
    /// The observed database.
    pub database: Database,
    /// `"full"` (default) or `"positive-only"`.
    #[serde(default = "default_model")]
    pub model: String,
    /// Sparse error assignments; unmentioned facts have `μ = 0`.
    #[serde(default)]
    pub errors: Vec<ErrorSpec>,
}

fn default_model() -> String {
    "full".to_string()
}

/// Errors when converting a spec into a model.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    UnknownRelation(String),
    BadProbability {
        entry: usize,
        reason: String,
    },
    UnknownModel(String),
    Model(ModelError),
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    ElementOutOfRange {
        relation: String,
        element: u32,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            SpecError::BadProbability { entry, reason } => {
                write!(f, "error entry {entry}: bad probability ({reason})")
            }
            SpecError::UnknownModel(m) => {
                write!(f, "unknown model {m:?} (use \"full\" or \"positive-only\")")
            }
            SpecError::Model(e) => write!(f, "{e}"),
            SpecError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "relation {relation:?} expects arity {expected}, got {got}"
                )
            }
            SpecError::ElementOutOfRange { relation, element } => {
                write!(f, "element {element} out of range in a {relation:?} tuple")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ModelError> for SpecError {
    fn from(e: ModelError) -> Self {
        SpecError::Model(e)
    }
}

impl UnreliableDatabaseSpec {
    /// Build the computational model from the spec.
    pub fn build(&self) -> Result<UnreliableDatabase, SpecError> {
        let model = match self.model.as_str() {
            "full" => ErrorModel::Full,
            "positive-only" => ErrorModel::PositiveOnly,
            other => return Err(SpecError::UnknownModel(other.to_string())),
        };
        let mut ud = UnreliableDatabase::reliable(self.database.clone()).with_model(model)?;
        for (i, e) in self.errors.iter().enumerate() {
            let rel_ix = self
                .database
                .vocabulary()
                .index_of(&e.relation)
                .ok_or_else(|| SpecError::UnknownRelation(e.relation.clone()))?;
            let expected = self.database.vocabulary().symbols()[rel_ix].arity();
            if expected != e.tuple.len() {
                return Err(SpecError::ArityMismatch {
                    relation: e.relation.clone(),
                    expected,
                    got: e.tuple.len(),
                });
            }
            for &el in &e.tuple {
                if el as usize >= self.database.size() {
                    return Err(SpecError::ElementOutOfRange {
                        relation: e.relation.clone(),
                        element: el,
                    });
                }
            }
            let mu = BigRational::parse(&e.mu).map_err(|err| SpecError::BadProbability {
                entry: i,
                reason: err.to_string(),
            })?;
            ud.set_error(&Fact::new(rel_ix, e.tuple.clone()), mu)?;
        }
        Ok(ud)
    }

    /// Extract the spec back out of a model (sparse: only `μ ≠ 0`).
    pub fn from_model(ud: &UnreliableDatabase) -> Self {
        let vocab = ud.observed().vocabulary();
        let indexer = ud.indexer();
        let mut errors = Vec::new();
        for i in 0..indexer.total() {
            let mu = ud.mu_at(i);
            if !mu.is_zero() {
                let fact = indexer.fact_at(i);
                errors.push(ErrorSpec {
                    relation: vocab.symbols()[fact.relation].name().to_string(),
                    tuple: fact.tuple.clone(),
                    mu: mu.to_string(),
                });
            }
        }
        UnreliableDatabaseSpec {
            database: ud.observed().clone(),
            model: match ud.model() {
                ErrorModel::Full => "full".to_string(),
                ErrorModel::PositiveOnly => "positive-only".to_string(),
            },
            errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_db::DatabaseBuilder;

    fn sample_spec() -> UnreliableDatabaseSpec {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1]])
            .tuples("S", [vec![2]])
            .build();
        UnreliableDatabaseSpec {
            database: db,
            model: "full".into(),
            errors: vec![
                ErrorSpec {
                    relation: "E".into(),
                    tuple: vec![0, 1],
                    mu: "1/10".into(),
                },
                ErrorSpec {
                    relation: "S".into(),
                    tuple: vec![0],
                    mu: "1/4".into(),
                },
            ],
        }
    }

    #[test]
    fn build_and_roundtrip() {
        let spec = sample_spec();
        let ud = spec.build().unwrap();
        assert_eq!(
            ud.mu(&Fact::new(0, vec![0, 1])),
            &BigRational::from_ratio(1, 10)
        );
        assert_eq!(
            ud.mu(&Fact::new(1, vec![0])),
            &BigRational::from_ratio(1, 4)
        );
        assert_eq!(ud.uncertain_facts().len(), 2);
        let back = UnreliableDatabaseSpec::from_model(&ud);
        assert_eq!(back, spec);
    }

    #[test]
    fn json_roundtrip() {
        let spec = sample_spec();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let parsed: UnreliableDatabaseSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.build().unwrap().uncertain_facts().len(), 2);
    }

    #[test]
    fn defaults_in_json() {
        // model and errors are optional.
        let db = DatabaseBuilder::new()
            .universe_size(1)
            .relation("S", 1)
            .build();
        let json = format!("{{\"database\": {}}}", serde_json::to_string(&db).unwrap());
        let spec: UnreliableDatabaseSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec.model, "full");
        assert!(spec.errors.is_empty());
        assert!(spec.build().unwrap().uncertain_facts().is_empty());
    }

    #[test]
    fn validation_errors() {
        let mut spec = sample_spec();
        spec.errors[0].relation = "Z".into();
        assert!(matches!(spec.build(), Err(SpecError::UnknownRelation(_))));

        let mut spec = sample_spec();
        spec.errors[0].tuple = vec![0];
        assert!(matches!(spec.build(), Err(SpecError::ArityMismatch { .. })));

        let mut spec = sample_spec();
        spec.errors[0].tuple = vec![0, 9];
        assert!(matches!(
            spec.build(),
            Err(SpecError::ElementOutOfRange { .. })
        ));

        let mut spec = sample_spec();
        spec.errors[0].mu = "3/2".into();
        assert!(matches!(spec.build(), Err(SpecError::Model(_))));

        let mut spec = sample_spec();
        spec.errors[0].mu = "x".into();
        assert!(matches!(
            spec.build(),
            Err(SpecError::BadProbability { .. })
        ));

        let mut spec = sample_spec();
        spec.model = "weird".into();
        assert!(matches!(spec.build(), Err(SpecError::UnknownModel(_))));
    }

    #[test]
    fn positive_only_spec() {
        let mut spec = sample_spec();
        spec.model = "positive-only".into();
        // S(0) is not observed — positive-only must reject its error.
        assert!(spec.build().is_err());
        spec.errors[1].tuple = vec![2]; // S(2) is observed
        let ud = spec.build().unwrap();
        assert_eq!(ud.model(), ErrorModel::PositiveOnly);
    }
}
