//! Sampling random worlds `𝔅 ∈ Ω(𝔇)`.
//!
//! Every Monte-Carlo algorithm in the paper (Theorems 5.2, 5.4, 5.12)
//! draws independent worlds from `ν`. Flips are sampled with *exact*
//! Bernoulli draws on the rational probabilities wherever the numerator
//! and denominator fit in `u64` (always, for realistic inputs), falling
//! back to `f64` only beyond that.

use crate::model::UnreliableDatabase;
use qrel_arith::BigRational;
use qrel_db::Database;
use rand::Rng;

/// Exact Bernoulli draw: returns `true` with probability exactly `p`
/// (when `p`'s parts fit `u64`; `f64`-approximate otherwise).
pub fn bernoulli<R: Rng>(p: &BigRational, rng: &mut R) -> bool {
    debug_assert!(p.is_probability());
    if p.is_zero() {
        return false;
    }
    match (p.numer().magnitude().to_u64(), p.denom().to_u64()) {
        (Some(num), Some(den)) => rng.gen_range(0..den) < num,
        _ => rng.gen::<f64>() < p.to_f64(),
    }
}

/// A reusable sampler for worlds of a fixed unreliable database.
///
/// Precomputes the uncertain-fact list and their `ν` probabilities once,
/// so each sample costs one Bernoulli draw per *uncertain* fact (pinned
/// facts are materialized once in the base world).
pub struct WorldSampler<'a> {
    ud: &'a UnreliableDatabase,
    base: Database,
    uncertain: Vec<usize>,
    nu: Vec<BigRational>,
}

impl<'a> WorldSampler<'a> {
    pub fn new(ud: &'a UnreliableDatabase) -> Self {
        let uncertain = ud.uncertain_facts();
        let nu = uncertain.iter().map(|&i| ud.nu_at(i)).collect();
        WorldSampler {
            ud,
            base: ud.mode_world_base(),
            uncertain,
            nu,
        }
    }

    /// Number of random fact flips per sample.
    pub fn dimensions(&self) -> usize {
        self.uncertain.len()
    }

    /// Draw one world `𝔅 ~ ν`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Database {
        let mut world = self.base.clone();
        for (bit, &fact_ix) in self.uncertain.iter().enumerate() {
            let fact = self.ud.indexer().fact_at(fact_ix);
            world.set_fact(&fact, bernoulli(&self.nu[bit], rng));
        }
        world
    }

    /// Draw one world as a raw truth assignment to the uncertain facts
    /// (cheaper when the consumer evaluates a grounded formula rather
    /// than a full database).
    pub fn sample_assignment<R: Rng>(&self, rng: &mut R, out: &mut Vec<bool>) {
        out.clear();
        out.extend(self.nu.iter().map(|p| bernoulli(p, rng)));
    }

    /// The uncertain fact indices, aligned with [`Self::sample_assignment`].
    pub fn uncertain_facts(&self) -> &[usize] {
        &self.uncertain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_arith::BigRational;
    use qrel_db::{DatabaseBuilder, Fact};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(!bernoulli(&BigRational::zero(), &mut rng));
            assert!(bernoulli(&BigRational::one(), &mut rng));
        }
    }

    #[test]
    fn bernoulli_frequency_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = r(1, 3);
        let trials = 60_000;
        let hits = (0..trials).filter(|_| bernoulli(&p, &mut rng)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 1.0 / 3.0).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn sampler_world_frequencies_match_nu() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 4)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(1, 2)).unwrap();
        let sampler = WorldSampler::new(&ud);
        assert_eq!(sampler.dimensions(), 2);

        let mut rng = StdRng::seed_from_u64(3);
        let trials = 40_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            let w = sampler.sample(&mut rng);
            let b0 = w.holds(&Fact::new(0, vec![0])) as usize;
            let b1 = w.holds(&Fact::new(0, vec![1])) as usize;
            counts[b0 | (b1 << 1)] += 1;
        }
        // Expected: P(S0=1)=3/4, P(S1=1)=1/2, independent.
        let expected = [0.25 * 0.5, 0.75 * 0.5, 0.25 * 0.5, 0.75 * 0.5];
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - expected[i]).abs() < 0.015,
                "world {i}: freq {freq} vs expected {}",
                expected[i]
            );
        }
    }

    #[test]
    fn sample_assignment_aligns_with_uncertain_facts() {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![1]), r(1, 1)).unwrap(); // pinned flip
        ud.set_error(&Fact::new(0, vec![2]), r(1, 2)).unwrap(); // uncertain
        let sampler = WorldSampler::new(&ud);
        assert_eq!(sampler.dimensions(), 1);
        assert_eq!(
            sampler.uncertain_facts(),
            &[ud.indexer().index_of(&Fact::new(0, vec![2]))]
        );
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = Vec::new();
        sampler.sample_assignment(&mut rng, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn deterministic_with_seed() {
        let db = DatabaseBuilder::new()
            .universe_size(4)
            .relation("E", 2)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_uniform_error(r(1, 3)).unwrap();
        let sampler = WorldSampler::new(&ud);
        let w1 = sampler.sample(&mut StdRng::seed_from_u64(7));
        let w2 = sampler.sample(&mut StdRng::seed_from_u64(7));
        assert_eq!(w1, w2);
    }
}
