//! The metamorphic layer: paper identities that must hold *exactly* on
//! every instance, checked in exact rationals against the Thm 4.2
//! enumerator.
//!
//! | Law | Identity | Source |
//! |-----|----------|--------|
//! | `complement` | `ν(¬ψ) = 1 − ν(ψ)` | probability axioms |
//! | `factorization` | `ν(ψ ∧ χ) = ν(ψ)·ν(χ)` for relation-disjoint `ψ, χ` | fact-wise independence of `Ω(𝔇)` |
//! | `monotonicity` | `ν` pointwise ↑ ⇒ `ν(ψ)` ↑ for negation-free `ψ` | monotone events |
//! | `padding` | `ν(ψ') = ξ² + (ξ−ξ²)·ν(ψ)`, `ψ' = (ψ∨Rc)∧Rd` | Thm 5.12 |
//! | `model-restriction` | positive-only errors ⇒ identical answers under both error models | §3 Remark / experiment E11 |
//! | `term-drop` | removing a DNF term cannot increase `Pr` | unions are monotone |
//! | `positive-var` | raising `Pr[x]` for an all-positive variable cannot lower `Pr` | monotone events |
//!
//! The padding law is checked *end-to-end*: the harness builds the padded
//! instance itself — universe extended by two fresh constants, `ψ`
//! relativized to the original elements through a fully reliable `Orig`
//! marker, a fresh unary `Pad` relation carrying `μ = ξ` on the two
//! padding facts — runs the enumerator on it, and compares against
//! [`PaddingEstimator::padded_expectation`]. A bug in either the
//! construction or the de-biasing algebra breaks the equality.

use crate::case::FuzzCase;
use crate::diff::Failure;
use qrel_arith::BigRational;
use qrel_core::{exact_probability, exact_reliability, PaddingEstimator};
use qrel_count::dnf_probability_shannon;
use qrel_db::{DatabaseBuilder, Fact};
use qrel_eval::FoQuery;
use qrel_logic::prop::Dnf;
use qrel_logic::{Formula, Term};
use qrel_prob::{ErrorModel, UnreliableDatabase};

/// Run every applicable metamorphic law on `case`.
pub fn check_metamorphic(case: &FuzzCase) -> Result<Vec<Failure>, String> {
    let mut failures = Vec::new();
    if let Some(ud) = case.build_db()? {
        let text = case.query.as_deref().expect("validated by build_db");
        let query = FoQuery::parse(text).map_err(|e| format!("bad query {text:?}: {e}"))?;
        check_query_laws(&ud, &query, &mut failures);
    } else {
        let spec = case.dnf.as_ref().expect("validated by build_db");
        let (dnf, probs) = spec.build()?;
        check_dnf_laws(&dnf, &probs, &mut failures);
    }
    Ok(failures)
}

fn fail(failures: &mut Vec<Failure>, check: &str, detail: String) {
    failures.push(Failure {
        check: check.to_string(),
        detail,
    });
}

fn check_query_laws(ud: &UnreliableDatabase, query: &FoQuery, failures: &mut Vec<Failure>) {
    let formula = query.formula();
    let p = match exact_probability(ud, query) {
        Ok(p) => p,
        Err(e) => {
            fail(failures, "meta-oracle", format!("oracle failed: {e}"));
            return;
        }
    };

    // Law: complement.
    let neg = FoQuery::new(Formula::not(formula.clone()));
    match exact_probability(ud, &neg) {
        Ok(q) if q == p.one_minus() => {}
        Ok(q) => fail(
            failures,
            "complement",
            format!("Pr[!ψ] = {q} but 1 − Pr[ψ] = {}", p.one_minus()),
        ),
        Err(e) => fail(failures, "complement", format!("failed: {e}")),
    }

    // Law: independent-component factorization. Pick a probe sentence
    // over a relation ψ does not mention; worlds factorize fact-wise, so
    // the two events are independent.
    let mut used = Vec::new();
    collect_relations(formula, &mut used);
    let probe = ud
        .observed()
        .vocabulary()
        .symbols()
        .iter()
        .find(|sym| !used.iter().any(|u| u == sym.name()))
        .map(|sym| {
            let vars: Vec<String> = (0..sym.arity()).map(|i| format!("q{i}")).collect();
            let atom = Formula::atom(sym.name(), vars.iter().map(|v| Term::Var(v.clone())));
            if vars.is_empty() {
                atom
            } else {
                Formula::exists(vars, atom)
            }
        });
    if let Some(chi) = probe {
        let chi_q = FoQuery::new(chi.clone());
        let conj = FoQuery::new(Formula::and([formula.clone(), chi]));
        match (exact_probability(ud, &chi_q), exact_probability(ud, &conj)) {
            (Ok(pc), Ok(pb)) => {
                let prod = p.mul_ref(&pc);
                if pb != prod {
                    fail(
                        failures,
                        "factorization",
                        format!("Pr[ψ∧χ] = {pb} but Pr[ψ]·Pr[χ] = {prod}"),
                    );
                }
            }
            (Err(e), _) | (_, Err(e)) => fail(failures, "factorization", format!("failed: {e}")),
        }
    }

    // Law: monotonicity under pointwise ν increase, for negation-free
    // sentences (all atoms positive ⇒ the event is monotone in facts).
    if negation_free(formula) {
        match bump_marginals(ud) {
            Ok(bumped) => match exact_probability(&bumped, query) {
                Ok(q) if q >= p => {}
                Ok(q) => fail(
                    failures,
                    "monotonicity",
                    format!("ν increased pointwise yet Pr[ψ] dropped {p} → {q}"),
                ),
                Err(e) => fail(failures, "monotonicity", format!("failed: {e}")),
            },
            Err(e) => fail(failures, "monotonicity", format!("bump failed: {e}")),
        }
    }

    // Law: Thm 5.12 padding identity, end to end.
    match build_padded(ud, formula) {
        Ok((pad_ud, padded)) => match exact_probability(&pad_ud, &FoQuery::new(padded)) {
            Ok(q) => {
                let expected = PaddingEstimator::default_xi().padded_expectation(&p);
                if q != expected {
                    fail(
                        failures,
                        "padding",
                        format!("Pr[ψ'] = {q} but ξ² + (ξ−ξ²)·Pr[ψ] = {expected}"),
                    );
                }
            }
            Err(e) => fail(failures, "padding", format!("padded eval failed: {e}")),
        },
        Err(e) => fail(failures, "padding", format!("construction failed: {e}")),
    }

    // Law: model restriction (E11). When every error sits on a positive
    // observed fact the instance is admissible under de Rougemont's
    // restricted model, and the engines must not branch on the model tag.
    if let Ok(restricted) = ud.clone().with_model(ErrorModel::PositiveOnly) {
        match exact_probability(&restricted, query) {
            Ok(q) if q == p => {}
            Ok(q) => fail(
                failures,
                "model-restriction",
                format!("positive-only model changed Pr[ψ]: {p} → {q}"),
            ),
            Err(e) => fail(failures, "model-restriction", format!("failed: {e}")),
        }
        match (
            exact_reliability(ud, query),
            exact_reliability(&restricted, query),
        ) {
            (Ok(a), Ok(b)) if a.reliability == b.reliability => {}
            (Ok(a), Ok(b)) => fail(
                failures,
                "model-restriction",
                format!(
                    "positive-only model changed R: {} → {}",
                    a.reliability, b.reliability
                ),
            ),
            (Err(e), _) | (_, Err(e)) => {
                fail(failures, "model-restriction", format!("failed: {e}"))
            }
        }
    }
}

fn check_dnf_laws(dnf: &Dnf, probs: &[BigRational], failures: &mut Vec<Failure>) {
    let p = dnf_probability_shannon(dnf, probs);

    // Law: term drop — a DNF is a union of cylinders.
    for drop in 0..dnf.terms().len() {
        let rest: Vec<_> = dnf
            .terms()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, t)| t.clone())
            .collect();
        let q = dnf_probability_shannon(&Dnf::from_terms(rest), probs);
        if q > p {
            fail(
                failures,
                "term-drop",
                format!("dropping term {drop} raised Pr: {p} → {q}"),
            );
        }
    }

    // Law: raising the probability of an all-positive variable cannot
    // lower Pr (mixed-polarity variables are excluded — no monotone
    // guarantee exists for them).
    for v in 0..probs.len() {
        let occurrences: Vec<bool> = dnf
            .terms()
            .iter()
            .flatten()
            .filter(|l| l.var as usize == v)
            .map(|l| l.positive)
            .collect();
        if occurrences.is_empty() || occurrences.iter().any(|pos| !pos) {
            continue;
        }
        let mut bumped = probs.to_vec();
        let half = BigRational::from_ratio(1, 2);
        bumped[v] = bumped[v].add_ref(&bumped[v].one_minus().mul_ref(&half));
        let q = dnf_probability_shannon(dnf, &bumped);
        if q < p {
            fail(
                failures,
                "positive-var",
                format!("raising Pr[x{v}] lowered Pr: {p} → {q}"),
            );
        }
    }
}

/// All relation names mentioned in a formula.
fn collect_relations(f: &Formula, out: &mut Vec<String>) {
    match f {
        Formula::Atom { rel, .. } => {
            if !out.contains(rel) {
                out.push(rel.clone());
            }
        }
        Formula::Not(g) => collect_relations(g, out),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| collect_relations(g, out)),
        Formula::Exists(_, g)
        | Formula::Forall(_, g)
        | Formula::ExistsRel(_, _, g)
        | Formula::ForallRel(_, _, g) => collect_relations(g, out),
        Formula::True | Formula::False | Formula::Eq(..) => {}
    }
}

/// No `Not` node anywhere ⇒ every atom appears positively ⇒ the event
/// `𝔅 ⊨ ψ` is monotone in the fact set.
fn negation_free(f: &Formula) -> bool {
    match f {
        Formula::Not(_) => false,
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(negation_free),
        Formula::Exists(_, g)
        | Formula::Forall(_, g)
        | Formula::ExistsRel(_, _, g)
        | Formula::ForallRel(_, _, g) => negation_free(g),
        Formula::True | Formula::False | Formula::Eq(..) | Formula::Atom { .. } => true,
    }
}

/// Raise `ν` on every *uncertain* fact by half the headroom:
/// `ν ↦ ν + (1−ν)/2`. Certain facts stay certain, so the world count —
/// and thus the enumerator's cost — is unchanged.
fn bump_marginals(ud: &UnreliableDatabase) -> Result<UnreliableDatabase, String> {
    let half = BigRational::from_ratio(1, 2);
    let mut marginals = Vec::new();
    for i in 0..ud.indexer().total() {
        let nu = ud.nu_at(i);
        if nu.is_zero() {
            continue;
        }
        let bumped = if nu == BigRational::one() {
            nu
        } else {
            nu.add_ref(&nu.one_minus().mul_ref(&half))
        };
        marginals.push((ud.indexer().fact_at(i), bumped));
    }
    UnreliableDatabase::from_marginals(ud.observed().clone(), marginals).map_err(|e| e.to_string())
}

/// Names of the two fresh padding elements.
const PAD_C: &str = "pad_c";
const PAD_D: &str = "pad_d";

/// Build the Theorem 5.12 padded instance: the universe gains two fresh
/// elements, every original quantifier is relativized to a reliable
/// `Orig` marker so `ψ` keeps its meaning, and a fresh unary `Pad`
/// relation holds the two padding facts with `μ = ξ` each. Returns the
/// padded database and `ψ' = (ψ ∨ Pad(pad_c)) ∧ Pad(pad_d)`.
fn build_padded(
    ud: &UnreliableDatabase,
    formula: &Formula,
) -> Result<(UnreliableDatabase, Formula), String> {
    let db = ud.observed();
    let n = db.size();
    let mut names: Vec<String> = db
        .universe()
        .elements()
        .map(|e| db.universe().name(e).to_string())
        .collect();
    names.push(PAD_C.to_string());
    names.push(PAD_D.to_string());

    let mut builder = DatabaseBuilder::new().universe_names(names);
    for sym in db.vocabulary().symbols() {
        builder = builder.relation(sym.name(), sym.arity());
    }
    builder = builder.relation("Orig", 1).relation("Pad", 1);
    for (i, sym) in db.vocabulary().symbols().iter().enumerate() {
        let tuples: Vec<Vec<u32>> = db.relation(i).iter().cloned().collect();
        builder = builder.tuples(sym.name(), tuples);
    }
    builder = builder.tuples("Orig", (0..n as u32).map(|e| vec![e]));
    let padded_db = builder.build();
    let orig_rels = db.vocabulary().len();

    let mut pad_ud = UnreliableDatabase::reliable(padded_db);
    // Original relations were added first, in order, so fact relation
    // indices carry over unchanged.
    for i in 0..ud.indexer().total() {
        let fact = ud.indexer().fact_at(i);
        let mu = ud.mu(&fact).clone();
        if !mu.is_zero() {
            pad_ud.set_error(&fact, mu).map_err(|e| e.to_string())?;
        }
    }
    let xi = PaddingEstimator::default_xi().xi().clone();
    let pad_rel = orig_rels + 1; // after "Orig"
    pad_ud
        .set_error(&Fact::new(pad_rel, vec![n as u32]), xi.clone())
        .map_err(|e| e.to_string())?;
    pad_ud
        .set_error(&Fact::new(pad_rel, vec![n as u32 + 1]), xi)
        .map_err(|e| e.to_string())?;

    let pad_atom = |name: &str| Formula::atom("Pad", [Term::Const(name.to_string())]);
    let padded_formula = Formula::and([
        Formula::or([relativize(formula), pad_atom(PAD_C)]),
        pad_atom(PAD_D),
    ]);
    Ok((pad_ud, padded_formula))
}

/// Relativize every quantifier to the original universe:
/// `∃x̄ φ ↦ ∃x̄ (⋀ Orig(xᵢ) ∧ φ)` and `∀x̄ φ ↦ ∀x̄ (⋀ Orig(xᵢ) → φ)`.
fn relativize(f: &Formula) -> Formula {
    let guard = |vars: &[String]| {
        Formula::and(
            vars.iter()
                .map(|v| Formula::atom("Orig", [Term::Var(v.clone())])),
        )
    };
    match f {
        Formula::Exists(vars, body) => {
            Formula::exists(vars.clone(), Formula::and([guard(vars), relativize(body)]))
        }
        Formula::Forall(vars, body) => Formula::forall(
            vars.clone(),
            Formula::implies(guard(vars), relativize(body)),
        ),
        Formula::Not(g) => Formula::not(relativize(g)),
        Formula::And(fs) => Formula::and(fs.iter().map(relativize)),
        Formula::Or(fs) => Formula::or(fs.iter().map(relativize)),
        Formula::ExistsRel(..) | Formula::ForallRel(..) => {
            unreachable!("second-order formulas are not generated")
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn laws_hold_on_every_family() {
        for family in gen::FAMILIES {
            for seed in 0..8 {
                let case = gen::generate(seed, family);
                let failures =
                    check_metamorphic(&case).unwrap_or_else(|e| panic!("{family}/{seed}: {e}"));
                assert!(failures.is_empty(), "{family}/{seed}: {failures:?}");
            }
        }
    }

    #[test]
    fn padding_identity_on_a_known_instance() {
        // ψ = ∃x S(x), one uncertain fact μ = 1/2 on S(e0), S otherwise
        // empty: Pr[ψ] = 1/2 and Pr[ψ'] must equal ξ² + (ξ−ξ²)/2.
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .relation("T", 1)
            .relation("E", 2)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), BigRational::from_ratio(1, 2))
            .unwrap();
        let formula = qrel_logic::parser::parse_formula("exists x. S(x)").unwrap();
        let (pad_ud, padded) = build_padded(&ud, &formula).unwrap();
        let lhs = exact_probability(&pad_ud, &FoQuery::new(padded)).unwrap();
        let p = exact_probability(&ud, &FoQuery::new(formula)).unwrap();
        assert_eq!(p, BigRational::from_ratio(1, 2));
        let rhs = PaddingEstimator::default_xi().padded_expectation(&p);
        assert_eq!(lhs, rhs);
        // Concretely: 1/16 + (3/16)·(1/2) = 5/32.
        assert_eq!(rhs, BigRational::from_ratio(5, 32));
    }
}
