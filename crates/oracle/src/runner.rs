//! The fuzz loop: generate → differential check → metamorphic check →
//! envelope accounting → shrink → serialize repros.

use crate::case::FuzzCase;
use crate::diff::{check_case, check_case_salted};
use crate::gen::{self, FAMILIES};
use crate::meta::check_metamorphic;
use crate::shrink::shrink;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Configuration for one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of generated cases.
    pub seeds: u64,
    /// First seed; case `i` uses seed `start_seed + i`.
    pub start_seed: u64,
    /// Wall-clock cap; the loop stops cleanly once exceeded.
    pub budget_ms: Option<u64>,
    /// Sampler envelope ε.
    pub eps: f64,
    /// Sampler envelope δ.
    pub delta: f64,
    /// Where to serialize shrunk repros (`None` = don't write).
    pub corpus_dir: Option<PathBuf>,
    /// Families to draw from, round-robin.
    pub families: Vec<String>,
    /// Run the sampler engines too (slower ~100×, but covers the
    /// stochastic half of the engine zoo).
    pub sample: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seeds: 100,
            start_seed: 1,
            budget_ms: None,
            eps: 0.25,
            delta: 0.2,
            corpus_dir: None,
            families: FAMILIES.iter().map(|s| s.to_string()).collect(),
            sample: true,
        }
    }
}

/// Per-sampler-engine envelope accounting across a whole run.
#[derive(Debug, Clone)]
pub struct EngineStats {
    pub engine: String,
    pub trials: u64,
    pub failures: u64,
    /// Largest envelope-normalized error seen (1.0 = at the boundary).
    pub worst_err: f64,
    /// The case that produced `worst_err`.
    pub worst_case: Option<FuzzCase>,
}

/// A confirmed discrepancy, shrunk and (optionally) written to disk.
#[derive(Debug, Clone)]
pub struct Repro {
    pub check: String,
    pub case: FuzzCase,
    pub path: Option<PathBuf>,
}

/// Outcome of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    pub cases: u64,
    pub repros: Vec<Repro>,
    pub engines: Vec<EngineStats>,
    /// `true` if the wall-clock budget stopped the loop early.
    pub stopped_early: bool,
    pub elapsed_ms: u128,
}

impl FuzzReport {
    /// No discrepancies of any kind.
    pub fn clean(&self) -> bool {
        self.repros.is_empty()
    }

    /// Multi-line human summary for the CLI.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fuzz: {} cases in {} ms{}",
            self.cases,
            self.elapsed_ms,
            if self.stopped_early {
                " (stopped by --budget-ms)"
            } else {
                ""
            }
        );
        for e in &self.engines {
            let _ = writeln!(
                s,
                "  sampler {:>10}: {} trials, {} envelope misses (worst {:.3}x)",
                e.engine, e.trials, e.failures, e.worst_err
            );
        }
        if self.repros.is_empty() {
            let _ = writeln!(s, "  no discrepancies");
        }
        for r in &self.repros {
            let _ = writeln!(
                s,
                "  DISCREPANCY [{}] {} -> {}",
                r.check,
                r.case,
                r.path
                    .as_ref()
                    .map_or("(not written)".to_string(), |p| p.display().to_string())
            );
        }
        s
    }
}

/// The `n·δ + 3σ` binomial tolerance from `tests/statistical_guarantees.rs`:
/// an engine honoring its δ stays under this with overwhelming probability.
fn binomial_threshold(trials: u64, delta: f64) -> u64 {
    let n = trials as f64;
    (n * delta + 3.0 * (n * delta * (1.0 - delta)).sqrt()).ceil() as u64
}

/// A deterministic failure predicate for the shrinker: the case still
/// produces a failure with the same check name (differential or
/// metamorphic), without any sampler runs.
fn deterministic_fails(case: &FuzzCase, check: &str, eps: f64, delta: f64) -> bool {
    let diff_hit = match check_case(case, eps, delta, false) {
        Ok(out) => out.failures.iter().any(|f| f.check == check),
        Err(_) => false,
    };
    if diff_hit {
        return true;
    }
    match check_metamorphic(case) {
        Ok(fails) => fails.iter().any(|f| f.check == check),
        Err(_) => false,
    }
}

/// Majority predicate for sampler failures: the suspect engine must miss
/// its envelope under at least 5 of 6 fresh seed salts. A correct engine
/// at δ = 0.2 passes this with probability ≈ 1 − 1.6·10⁻³; a hard-broken
/// one fails every salt.
fn sampler_fails(case: &FuzzCase, engine: &str, eps: f64, delta: f64) -> bool {
    let mut misses = 0u32;
    for salt in 1..=6u64 {
        match check_case_salted(case, eps, delta, true, salt) {
            Ok(out) => {
                let trial = out.trials.iter().find(|t| t.engine == engine);
                match trial {
                    Some(t) if !t.ok => misses += 1,
                    Some(_) => {}
                    None => return false,
                }
            }
            Err(_) => return false,
        }
    }
    misses >= 5
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

fn write_repro(dir: &Path, check: &str, case: &FuzzCase) -> Option<PathBuf> {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create corpus dir {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!(
        "repro-{}-{}-{}.json",
        sanitize(check),
        sanitize(&case.family),
        case.seed
    ));
    match std::fs::write(&path, case.to_json()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Run the full fuzz loop described by `cfg`.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let mut repros: Vec<Repro> = Vec::new();
    let mut engines: BTreeMap<&'static str, EngineStats> = BTreeMap::new();
    let mut cases = 0u64;
    let mut stopped_early = false;

    for i in 0..cfg.seeds {
        if let Some(ms) = cfg.budget_ms {
            if start.elapsed().as_millis() >= ms as u128 {
                stopped_early = true;
                break;
            }
        }
        let family = &cfg.families[(i % cfg.families.len() as u64) as usize];
        let seed = cfg.start_seed + i;
        let case = gen::generate(seed, family);
        cases += 1;

        let mut failures = Vec::new();
        match check_case(&case, cfg.eps, cfg.delta, cfg.sample) {
            Ok(out) => {
                failures.extend(out.failures);
                for t in out.trials {
                    let e = engines.entry(t.engine).or_insert_with(|| EngineStats {
                        engine: t.engine.to_string(),
                        trials: 0,
                        failures: 0,
                        worst_err: 0.0,
                        worst_case: None,
                    });
                    e.trials += 1;
                    if !t.ok {
                        e.failures += 1;
                    }
                    if t.err > e.worst_err {
                        e.worst_err = t.err;
                        e.worst_case = Some(case.clone());
                    }
                }
            }
            Err(e) => failures.push(crate::diff::Failure {
                check: "harness".to_string(),
                detail: e,
            }),
        }
        match check_metamorphic(&case) {
            Ok(meta) => failures.extend(meta),
            Err(e) => failures.push(crate::diff::Failure {
                check: "harness-meta".to_string(),
                detail: e,
            }),
        }

        // One repro per case: the first failure is the one we shrink —
        // further failures on the same case are almost always the same
        // root cause seen through a different check.
        if let Some(first) = failures.first() {
            eprintln!("fuzz: [{}] {} :: {}", first.check, case, first.detail);
            let check = first.check.clone();
            let (eps, delta) = (cfg.eps, cfg.delta);
            let pred = |c: &FuzzCase| deterministic_fails(c, &check, eps, delta);
            let mut small = if pred(&case) {
                shrink(&case, &pred)
            } else {
                case.clone()
            };
            small.note = format!(
                "found by qrel fuzz: check {check} failed; {}",
                first.detail.chars().take(200).collect::<String>()
            );
            let path = cfg
                .corpus_dir
                .as_deref()
                .and_then(|d| write_repro(d, &check, &small));
            repros.push(Repro {
                check,
                case: small,
                path,
            });
        }
    }

    // Envelope accounting: only flag an engine whose failure count
    // breaches the binomial tolerance for its own δ.
    for stats in engines.values() {
        if stats.trials == 0 || stats.failures <= binomial_threshold(stats.trials, cfg.delta) {
            continue;
        }
        let check = format!("envelope-{}", stats.engine);
        let Some(worst) = &stats.worst_case else {
            continue;
        };
        eprintln!(
            "fuzz: [{}] {}/{} trials missed the envelope",
            check, stats.failures, stats.trials
        );
        let engine = stats.engine.clone();
        let (eps, delta) = (cfg.eps, cfg.delta);
        let pred = |c: &FuzzCase| sampler_fails(c, &engine, eps, delta);
        let mut small = if pred(worst) {
            shrink(worst, &pred)
        } else {
            worst.clone()
        };
        small.note = format!(
            "found by qrel fuzz: sampler {} missed its (eps, delta) envelope in {}/{} trials",
            stats.engine, stats.failures, stats.trials
        );
        let path = cfg
            .corpus_dir
            .as_deref()
            .and_then(|d| write_repro(d, &check, &small));
        repros.push(Repro {
            check,
            case: small,
            path,
        });
    }

    FuzzReport {
        cases,
        repros,
        engines: engines.into_values().collect(),
        stopped_early,
        elapsed_ms: start.elapsed().as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_over_all_families() {
        let cfg = FuzzConfig {
            seeds: 16,
            sample: false,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert_eq!(report.cases, 16);
        assert!(report.clean(), "{}", report.summary());
        assert!(!report.stopped_early);
    }

    #[test]
    fn budget_stops_the_loop() {
        let cfg = FuzzConfig {
            seeds: u64::MAX / 2,
            budget_ms: Some(1),
            sample: false,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert!(report.stopped_early);
        assert!(report.cases < 1_000_000);
    }

    #[test]
    fn binomial_threshold_matches_reference() {
        // Same closed form as tests/statistical_guarantees.rs.
        assert_eq!(binomial_threshold(100, 0.2), 32);
        assert!(binomial_threshold(10, 0.2) >= 2);
    }
}
