//! The serializable fuzz-case format.
//!
//! A [`FuzzCase`] is the unit of work for the differential oracle: either
//! a *query-reliability* case (an [`UnreliableDatabaseSpec`] plus a query
//! string) or a *DNF-event* case (a propositional DNF with per-variable
//! probabilities). Cases serialize to JSON so that every discrepancy the
//! fuzzer finds can be committed under `tests/corpus/` and replayed
//! forever as a regression test.

use qrel_arith::BigRational;
use qrel_logic::prop::{Dnf, Lit};
use qrel_prob::{UnreliableDatabase, UnreliableDatabaseSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A propositional DNF event with per-variable Bernoulli probabilities —
/// the instance family the `qrel-count` engines (Shannon expansion,
/// inclusion–exclusion, ROBDD, Karp–Luby, naive MC) all consume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnfEventSpec {
    /// Number of propositional variables.
    pub num_vars: usize,
    /// Terms as DIMACS-style signed 1-based literals: `3` is `x₂`
    /// positive, `-1` is `¬x₀`.
    pub terms: Vec<Vec<i64>>,
    /// `Pr[xᵢ = true]` as `"p/q"` strings, one per variable.
    pub probs: Vec<String>,
}

impl DnfEventSpec {
    /// Decode into the computational form.
    pub fn build(&self) -> Result<(Dnf, Vec<BigRational>), String> {
        if self.probs.len() != self.num_vars {
            return Err(format!(
                "{} probs for {} vars",
                self.probs.len(),
                self.num_vars
            ));
        }
        let mut terms = Vec::with_capacity(self.terms.len());
        for term in &self.terms {
            let mut lits = Vec::with_capacity(term.len());
            for &code in term {
                if code == 0 {
                    return Err("literal code 0 is invalid".into());
                }
                let var = (code.unsigned_abs() - 1) as u32;
                if var as usize >= self.num_vars {
                    return Err(format!("literal {code} exceeds num_vars {}", self.num_vars));
                }
                lits.push(if code > 0 {
                    Lit::pos(var)
                } else {
                    Lit::neg(var)
                });
            }
            terms.push(lits);
        }
        let mut probs = Vec::with_capacity(self.num_vars);
        for (i, p) in self.probs.iter().enumerate() {
            let p = BigRational::parse(p).map_err(|e| format!("probs[{i}]: {e}"))?;
            if !p.is_probability() {
                return Err(format!("probs[{i}] = {p} is not in [0,1]"));
            }
            probs.push(p);
        }
        Ok((Dnf::from_terms(terms), probs))
    }

    /// Encode from the computational form.
    pub fn from_parts(dnf: &Dnf, probs: &[BigRational]) -> Self {
        DnfEventSpec {
            num_vars: probs.len(),
            terms: dnf
                .terms()
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|l| {
                            let code = (l.var + 1) as i64;
                            if l.positive {
                                code
                            } else {
                                -code
                            }
                        })
                        .collect()
                })
                .collect(),
            probs: probs.iter().map(|p| p.to_string()).collect(),
        }
    }
}

/// One fuzz case. Exactly one of `db`+`query` (query-reliability case)
/// or `dnf` (DNF-event case) is populated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuzzCase {
    /// The generator seed that produced this case (0 for hand-written
    /// corpus entries).
    #[serde(default)]
    pub seed: u64,
    /// Generator family name (see `gen::Family`); informational.
    #[serde(default)]
    pub family: String,
    /// Free-text provenance note ("found by qrel fuzz vs …",
    /// "hand-planted regression for …").
    #[serde(default)]
    pub note: String,
    /// The unreliable database, for query cases.
    #[serde(default)]
    pub db: Option<UnreliableDatabaseSpec>,
    /// Query text in the `qrel_logic::parser` syntax, for query cases.
    #[serde(default)]
    pub query: Option<String>,
    /// Free-variable order (defaults to the sorted free variables).
    #[serde(default)]
    pub free: Option<Vec<String>>,
    /// The DNF event, for count-engine cases.
    #[serde(default)]
    pub dnf: Option<DnfEventSpec>,
}

impl FuzzCase {
    pub fn query_case(
        seed: u64,
        family: &str,
        spec: UnreliableDatabaseSpec,
        query: String,
    ) -> Self {
        FuzzCase {
            seed,
            family: family.to_string(),
            note: String::new(),
            db: Some(spec),
            query: Some(query),
            free: None,
            dnf: None,
        }
    }

    pub fn dnf_case(seed: u64, family: &str, dnf: DnfEventSpec) -> Self {
        FuzzCase {
            seed,
            family: family.to_string(),
            note: String::new(),
            db: None,
            query: None,
            free: None,
            dnf: Some(dnf),
        }
    }

    /// Basic shape validation plus decode of the database side (query
    /// parsing happens in the differential runner, which needs the
    /// formula anyway).
    pub fn build_db(&self) -> Result<Option<UnreliableDatabase>, String> {
        match (&self.db, &self.query, &self.dnf) {
            (Some(spec), Some(_), None) => {
                Ok(Some(spec.build().map_err(|e| format!("bad spec: {e}"))?))
            }
            (None, None, Some(_)) => Ok(None),
            _ => Err("case must carry either db+query or dnf".into()),
        }
    }

    /// Number of *uncertain facts* (query case) or *variables* (DNF
    /// case) — the size metric the shrinker minimizes and the acceptance
    /// bar ("≤ 10-fact repro") measures.
    pub fn size(&self) -> usize {
        if let Some(spec) = &self.db {
            spec.errors.len()
        } else if let Some(d) = &self.dnf {
            d.num_vars
        } else {
            0
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("case serialization is infallible")
    }

    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad fuzz case JSON: {e}"))
    }
}

impl fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.query, &self.dnf) {
            (Some(q), _) => write!(
                f,
                "seed={} family={} query={q:?} ({} error entries)",
                self.seed,
                self.family,
                self.db.as_ref().map_or(0, |s| s.errors.len())
            ),
            (None, Some(d)) => write!(
                f,
                "seed={} family={} dnf({} vars, {} terms)",
                self.seed,
                self.family,
                d.num_vars,
                d.terms.len()
            ),
            _ => write!(f, "seed={} family={} (malformed)", self.seed, self.family),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_db::DatabaseBuilder;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn dnf_spec_round_trips() {
        let dnf = Dnf::from_terms([vec![Lit::pos(0), Lit::neg(1)], vec![Lit::pos(2)]]);
        let probs = vec![r(1, 2), r(1, 4), r(1, 64)];
        let spec = DnfEventSpec::from_parts(&dnf, &probs);
        assert_eq!(spec.terms, vec![vec![1, -2], vec![3]]);
        let (dnf2, probs2) = spec.build().unwrap();
        assert_eq!(dnf2.terms(), dnf.terms());
        assert_eq!(probs2, probs);
    }

    #[test]
    fn dnf_spec_validates() {
        let bad = DnfEventSpec {
            num_vars: 2,
            terms: vec![vec![3]],
            probs: vec!["1/2".into(), "1/2".into()],
        };
        assert!(bad.build().is_err());
        let bad = DnfEventSpec {
            num_vars: 1,
            terms: vec![vec![0]],
            probs: vec!["1/2".into()],
        };
        assert!(bad.build().is_err());
        let bad = DnfEventSpec {
            num_vars: 1,
            terms: vec![vec![1]],
            probs: vec!["3/2".into()],
        };
        assert!(bad.build().is_err());
    }

    #[test]
    fn case_json_round_trips() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&qrel_db::Fact::new(0, vec![0]), r(1, 4))
            .unwrap();
        let spec = UnreliableDatabaseSpec::from_model(&ud);
        let case = FuzzCase::query_case(7, "qf", spec, "S(x)".into());
        let json = case.to_json();
        let back = FuzzCase::from_json(&json).unwrap();
        assert_eq!(back, case);
        assert!(back.build_db().unwrap().is_some());
        assert_eq!(back.size(), 1);
    }

    #[test]
    fn malformed_cases_are_rejected() {
        let empty = FuzzCase {
            seed: 0,
            family: "x".into(),
            note: String::new(),
            db: None,
            query: None,
            free: None,
            dnf: None,
        };
        assert!(empty.build_db().is_err());
    }
}
