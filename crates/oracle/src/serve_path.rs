//! The serve-path mode: round-trip query cases through a real
//! `POST /v1/solve` over TCP and assert the HTTP response body is
//! byte-identical to what the library produces for the same request —
//! the networked service must add *nothing* to the numeric path.
//!
//! Method is pinned to `exact`: a single-rung ladder whose answer is a
//! pure function of the instance, so the server's deadline budget (which
//! the library mirror replaces with an unlimited one) cannot influence
//! the report. Each case is sent twice; the second response must hit the
//! result cache and still carry the identical body.

use crate::case::FuzzCase;
use crate::diff::Failure;
use qrel_budget::Budget;
use qrel_eval::FoQuery;
use qrel_runtime::{Method, Solver};
use qrel_serve::{protocol, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Outcome of a serve round-trip sweep.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Query cases actually round-tripped (DNF cases have no HTTP
    /// surface and are skipped).
    pub cases: u64,
    pub mismatches: Vec<Failure>,
}

pub(crate) fn post_solve(addr: SocketAddr, body: &str) -> Result<(u16, String, bool), String> {
    http_request(addr, "POST", "/v1/solve", body)
}

pub(crate) fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String, bool), String> {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut conn = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    conn.write_all(raw.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut text = String::new();
    conn.read_to_string(&mut text)
        .map_err(|e| format!("recv: {e}"))?;
    let (head, resp_body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("incomplete response: {text:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {head:?}"))?;
    let cache_hit = head
        .lines()
        .any(|l| l.to_ascii_lowercase().starts_with("x-qrel-cache: hit"));
    Ok((status, resp_body.to_string(), cache_hit))
}

/// Pull a `"field":<digits>` value out of a flat JSON body.
fn json_u64(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Pull a `"field":"<string>"` value out of a flat JSON body.
fn json_str(body: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let at = body.find(&needle)? + needle.len();
    Some(body[at..].split('"').next()?.to_string())
}

/// Submit `body` via `POST /v1/jobs`, poll the job to a terminal state,
/// then fetch its stored result twice — both fetches must be 200 and
/// byte-identical to `expected`. Returns the first failure found.
fn job_round_trip(
    addr: SocketAddr,
    body: &str,
    expected: &str,
    case: &FuzzCase,
) -> Option<Failure> {
    let (status, receipt, _) = match http_request(addr, "POST", "/v1/jobs", body) {
        Ok(r) => r,
        Err(e) => {
            return Some(Failure {
                check: "serve-transport".into(),
                detail: format!("{case}: job submit: {e}"),
            })
        }
    };
    if status != 202 {
        return Some(Failure {
            check: "serve-job-status".into(),
            detail: format!("{case}: job submit got HTTP {status}: {receipt}"),
        });
    }
    let Some(id) = json_u64(&receipt, "job_id") else {
        return Some(Failure {
            check: "serve-job-status".into(),
            detail: format!("{case}: job receipt has no job_id: {receipt}"),
        });
    };

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (status, snap, _) = match http_request(addr, "GET", &format!("/v1/jobs/{id}"), "") {
            Ok(r) => r,
            Err(e) => {
                return Some(Failure {
                    check: "serve-transport".into(),
                    detail: format!("{case}: job poll: {e}"),
                })
            }
        };
        if status != 200 {
            return Some(Failure {
                check: "serve-job-status".into(),
                detail: format!("{case}: job poll got HTTP {status}: {snap}"),
            });
        }
        match json_str(&snap, "state").as_deref() {
            Some("done") => break,
            Some("failed") | Some("cancelled") => {
                return Some(Failure {
                    check: "serve-job-status".into(),
                    detail: format!("{case}: job ended abnormally: {snap}"),
                })
            }
            _ if std::time::Instant::now() >= deadline => {
                return Some(Failure {
                    check: "serve-job-status".into(),
                    detail: format!("{case}: job did not finish in 30s: {snap}"),
                })
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }

    for fetch in 0..2 {
        match http_request(addr, "GET", &format!("/v1/jobs/{id}/result"), "") {
            Ok((200, got, _)) => {
                if got != expected {
                    return Some(Failure {
                        check: "serve-job-bitdiff".into(),
                        detail: format!(
                            "{case}: job result (fetch {fetch}) != library: {got} vs {expected}"
                        ),
                    });
                }
            }
            Ok((status, got, _)) => {
                return Some(Failure {
                    check: "serve-job-status".into(),
                    detail: format!("{case}: job result got HTTP {status}: {got}"),
                })
            }
            Err(e) => {
                return Some(Failure {
                    check: "serve-transport".into(),
                    detail: format!("{case}: job result: {e}"),
                })
            }
        }
    }
    None
}

/// Round-trip every query case in `cases` through an in-process server.
pub fn serve_round_trip(cases: &[FuzzCase]) -> Result<ServeReport, String> {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let mut report = ServeReport {
        cases: 0,
        mismatches: Vec::new(),
    };
    for case in cases {
        let (Some(spec), Some(query)) = (&case.db, &case.query) else {
            continue;
        };
        report.cases += 1;

        // The library mirror of the server's solve path.
        let expected = (|| -> Result<String, String> {
            let ud = spec.build().map_err(|e| e.to_string())?;
            let q = FoQuery::parse(query).map_err(|e| e.to_string())?;
            let solve = Solver::new()
                .with_method(Method::Exact)
                .with_accuracy(0.05, 0.05) // the protocol's eps/delta defaults
                .with_seed(case.seed)
                .with_threads(1)
                .solve(&ud, &q, &Budget::unlimited())
                .map_err(|e| e.to_string())?;
            String::from_utf8(protocol::solve_response_body(&solve)).map_err(|e| e.to_string())
        })();
        let expected = match expected {
            Ok(b) => b,
            Err(e) => {
                report.mismatches.push(Failure {
                    check: "serve-local".into(),
                    detail: format!("{case}: library solve failed: {e}"),
                });
                continue;
            }
        };

        let body = format!(
            "{{\"db\":{},\"query\":{},\"method\":\"exact\",\"seed\":{}}}",
            serde_json::to_string(spec).map_err(|e| e.to_string())?,
            serde_json::to_string(query).map_err(|e| e.to_string())?,
            case.seed
        );

        for round in 0..2 {
            match post_solve(addr, &body) {
                Ok((200, got, cache_hit)) => {
                    if got != expected {
                        report.mismatches.push(Failure {
                            check: "serve-bitdiff".into(),
                            detail: format!(
                                "{case}: HTTP body (round {round}) != library: {got} vs {expected}"
                            ),
                        });
                        break;
                    }
                    if round == 1 && !cache_hit {
                        report.mismatches.push(Failure {
                            check: "serve-cache-miss".into(),
                            detail: format!("{case}: identical repeat request missed the cache"),
                        });
                    }
                }
                Ok((status, got, _)) => {
                    report.mismatches.push(Failure {
                        check: "serve-status".into(),
                        detail: format!("{case}: HTTP {status}: {got}"),
                    });
                    break;
                }
                Err(e) => {
                    report.mismatches.push(Failure {
                        check: "serve-transport".into(),
                        detail: format!("{case}: {e}"),
                    });
                    break;
                }
            }
        }

        // The asynchronous job path must agree byte-for-byte too. A bumped
        // seed forces a cache miss (exact reports are seed-independent, so
        // the library mirror still applies) and therefore a live scheduler
        // execution; the second pass lands on the stored result and must
        // replay the same bytes.
        let job_body = format!(
            "{{\"db\":{},\"query\":{},\"method\":\"exact\",\"seed\":{}}}",
            serde_json::to_string(spec).map_err(|e| e.to_string())?,
            serde_json::to_string(query).map_err(|e| e.to_string())?,
            case.seed.wrapping_add(1)
        );
        for _pass in 0..2 {
            if let Some(failure) = job_round_trip(addr, &job_body, &expected, case) {
                report.mismatches.push(failure);
                break;
            }
        }
    }

    handle.shutdown();
    // Nudge the accept loop so it notices the shutdown flag promptly.
    let _ = TcpStream::connect(addr);
    let _ = join.join();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip_is_bit_identical() {
        let cases: Vec<FuzzCase> = ["qf", "sjf-cq", "efo", "universal"]
            .iter()
            .enumerate()
            .map(|(i, f)| gen::generate(200 + i as u64, f))
            .collect();
        let report = serve_round_trip(&cases).unwrap();
        assert_eq!(report.cases, 4);
        assert!(report.mismatches.is_empty(), "{:#?}", report.mismatches);
    }
}
