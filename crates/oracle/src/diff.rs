//! The differential layer: run one case through every applicable engine.
//!
//! Exact engines must agree **bit-for-bit** in exact rationals — the
//! serial Gray-code enumerator (`exact_probability`, Thm 4.2) is the
//! oracle, and the parallel enumerator, the budgeted solver's exact
//! route, the Prop 3.1 quantifier-free fast path, the Thm 5.4
//! grounding + Shannon pipeline, and the bit-sliced world enumerator
//! (64 worlds per word, dyadic fast-path arithmetic) are all held to
//! exact equality against it. For DNF events, Shannon expansion is the
//! oracle and inclusion–exclusion, the ROBDD, the bit-sliced enumerator
//! (serial and sharded), and the model counters must match.
//!
//! Samplers (Karp–Luby, naive MC, the Thm 5.12 padding estimator, the
//! Cor 5.5 reliability estimator) are *allowed* to miss: each run is one
//! Bernoulli trial whose failure probability is bounded by δ. Trials are
//! therefore returned to the caller, which aggregates failure counts per
//! engine across the whole fuzz run and only flags an engine whose
//! empirical failure rate breaches the `n·δ + 3σ` binomial threshold —
//! the same accounting as `tests/statistical_guarantees.rs`.

use crate::case::FuzzCase;
use qrel_arith::BigRational;
use qrel_budget::Budget;
use qrel_core::{
    exact_probability, exact_probability_parallel, exact_reliability, exact_reliability_parallel,
    existential_probability_bitslice, existential_probability_exact,
    existential_probability_fptras, qf_reliability, PaddingEstimator, Route,
};
use qrel_count::exact_dnf::dnf_count_models;
use qrel_count::naive_mc::naive_mc_probability_sharded;
use qrel_count::{
    bounds::hoeffding_samples, dnf_count_models_bitslice, dnf_probability_bdd,
    dnf_probability_bitslice, dnf_probability_bitslice_sharded, dnf_probability_ie,
    dnf_probability_shannon, Bdd, KarpLuby,
};
use qrel_eval::{FoQuery, Query};
use qrel_logic::Fragment;
use qrel_par::{split_seed, DEFAULT_SHARDS};
use qrel_prob::UnreliableDatabase;
use qrel_runtime::{Method, Solver};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic disagreement between two engines. Always a bug in
/// one of them (or in the oracle harness itself) — never noise.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Which cross-check failed, e.g. `"exact-parallel"`, `"dnf-ie"`.
    pub check: String,
    /// Human-readable detail carrying both values.
    pub detail: String,
}

/// One sampler run, judged against its (ε, δ) envelope.
#[derive(Debug, Clone)]
pub struct SamplerTrial {
    /// Engine name, e.g. `"karp-luby"`, `"padding"`.
    pub engine: &'static str,
    /// Whether the estimate landed inside the envelope.
    pub ok: bool,
    /// Envelope-normalized error (1.0 = exactly at the boundary).
    pub err: f64,
}

/// Everything the differential layer observed about one case.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    pub failures: Vec<Failure>,
    pub trials: Vec<SamplerTrial>,
}

impl CheckOutcome {
    fn fail(&mut self, check: &str, detail: String) {
        self.failures.push(Failure {
            check: check.to_string(),
            detail,
        });
    }

    fn trial(&mut self, engine: &'static str, ok: bool, err: f64) {
        self.trials.push(SamplerTrial { engine, ok, err });
    }
}

/// Run every applicable engine on `case` and cross-check.
///
/// `eps`/`delta` parameterize the sampler envelopes; `sample` toggles
/// the sampler trials (the shrinker turns them off — shrinking chases a
/// *deterministic* failure and sampling would slow each probe ~100×).
pub fn check_case(
    case: &FuzzCase,
    eps: f64,
    delta: f64,
    sample: bool,
) -> Result<CheckOutcome, String> {
    check_case_salted(case, eps, delta, sample, 0)
}

/// [`check_case`] with an extra seed salt folded into every sampler
/// stream. The envelope-shrinking majority predicate re-runs a suspect
/// engine under several salts — a genuinely broken sampler fails them
/// all, a statistical fluke does not.
pub fn check_case_salted(
    case: &FuzzCase,
    eps: f64,
    delta: f64,
    sample: bool,
    salt: u64,
) -> Result<CheckOutcome, String> {
    let mut out = CheckOutcome::default();
    let base = split_seed(case.seed, salt);
    if let Some(ud) = case.build_db()? {
        let text = case.query.as_deref().expect("validated by build_db");
        let query = FoQuery::parse(text).map_err(|e| format!("bad query {text:?}: {e}"))?;
        if !query.formula().free_vars().is_empty() {
            return Err(format!("query {text:?} is not a sentence"));
        }
        check_query_case(case, base, &ud, &query, eps, delta, sample, &mut out);
    } else {
        let spec = case.dnf.as_ref().expect("validated by build_db");
        let (dnf, probs) = spec.build()?;
        check_dnf_case(base, &dnf, &probs, eps, delta, sample, &mut out);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn check_query_case(
    case: &FuzzCase,
    base: u64,
    ud: &UnreliableDatabase,
    query: &FoQuery,
    eps: f64,
    delta: f64,
    sample: bool,
    out: &mut CheckOutcome,
) {
    let formula = query.formula();
    // Oracle: serial Gray-code world enumeration (Thm 4.2).
    let p = match exact_probability(ud, query) {
        Ok(p) => p,
        Err(e) => {
            out.fail("exact-serial", format!("oracle evaluation failed: {e}"));
            return;
        }
    };

    match exact_probability_parallel(ud, query, 3) {
        Ok(q) if q == p => {}
        Ok(q) => out.fail(
            "exact-parallel",
            format!("parallel enumerator {q} != serial {p}"),
        ),
        Err(e) => out.fail("exact-parallel", format!("parallel enumerator failed: {e}")),
    }

    // Reliability side: R = 1 − H (Boolean query), serial vs parallel vs
    // the budgeted solver's exact route.
    let rel = match exact_reliability(ud, query) {
        Ok(r) => r,
        Err(e) => {
            out.fail("exact-reliability", format!("evaluation failed: {e}"));
            return;
        }
    };
    match exact_reliability_parallel(ud, query, 3) {
        Ok(r) if r.reliability == rel.reliability => {}
        Ok(r) => out.fail(
            "exact-reliability-parallel",
            format!("parallel {} != serial {}", r.reliability, rel.reliability),
        ),
        Err(e) => out.fail("exact-reliability-parallel", format!("failed: {e}")),
    }

    match Solver::new()
        .with_method(Method::Exact)
        .with_threads(2)
        .with_seed(case.seed)
        .solve(ud, query, &Budget::unlimited())
    {
        Ok(report) => match &report.exact {
            Some(r) if *r == rel.reliability => {}
            Some(r) => out.fail(
                "solver-exact",
                format!("solver exact {} != library {}", r, rel.reliability),
            ),
            None => out.fail(
                "solver-exact",
                "Method::Exact produced no exact rational".to_string(),
            ),
        },
        Err(e) => out.fail("solver-exact", format!("solver failed: {e}")),
    }

    // Safe-plan compiler (the dichotomy's PTIME side). Where the shape
    // compiles, the extensional plan must match the Thm 4.2 enumerator
    // bit-for-bit on both quantities; where it declines, the decline
    // must be legitimate — cross-checked against the *independent*
    // pairwise hierarchy test, which must never contradict the
    // compiler on the fragment where it is decisive.
    match qrel_plan::compile(formula) {
        Ok(plan) => {
            match qrel_plan::sentence_probability(ud, &plan) {
                Ok(q) if q == p => {}
                Ok(q) => out.fail(
                    "safe-plan",
                    format!("plan probability {q} != enumerator {p}"),
                ),
                Err(e) => out.fail("safe-plan", format!("plan evaluation failed: {e}")),
            }
            match qrel_plan::reliability(ud, &plan, formula, query.free_vars()) {
                Ok(r) if r.reliability == rel.reliability => {}
                Ok(r) => out.fail(
                    "safe-plan-reliability",
                    format!(
                        "plan reliability {} != enumerator {}",
                        r.reliability, rel.reliability
                    ),
                ),
                Err(e) => out.fail("safe-plan-reliability", format!("failed: {e}")),
            }
            if qrel_plan::pairwise_hierarchical(formula) == Some(false) {
                out.fail(
                    "safe-plan-safety",
                    "compiler accepted a query the pairwise hierarchy test rejects".to_string(),
                );
            }
        }
        Err(reason) => {
            if qrel_plan::pairwise_hierarchical(formula) == Some(true) {
                out.fail(
                    "safe-plan-safety",
                    format!("compiler declined a hierarchical sjf-CQ: {reason}"),
                );
            }
        }
    }

    // Consistency between the two exact quantities for a sentence:
    // H = μ-mass of worlds where the truth value flips, so
    // R = Pr[ψ] if 𝔄 ⊨ ψ, else 1 − Pr[ψ].
    let observed = match query.eval_sentence(ud.observed()) {
        Ok(b) => b,
        Err(e) => {
            out.fail("observed-eval", format!("failed: {e}"));
            return;
        }
    };
    let expected_rel = if observed { p.clone() } else { p.one_minus() };
    if rel.reliability != expected_rel {
        out.fail(
            "prob-vs-reliability",
            format!(
                "R = {} but Pr[ψ] = {p} with 𝔄 ⊨ ψ = {observed} implies R = {expected_rel}",
                rel.reliability
            ),
        );
    }

    // Prop 3.1 fast path (quantifier-free sentences).
    if formula.is_quantifier_free() {
        match qf_reliability(ud, formula, &[]) {
            Ok(r) if r.reliability == rel.reliability => {}
            Ok(r) => out.fail(
                "qf-fast-path",
                format!(
                    "Prop 3.1 reliability {} != enumerator {}",
                    r.reliability, rel.reliability
                ),
            ),
            Err(e) => out.fail("qf-fast-path", format!("failed: {e}")),
        }
    }

    // Thm 5.4 grounding + Shannon (existential fragment, incl. QF).
    let existential = matches!(
        formula.fragment(),
        Fragment::QuantifierFree | Fragment::Existential | Fragment::Conjunctive
    );
    if existential {
        match existential_probability_exact(ud, formula) {
            Ok(q) if q == p => {}
            Ok(q) => out.fail(
                "grounding-shannon",
                format!("grounded Shannon {q} != enumerator {p}"),
            ),
            Err(e) => out.fail("grounding-shannon", format!("failed: {e}")),
        }

        // Grounding + bit-sliced world enumeration: the fixed-width
        // dyadic fast path with BigRational promotion must be exactly
        // the Thm 4.2 value, bit for bit.
        match existential_probability_bitslice(ud, formula) {
            Ok(q) if q == p => {}
            Ok(q) => out.fail(
                "exact-bitslice",
                format!("bit-sliced enumerator {q} != enumerator {p}"),
            ),
            Err(e) => out.fail("exact-bitslice", format!("failed: {e}")),
        }
    }

    if !sample {
        return;
    }
    let pf = p.to_f64();

    // Thm 5.12 padding estimator: absolute (ε, δ) on ν(ψ).
    let pad_seed = split_seed(base, 0x9AD);
    match PaddingEstimator::default_xi().estimate_probability_sharded(
        ud,
        query,
        eps,
        delta,
        pad_seed,
        DEFAULT_SHARDS,
        2,
    ) {
        Ok(est) => {
            let err = (est.estimate - pf).abs() / eps;
            out.trial("padding", err <= 1.0, err);
        }
        Err(e) => out.fail("padding", format!("estimator failed: {e}")),
    }

    // Thm 5.4 FPTRAS: relative (ε, δ) on ν(ψ).
    if existential {
        let mut rng = StdRng::seed_from_u64(split_seed(base, 0xF9A5));
        match existential_probability_fptras(ud, formula, eps, delta, Route::Direct, &mut rng) {
            Ok(est) => {
                if pf == 0.0 {
                    // Karp–Luby total weight is 0, so the estimate must be too.
                    out.trial(
                        "fptras",
                        est == 0.0,
                        if est == 0.0 { 0.0 } else { f64::MAX },
                    );
                } else {
                    let err = (est - pf).abs() / (eps * pf);
                    out.trial("fptras", err <= 1.0, err);
                }
            }
            Err(e) => out.fail("fptras", format!("failed: {e}")),
        }
    }
}

fn check_dnf_case(
    base: u64,
    dnf: &qrel_logic::prop::Dnf,
    probs: &[BigRational],
    eps: f64,
    delta: f64,
    sample: bool,
    out: &mut CheckOutcome,
) {
    let num_vars = probs.len();
    // Oracle: Shannon expansion.
    let p = dnf_probability_shannon(dnf, probs);

    let q = dnf_probability_ie(dnf, probs);
    if q != p {
        out.fail("dnf-ie", format!("inclusion-exclusion {q} != Shannon {p}"));
    }

    let q = dnf_probability_bdd(dnf, probs);
    if q != p {
        out.fail("dnf-bdd", format!("ROBDD {q} != Shannon {p}"));
    }

    // Bit-sliced world enumeration, serial and sharded (the sharded run
    // exercises the lane-aligned range splitting and ordered merge).
    let q = dnf_probability_bitslice(dnf, probs);
    if q != p {
        out.fail(
            "dnf-bitslice",
            format!("bit-sliced enumerator {q} != Shannon {p}"),
        );
    }
    let q = dnf_probability_bitslice_sharded(dnf, probs, DEFAULT_SHARDS, 2);
    if q != p {
        out.fail(
            "dnf-bitslice-sharded",
            format!("sharded bit-sliced enumerator {q} != Shannon {p}"),
        );
    }

    // Model counters: recursive counter vs ROBDD vs brute force.
    let brute = dnf.count_models_brute(num_vars);
    let counted = dnf_count_models(dnf, num_vars);
    if counted.to_string() != brute.to_string() {
        out.fail(
            "dnf-count",
            format!("dnf_count_models {counted} != brute force {brute}"),
        );
    }
    let mut bdd = Bdd::new();
    let node = bdd.from_dnf(dnf);
    let via_bdd = bdd.count_models(node, num_vars);
    if via_bdd.to_string() != brute.to_string() {
        out.fail(
            "bdd-count",
            format!("BDD model count {via_bdd} != brute force {brute}"),
        );
    }
    if num_vars <= 26 {
        let via_bits = dnf_count_models_bitslice(dnf, num_vars);
        if via_bits.to_string() != brute.to_string() {
            out.fail(
                "dnf-count-bitslice",
                format!("bit-sliced model count {via_bits} != brute force {brute}"),
            );
        }
    }

    if !sample {
        return;
    }
    let pf = p.to_f64();

    // Karp–Luby: relative (ε, δ).
    let kl = KarpLuby::new(dnf, probs);
    let samples = kl.samples_for(eps, delta);
    let report = kl.run_sharded(samples.max(1), split_seed(base, 0x5B), DEFAULT_SHARDS, 2);
    if pf == 0.0 {
        out.trial(
            "karp-luby",
            report.estimate == 0.0,
            if report.estimate == 0.0 {
                0.0
            } else {
                f64::MAX
            },
        );
    } else {
        let err = (report.estimate - pf).abs() / (eps * pf);
        out.trial("karp-luby", err <= 1.0, err);
    }

    // Naive MC: absolute (ε, δ) by Hoeffding.
    let est = naive_mc_probability_sharded(
        dnf,
        probs,
        hoeffding_samples(eps, delta).max(1),
        split_seed(base, 0x3C),
        DEFAULT_SHARDS,
        2,
    );
    let err = (est - pf).abs() / eps;
    out.trial("naive-mc", err <= 1.0, err);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn clean_engines_agree_on_every_family() {
        for family in gen::FAMILIES {
            for seed in 0..8 {
                let case = gen::generate(seed, family);
                let out = check_case(&case, 0.2, 0.2, false)
                    .unwrap_or_else(|e| panic!("{family}/{seed}: {e}"));
                assert!(
                    out.failures.is_empty(),
                    "{family}/{seed}: {:?}",
                    out.failures
                );
            }
        }
    }

    #[test]
    fn sampler_trials_mostly_pass() {
        // δ = 0.2 across a handful of trials: a single failure is
        // tolerable, systematic failure is not.
        let mut failures = 0u32;
        let mut trials = 0u32;
        for (i, family) in ["dnf", "qf", "sjf-cq"].iter().enumerate() {
            let case = gen::generate(100 + i as u64, family);
            let out = check_case(&case, 0.25, 0.2, true).unwrap();
            assert!(out.failures.is_empty(), "{family}: {:?}", out.failures);
            for t in &out.trials {
                trials += 1;
                if !t.ok {
                    failures += 1;
                }
            }
        }
        assert!(trials >= 4, "expected sampler trials to run");
        assert!(
            failures * 3 <= trials,
            "sampler failure rate too high: {failures}/{trials}"
        );
    }
}
