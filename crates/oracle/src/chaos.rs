//! The chaos mode: round-trip query cases through a live server *while a
//! seeded [`FaultPlan`] is armed* and assert the fail-closed invariant:
//!
//! * every `200` carries either the bit-identical fault-free answer
//!   (trace/spent may differ when a rung healed through a retry — the
//!   *answer fields* up to `guaranteed` must match) or an explicitly
//!   tagged degradation (`partial` confidence, or a trace recording the
//!   deadline/cancellation/panic that degraded it);
//! * every non-`200` is an explicit, tagged error body — the server may
//!   refuse, it may never silently return garbage;
//! * no request outlives its deadline by more than the watchdog period
//!   plus the stall budget the plan itself injected ([`latency_bound`]).
//!
//! Faults are sampled deterministically from the pair seed
//! ([`sample_plan`]), so a chaos sweep is as replayable as the plain
//! differential fuzzer: same `(seed, plan)` → same fires → same verdict,
//! on any thread count. On a violation the repro is shrunk twice over —
//! first the plan (drop rules, clamp magnitudes), then the instance
//! (the ordinary [`shrink`] pass with the minimal plan pinned).
//!
//! The fault-free reference is computed *before* arming: arming is
//! process-global, and a reference computed under an armed plan could
//! itself absorb an injected fault.

use crate::case::FuzzCase;
use crate::gen;
use crate::serve_path::post_solve;
use crate::shrink::shrink;
use qrel_budget::Budget;
use qrel_eval::FoQuery;
use qrel_faults::{points, FaultPlan};
use qrel_runtime::{Method, Solver, MAX_RUNG_RETRIES};
use qrel_serve::{protocol, Server, ServerConfig};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Watchdog period used by chaos servers — short, so the hang bound is
/// tight without making the sweep flaky on a loaded machine.
const WATCHDOG_MS: u64 = 100;

/// Fixed scheduling slack added to every latency bound, on top of the
/// deadline, the watchdog period, and the plan's own stall budget.
const SLACK_MS: u64 = 2_000;

/// Chaos sweep configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of `(case, plan)` pairs to run.
    pub pairs: u64,
    /// First pair seed; pair `i` uses seed `start_seed + i`.
    pub start_seed: u64,
    /// Per-request `timeout_ms` sent to the server.
    pub timeout_ms: u64,
    /// Where shrunk repros are written (`None` = don't write).
    pub corpus_dir: Option<PathBuf>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            pairs: 500,
            start_seed: 0,
            timeout_ms: 2_000,
            corpus_dir: None,
        }
    }
}

/// One fail-closed violation, shrunk to a locally minimal `(case, plan)`.
#[derive(Debug, Clone)]
pub struct ChaosViolation {
    /// Violation class: `chaos-bitflip`, `chaos-untagged-error`,
    /// `chaos-hang`, `chaos-transport`, or `chaos-store`.
    pub kind: String,
    pub detail: String,
    pub case: FuzzCase,
    pub plan: FaultPlan,
    pub path: Option<PathBuf>,
}

/// Outcome of a chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Pairs actually round-tripped (cases without an HTTP surface are
    /// regenerated, so this equals the configured pair count).
    pub pairs: u64,
    pub violations: Vec<ChaosViolation>,
    /// One compact line per pair (`seed plan-points round-verdicts`),
    /// stable across runs — two sweeps with the same config must produce
    /// identical outcome vectors or replay determinism is broken.
    pub outcomes: Vec<String>,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e9b5);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministically sample a fault plan from `seed`: one to three rules
/// over the injection points a pinned-`exact` solve can reach, with
/// probabilities, stall delays, and fire caps drawn from small menus.
/// Stall points get bounded `max_fires` so [`latency_bound`] stays finite.
pub fn sample_plan(seed: u64) -> FaultPlan {
    const PROBS: [f64; 3] = [0.25, 0.5, 1.0];
    const DELAYS: [u64; 3] = [25, 100, 400];
    let mut s = splitmix(seed ^ 0xc4a0_5f4a);
    let mut draw = |n: u64| {
        s = splitmix(s);
        s % n
    };
    // (point, is_stall) menu; `exact` is the only rung chaos requests run.
    // The store points never fire on the solve path — they are exercised
    // by the durability probe [`run_pair`] appends for plans that draw
    // them.
    let menu: [(String, bool); 11] = [
        (points::SERVE_WORKER_PANIC.into(), false),
        (points::SERVE_CONN_SLOW_READ.into(), true),
        (points::rung_panic("exact"), false),
        (points::rung_stall("exact"), true),
        (points::PAR_SHARD_STALL.into(), true),
        (points::CACHE_REPLY_POISON.into(), false),
        (points::BUDGET_SPURIOUS_TRIP.into(), false),
        (points::SCHED_QUEUE_SPURIOUS_FULL.into(), false),
        (points::SCHED_WORKER_STALL.into(), true),
        (points::STORE_SEGMENT_TORN_WRITE.into(), false),
        (points::STORE_COMMIT_CRASH.into(), false),
    ];
    let mut plan = FaultPlan::new(seed);
    let rules = 1 + draw(3);
    let mut used = [false; 11];
    for _ in 0..rules {
        let idx = draw(11) as usize;
        if used[idx] {
            continue;
        }
        used[idx] = true;
        let (point, is_stall) = &menu[idx];
        let prob = PROBS[draw(3) as usize];
        let delay = if *is_stall {
            DELAYS[draw(3) as usize]
        } else {
            0
        };
        // Stalls are uncancellable sleeps: cap their fires so the hang
        // bound is a property of the plan, not of instance size.
        let max_fires = if *is_stall { 1 + draw(2) } else { draw(3) };
        plan = plan.with_rule(point, prob, delay, max_fires);
    }
    plan
}

/// The hang bound for one request under `plan`: deadline + watchdog
/// period + the stall budget the plan itself can legally inject + fixed
/// slack. A *correct* server stalls at most once per rung attempt, and
/// only retries a rung when a panic rule exists to make it transient —
/// so a server that retries non-retryable failures (or loops) overshoots
/// this bound and is flagged as a hang.
pub fn latency_bound(plan: &FaultPlan, timeout_ms: u64) -> u64 {
    let has_panic = plan
        .rules
        .iter()
        .any(|r| r.point.ends_with(".panic") && r.prob > 0.0);
    let attempts = if has_panic {
        1 + MAX_RUNG_RETRIES as u64
    } else {
        1
    };
    let mut bound = timeout_ms + WATCHDOG_MS + SLACK_MS;
    for r in &plan.rules {
        if r.prob <= 0.0 || r.delay_ms == 0 {
            continue;
        }
        let cap = |per_attempt: u64| {
            let legit = per_attempt * attempts;
            if r.max_fires == 0 {
                legit
            } else {
                r.max_fires.min(legit)
            }
        };
        if r.point == points::SERVE_CONN_SLOW_READ {
            // Fires once per connection, before the solve even starts.
            bound += r.delay_ms * cap(1).max(1);
        } else if r.point == points::PAR_SHARD_STALL {
            // Shards run serially under solver_threads=1; bounded by the
            // rule's fire cap (the sampler never leaves this unlimited).
            bound += r.delay_ms * if r.max_fires == 0 { 8 } else { r.max_fires };
        } else if r.point.ends_with(".stall") {
            bound += r.delay_ms * cap(1);
        }
    }
    bound
}

/// Does this plan contain a rule on a store durability point? Only such
/// plans run the store probe: the solve path never reaches those points,
/// so probing under store-free plans would only burn fsyncs.
fn has_store_rule(plan: &FaultPlan) -> bool {
    plan.rules.iter().any(|r| r.point.starts_with("store."))
}

/// Durability probe run while the plan is armed: commit a short batch
/// sequence into a scratch store and hold it to the crash-safety
/// contract — every commit either succeeds and passes `verify`, or
/// aborts with an injected fault leaving the published state bit-
/// identical; after the sweep a cold reopen must GC the debris and
/// verify clean. Returns one mark per attempt (`c` committed, `f`
/// fault-aborted and recovered) or a violation detail.
fn store_probe(seed: u64) -> Result<String, String> {
    use qrel_store::{Mutation, Store, StoreError};
    let dir = std::env::temp_dir().join(format!("qrel-chaos-store-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut marks = String::new();
    let mut store = Store::init(&dir).map_err(|e| format!("store init: {e}"))?;
    store
        .create_dataset(
            "probe",
            (0..4).map(|i| format!("e{i}")).collect(),
            vec![("S".to_string(), 1)],
            "full",
        )
        .map_err(|e| format!("create_dataset: {e}"))?;
    for round in 0..3u32 {
        let batch = [Mutation::set("S", vec![round], true, "1/2")];
        let before = store.dataset("probe").expect("probe exists").db_hash;
        match store.commit("probe", &batch) {
            Ok(_) => {
                store
                    .verify("probe")
                    .map_err(|e| format!("verify after commit {round}: {e}"))?;
                marks.push('c');
            }
            Err(StoreError::Injected(point)) => {
                // The published state must be exactly what it was before
                // the aborted commit — reopen from disk to prove it.
                let reopened =
                    Store::open(&dir).map_err(|e| format!("reopen after injected {point}: {e}"))?;
                let after = reopened
                    .dataset("probe")
                    .ok_or_else(|| format!("dataset lost after injected {point}"))?
                    .db_hash;
                if after != before {
                    return Err(format!(
                        "injected {point} mutated published state: \
                         db-hash {before:016x} -> {after:016x}"
                    ));
                }
                store = reopened;
                marks.push('f');
            }
            Err(e) => return Err(format!("commit {round}: unexpected error: {e}")),
        }
    }
    let reopened = Store::open(&dir).map_err(|e| format!("final reopen: {e}"))?;
    reopened
        .verify("probe")
        .map_err(|e| format!("verify after recovery: {e}"))?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(marks)
}

/// The answer fields of a solve body: everything up to `spent`. Retried
/// rungs re-charge the budget and record the panic in the trace, so a
/// *healed* response legitimately differs after this prefix — but the
/// numbers (`reliability`, `exact`, `bounds`, `method`, `confidence`,
/// `guaranteed`) must be bit-identical to fault-free.
fn answer_prefix(body: &str) -> &str {
    body.find(",\"spent\":").map_or(body, |i| &body[..i])
}

/// Is a non-identical `200` explicitly tagged as degraded? `partial`
/// comes from [`Confidence::Partial`]'s display; the rest are the
/// load-bearing trace substrings the serve path keys caching on.
///
/// [`Confidence::Partial`]: qrel_runtime::Confidence::Partial
fn is_tagged_degraded(body: &str) -> bool {
    ["partial", "deadline", "cancelled", "panicked", "budget"]
        .iter()
        .any(|m| body.contains(m))
}

/// Verdict for one round: `None` = invariant held, else `(kind, detail)`.
fn classify(
    status: u16,
    body: &str,
    expected: &str,
    elapsed_ms: u64,
    bound_ms: u64,
) -> Option<(String, String)> {
    if elapsed_ms > bound_ms {
        return Some((
            "chaos-hang".into(),
            format!("request took {elapsed_ms}ms, bound {bound_ms}ms (HTTP {status})"),
        ));
    }
    if status == 200 {
        if body == expected || answer_prefix(body) == answer_prefix(expected) {
            return None;
        }
        if is_tagged_degraded(body) {
            return None;
        }
        return Some((
            "chaos-bitflip".into(),
            format!("untagged 200 differs from fault-free: {body} vs {expected}"),
        ));
    }
    if body.contains("\"error\"") {
        return None;
    }
    Some((
        "chaos-untagged-error".into(),
        format!("HTTP {status} without a tagged error body: {body}"),
    ))
}

/// Per-round verdict marks for the determinism fingerprint.
fn verdict_mark(status: u16, body: &str, expected: &str) -> &'static str {
    if status == 200 {
        if body == expected {
            "="
        } else if answer_prefix(body) == answer_prefix(expected) {
            "~"
        } else {
            "d"
        }
    } else {
        "e"
    }
}

/// Run one `(case, plan)` pair: compute the fault-free reference, boot a
/// self-healing server, arm the plan, round-trip the case twice (miss +
/// cache round), and check every round against the fail-closed
/// invariant. Returns `(fingerprint, violation)`.
pub fn run_pair(
    case: &FuzzCase,
    plan: &FaultPlan,
    timeout_ms: u64,
) -> Result<(String, Option<(String, String)>), String> {
    let (Some(spec), Some(query)) = (&case.db, &case.query) else {
        return Err("case has no HTTP surface (db/query missing)".into());
    };

    // Fault-free reference — MUST run before `plan.arm()`.
    let expected = {
        let ud = spec.build().map_err(|e| e.to_string())?;
        let q = FoQuery::parse(query).map_err(|e| e.to_string())?;
        let solve = Solver::new()
            .with_method(Method::Exact)
            .with_accuracy(0.05, 0.05)
            .with_seed(case.seed)
            .with_threads(1)
            .solve(&ud, &q, &Budget::unlimited())
            .map_err(|e| format!("fault-free solve failed: {e}"))?;
        String::from_utf8(protocol::solve_response_body(&solve)).map_err(|e| e.to_string())?
    };

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        watchdog_period: Duration::from_millis(WATCHDOG_MS),
        ..ServerConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let _ = server.run();
    });

    let body = format!(
        "{{\"db\":{},\"query\":{},\"method\":\"exact\",\"seed\":{},\"timeout_ms\":{timeout_ms}}}",
        serde_json::to_string(spec).map_err(|e| e.to_string())?,
        serde_json::to_string(query).map_err(|e| e.to_string())?,
        case.seed
    );
    let bound_ms = latency_bound(plan, timeout_ms);

    let guard = plan.arm();
    let mut marks = String::new();
    let mut violation = None;
    for round in 0..2 {
        let started = Instant::now();
        match post_solve(addr, &body) {
            Ok((status, got, _)) => {
                let elapsed_ms = started.elapsed().as_millis() as u64;
                marks.push_str(verdict_mark(status, &got, &expected));
                if violation.is_none() {
                    violation = classify(status, &got, &expected, elapsed_ms, bound_ms)
                        .map(|(k, d)| (k, format!("round {round}: {d}")));
                }
            }
            Err(e) => {
                marks.push('x');
                if violation.is_none() {
                    violation = Some((
                        "chaos-transport".into(),
                        format!("round {round}: transport failure under faults: {e}"),
                    ));
                }
            }
        }
    }
    // Durability probe, still under the armed plan, after the HTTP
    // rounds (fixed hit order keeps the fingerprint replayable).
    if has_store_rule(plan) {
        marks.push('|');
        match store_probe(plan.seed) {
            Ok(probe_marks) => marks.push_str(&probe_marks),
            Err(detail) => {
                marks.push('X');
                if violation.is_none() {
                    violation = Some(("chaos-store".into(), detail));
                }
            }
        }
    }
    drop(guard);

    handle.shutdown();
    let _ = TcpStream::connect(addr);
    let _ = join.join();

    let rule_points: Vec<&str> = plan.rules.iter().map(|r| r.point.as_str()).collect();
    Ok((format!("[{}] {marks}", rule_points.join(",")), violation))
}

/// Does `(case, plan)` still reproduce violation class `kind`?
fn still_fails(case: &FuzzCase, plan: &FaultPlan, timeout_ms: u64, kind: &str) -> bool {
    matches!(run_pair(case, plan, timeout_ms), Ok((_, Some((k, _)))) if k == kind)
}

/// Shrink the *plan* of a failing pair: drop rules one at a time, then
/// clamp surviving rules' `delay_ms`/`max_fires`/`prob` toward minimal
/// values, keeping every step that still reproduces `kind`.
pub fn shrink_plan(case: &FuzzCase, plan: &FaultPlan, timeout_ms: u64, kind: &str) -> FaultPlan {
    let mut best = plan.clone();
    // Pass 1: drop whole rules.
    let mut i = 0;
    while i < best.rules.len() {
        if best.rules.len() == 1 {
            break;
        }
        let mut candidate = best.clone();
        candidate.rules.remove(i);
        if still_fails(case, &candidate, timeout_ms, kind) {
            best = candidate;
        } else {
            i += 1;
        }
    }
    // Pass 2: clamp magnitudes on the survivors.
    for i in 0..best.rules.len() {
        for mutate in [
            |r: &mut qrel_faults::FaultRule| r.prob = 1.0,
            |r: &mut qrel_faults::FaultRule| r.max_fires = 1,
            |r: &mut qrel_faults::FaultRule| r.delay_ms = r.delay_ms.min(25),
        ] {
            let mut candidate = best.clone();
            mutate(&mut candidate.rules[i]);
            if candidate != best && still_fails(case, &candidate, timeout_ms, kind) {
                best = candidate;
            }
        }
    }
    best
}

fn write_chaos_repro(dir: &Path, kind: &str, case: &FuzzCase, plan: &FaultPlan) -> Option<PathBuf> {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create corpus dir {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("chaos-{}-{}.json", kind, plan.seed));
    let text = format!(
        "{{\"check\":{:?},\"plan\":{},\"case\":{}}}\n",
        kind,
        plan.to_json(),
        serde_json::to_string(case).ok()?
    );
    match std::fs::write(&path, text) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write repro {}: {e}", path.display());
            None
        }
    }
}

/// The chaos sweep: for pair `i`, generate a query case and a fault plan
/// from `start_seed + i`, run the pair, and on a violation shrink plan
/// then instance before recording it.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let mut report = ChaosReport {
        pairs: 0,
        violations: Vec::new(),
        outcomes: Vec::new(),
    };
    // DNF-event families have no HTTP surface; cycle the query families.
    let families = ["qf", "sjf-cq", "efo", "universal"];
    for i in 0..cfg.pairs {
        let seed = cfg.start_seed + i;
        let case = gen::generate(seed, families[(seed % families.len() as u64) as usize]);
        let plan = sample_plan(seed);
        report.pairs += 1;
        match run_pair(&case, &plan, cfg.timeout_ms) {
            Ok((fingerprint, verdict)) => {
                report.outcomes.push(format!("{seed} {fingerprint}"));
                if let Some((kind, detail)) = verdict {
                    eprintln!("chaos violation [{kind}] seed {seed}: {detail}");
                    let small_plan = shrink_plan(&case, &plan, cfg.timeout_ms, &kind);
                    let small_case = shrink(&case, &|c: &FuzzCase| {
                        still_fails(c, &small_plan, cfg.timeout_ms, &kind)
                    });
                    let path = cfg
                        .corpus_dir
                        .as_deref()
                        .and_then(|d| write_chaos_repro(d, &kind, &small_case, &small_plan));
                    report.violations.push(ChaosViolation {
                        kind,
                        detail,
                        case: small_case,
                        plan: small_plan,
                        path,
                    });
                }
            }
            Err(e) => {
                // Setup failures (bad generator case, bind failure) are
                // violations too: chaos must never silently skip pairs.
                report.outcomes.push(format!("{seed} setup-error"));
                report.violations.push(ChaosViolation {
                    kind: "chaos-setup".into(),
                    detail: e,
                    case,
                    plan,
                    path: None,
                });
            }
        }
    }
    report
}

/// Render the one-line summary the CLI prints.
pub fn summarize(report: &ChaosReport) -> String {
    format!(
        "chaos: {} pairs, {} violations",
        report.pairs,
        report.violations.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sampling_is_deterministic_and_bounded() {
        for seed in 0..50 {
            let a = sample_plan(seed);
            let b = sample_plan(seed);
            assert_eq!(a, b, "plan for seed {seed} not deterministic");
            assert!(!a.rules.is_empty() && a.rules.len() <= 3);
            for r in &a.rules {
                if r.delay_ms > 0 {
                    assert!(r.max_fires >= 1, "unbounded stall rule in {a:?}");
                }
            }
        }
    }

    #[test]
    fn latency_bound_accounts_for_plan_stalls() {
        let quiet = FaultPlan::new(1);
        assert_eq!(latency_bound(&quiet, 1_000), 1_000 + WATCHDOG_MS + SLACK_MS);
        let stall = FaultPlan::new(1).with_rule(&points::rung_stall("exact"), 1.0, 400, 0);
        assert_eq!(
            latency_bound(&stall, 1_000),
            1_000 + WATCHDOG_MS + SLACK_MS + 400
        );
        // A capped rule never exceeds its own max_fires...
        let capped = FaultPlan::new(1).with_rule(&points::rung_stall("exact"), 1.0, 400, 1);
        let with_panic = capped
            .clone()
            .with_rule(&points::rung_panic("exact"), 1.0, 0, 0);
        assert_eq!(
            latency_bound(&with_panic, 1_000),
            1_000 + WATCHDOG_MS + SLACK_MS + 400
        );
        // ...but an uncapped stall buys one fire per retry attempt once a
        // panic rule makes the rung transient.
        let both = stall.with_rule(&points::rung_panic("exact"), 1.0, 0, 0);
        assert_eq!(
            latency_bound(&both, 1_000),
            1_000 + WATCHDOG_MS + SLACK_MS + 400 * (1 + MAX_RUNG_RETRIES as u64)
        );
    }

    #[test]
    fn classify_accepts_identical_healed_and_tagged_only() {
        let full = r#"{"reliability":0.5,"exact":"1/2","bounds":[0.5,0.5],"method":"exact","confidence":"full","guaranteed":true,"spent":{"x":1},"trace":[]}"#;
        let healed = r#"{"reliability":0.5,"exact":"1/2","bounds":[0.5,0.5],"method":"exact","confidence":"full","guaranteed":true,"spent":{"x":2},"trace":["rung exact panicked (attempt 1)"]}"#;
        let wrong = r#"{"reliability":0.7,"exact":"7/10","bounds":[0.7,0.7],"method":"exact","confidence":"full","guaranteed":true,"spent":{"x":1},"trace":[]}"#;
        assert!(classify(200, full, full, 10, 100).is_none());
        assert!(classify(200, healed, full, 10, 100).is_none());
        assert!(matches!(
            classify(200, wrong, full, 10, 100),
            Some((k, _)) if k == "chaos-bitflip"
        ));
        assert!(classify(
            422,
            r#"{"error":"budget exhausted: deadline"}"#,
            full,
            10,
            100
        )
        .is_none());
        assert!(matches!(
            classify(500, "oops", full, 10, 100),
            Some((k, _)) if k == "chaos-untagged-error"
        ));
        assert!(matches!(
            classify(200, full, full, 500, 100),
            Some((k, _)) if k == "chaos-hang"
        ));
    }

    #[test]
    fn chaos_sweep_holds_and_replays_bit_identically() {
        let cfg = ChaosConfig {
            pairs: 6,
            start_seed: 9_000,
            timeout_ms: 2_000,
            corpus_dir: None,
        };
        let first = run_chaos(&cfg);
        assert_eq!(first.pairs, 6);
        assert!(
            first.violations.is_empty(),
            "fail-closed invariant broken: {:#?}",
            first.violations
        );
        let second = run_chaos(&cfg);
        assert_eq!(
            first.outcomes, second.outcomes,
            "chaos replay is not deterministic"
        );
    }

    #[test]
    fn worker_panic_storm_stays_fail_closed() {
        // Every request panics its worker: both rounds must come back as
        // tagged 500s, never as silent garbage, and the sweep must say so.
        let case = gen::generate(42, "qf");
        let plan = FaultPlan::new(7).with_rule(points::SERVE_WORKER_PANIC, 1.0, 0, 0);
        let (fingerprint, verdict) = run_pair(&case, &plan, 2_000).unwrap();
        assert!(verdict.is_none(), "{verdict:?}");
        assert!(fingerprint.ends_with("ee"), "{fingerprint}");
    }

    #[test]
    fn cache_poison_is_detected_not_served() {
        // Poison the cached reply on the hit round: the server must
        // detect the checksum mismatch, recompute, and still answer with
        // fault-free bytes.
        let case = gen::generate(43, "qf");
        let plan = FaultPlan::new(8).with_rule(points::CACHE_REPLY_POISON, 1.0, 0, 0);
        let (fingerprint, verdict) = run_pair(&case, &plan, 2_000).unwrap();
        assert!(verdict.is_none(), "{verdict:?}");
        assert!(
            fingerprint.ends_with("=="),
            "poisoned cache changed bytes: {fingerprint}"
        );
    }

    #[test]
    fn store_probe_recovers_under_injected_faults() {
        // Each durability point fires exactly once at full probability:
        // the first commit aborts fail-closed (`f`), the retries land
        // (`cc`), and the final cold reopen verifies clean.
        for (seed, point) in [
            (1_001, points::STORE_SEGMENT_TORN_WRITE),
            (1_002, points::STORE_COMMIT_CRASH),
        ] {
            let plan = FaultPlan::new(seed).with_rule(point, 1.0, 0, 1);
            let guard = plan.arm();
            let marks = store_probe(seed).unwrap();
            drop(guard);
            assert_eq!(marks, "fcc", "{point}");
        }
    }

    #[test]
    fn store_rules_trigger_the_probe_in_run_pair() {
        let case = gen::generate(45, "qf");
        let plan = FaultPlan::new(11).with_rule(points::STORE_SEGMENT_TORN_WRITE, 1.0, 0, 1);
        let (fingerprint, verdict) = run_pair(&case, &plan, 2_000).unwrap();
        assert!(verdict.is_none(), "{verdict:?}");
        // Two HTTP rounds untouched by store faults, then the probe:
        // one aborted commit, two clean ones.
        assert!(fingerprint.ends_with("==|fcc"), "{fingerprint}");
    }

    #[test]
    fn plan_shrinking_drops_irrelevant_rules() {
        // A synthetic "violation": treat any pair whose plan contains the
        // worker-panic rule as failing, and check the shrinker strips the
        // two bystander rules. Exercises the shrink loop without needing
        // a real handler bug in the tree.
        let case = gen::generate(44, "qf");
        let plan = FaultPlan::new(9)
            .with_rule(points::SERVE_WORKER_PANIC, 1.0, 0, 0)
            .with_rule(points::PAR_SHARD_STALL, 0.5, 25, 1)
            .with_rule(points::BUDGET_SPURIOUS_TRIP, 0.25, 0, 1);
        // Shrink against a predicate that only needs the panic rule. We
        // can't use `still_fails` (no real violation), so inline the
        // same passes via a local copy of the predicate contract.
        let mut best = plan.clone();
        let fails = |p: &FaultPlan| {
            p.rules
                .iter()
                .any(|r| r.point == points::SERVE_WORKER_PANIC)
        };
        let mut i = 0;
        while i < best.rules.len() {
            if best.rules.len() == 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.rules.remove(i);
            if fails(&candidate) {
                best = candidate;
            } else {
                i += 1;
            }
        }
        assert_eq!(best.rules.len(), 1, "{best:?}");
        assert_eq!(best.rules[0].point, points::SERVE_WORKER_PANIC);
        let _ = case; // the instance is irrelevant to this pass
    }
}
