//! Greedy delta-debugging shrinker.
//!
//! Given a failing case and a predicate that re-runs the failing check,
//! repeatedly try structure-removing edits — drop an error entry, drop a
//! tuple, drop a DNF term or literal, simplify a probability to 1/2 —
//! keeping any edit under which the case still fails, until a full pass
//! makes no progress. Greedy one-at-a-time removal (ddmin with Δ = 1) is
//! enough here because cases start small (≤ 8 uncertain facts) and every
//! probe is a cheap exact evaluation.

use crate::case::FuzzCase;

/// Upper bound on predicate evaluations per shrink, so a pathological
/// predicate cannot stall the fuzz loop.
const MAX_PROBES: usize = 2_000;

/// Shrink `case` while `fails` keeps returning `true`. The returned
/// case still fails and is locally minimal under the edit set.
pub fn shrink(case: &FuzzCase, fails: &dyn Fn(&FuzzCase) -> bool) -> FuzzCase {
    let mut best = case.clone();
    let mut probes = 0usize;
    let try_candidate = |best: &mut FuzzCase, cand: FuzzCase, probes: &mut usize| -> bool {
        if *probes >= MAX_PROBES {
            return false;
        }
        *probes += 1;
        if fails(&cand) {
            *best = cand;
            true
        } else {
            false
        }
    };

    loop {
        let mut progress = false;

        // Pass 1: drop error entries (query cases) — the primary size
        // metric, each drop halves the world count.
        loop {
            let count = best.db.as_ref().map_or(0, |s| s.errors.len());
            let mut dropped = false;
            for i in 0..count {
                let mut cand = best.clone();
                cand.db.as_mut().unwrap().errors.remove(i);
                if try_candidate(&mut best, cand, &mut probes) {
                    dropped = true;
                    progress = true;
                    break;
                }
            }
            if !dropped {
                break;
            }
        }

        // Pass 2: drop observed tuples.
        if let Some(spec) = best.db.clone() {
            for r in 0..spec.database.vocabulary().len() {
                for tuple in spec.database.relation(r).iter() {
                    let mut cand = best.clone();
                    cand.db
                        .as_mut()
                        .unwrap()
                        .database
                        .relation_mut(r)
                        .remove(tuple);
                    if try_candidate(&mut best, cand, &mut probes) {
                        progress = true;
                    }
                }
            }
        }

        // Pass 3: simplify error probabilities to 1/2.
        {
            let count = best.db.as_ref().map_or(0, |s| s.errors.len());
            for i in 0..count {
                if best.db.as_ref().unwrap().errors[i].mu == "1/2" {
                    continue;
                }
                let mut cand = best.clone();
                cand.db.as_mut().unwrap().errors[i].mu = "1/2".to_string();
                if try_candidate(&mut best, cand, &mut probes) {
                    progress = true;
                }
            }
        }

        // Pass 4: drop DNF terms.
        loop {
            let count = best.dnf.as_ref().map_or(0, |d| d.terms.len());
            let mut dropped = false;
            for i in 0..count {
                if count == 1 {
                    break;
                }
                let mut cand = best.clone();
                cand.dnf.as_mut().unwrap().terms.remove(i);
                if try_candidate(&mut best, cand, &mut probes) {
                    dropped = true;
                    progress = true;
                    break;
                }
            }
            if !dropped {
                break;
            }
        }

        // Pass 5: drop literals within DNF terms.
        if let Some(spec) = best.dnf.clone() {
            for (t, term) in spec.terms.iter().enumerate() {
                if term.len() <= 1 {
                    continue;
                }
                for l in 0..term.len() {
                    let mut cand = best.clone();
                    cand.dnf.as_mut().unwrap().terms[t].remove(l);
                    if try_candidate(&mut best, cand, &mut probes) {
                        progress = true;
                        break;
                    }
                }
            }
        }

        // Pass 6: simplify DNF probabilities to 1/2 and trim unused
        // trailing variables.
        if let Some(spec) = best.dnf.clone() {
            for i in 0..spec.probs.len() {
                if spec.probs[i] == "1/2" {
                    continue;
                }
                let mut cand = best.clone();
                cand.dnf.as_mut().unwrap().probs[i] = "1/2".to_string();
                if try_candidate(&mut best, cand, &mut probes) {
                    progress = true;
                }
            }
            let used_max = spec
                .terms
                .iter()
                .flatten()
                .map(|l| l.unsigned_abs() as usize)
                .max()
                .unwrap_or(0);
            if used_max < spec.num_vars {
                let mut cand = best.clone();
                let d = cand.dnf.as_mut().unwrap();
                d.num_vars = used_max.max(1);
                d.probs.truncate(d.num_vars);
                if try_candidate(&mut best, cand, &mut probes) {
                    progress = true;
                }
            }
        }

        if !progress || probes >= MAX_PROBES {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn shrinks_query_case_to_single_error_entry() {
        // Predicate: "fails whenever the first-listed error entry of the
        // original case survives" — mimics a bug triggered by one fact.
        let case = gen::generate(11, "qf");
        let spec = case.db.as_ref().unwrap();
        assert!(!spec.errors.is_empty());
        let keep = (
            spec.errors[0].relation.clone(),
            spec.errors[0].tuple.clone(),
        );
        let fails = move |c: &FuzzCase| {
            c.db.as_ref().is_some_and(|s| {
                s.errors
                    .iter()
                    .any(|e| e.relation == keep.0 && e.tuple == keep.1)
            })
        };
        let small = shrink(&case, &fails);
        assert!(fails(&small));
        assert_eq!(small.db.as_ref().unwrap().errors.len(), 1);
        assert_eq!(small.db.as_ref().unwrap().errors[0].mu, "1/2");
    }

    #[test]
    fn shrinks_dnf_case_to_single_term() {
        let case = gen::generate(3, "dnf");
        let fails = |c: &FuzzCase| c.dnf.as_ref().is_some_and(|d| !d.terms.is_empty());
        let small = shrink(&case, &fails);
        let d = small.dnf.as_ref().unwrap();
        assert_eq!(d.terms.len(), 1);
        assert_eq!(d.terms[0].len(), 1);
        assert_eq!(d.num_vars, d.terms[0][0].unsigned_abs() as usize);
    }

    #[test]
    fn non_failing_case_is_returned_unchanged() {
        let case = gen::generate(5, "dnf");
        let small = shrink(&case, &|_| false);
        assert_eq!(small, case);
    }
}
