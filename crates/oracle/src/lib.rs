//! `qrel-oracle` — seeded differential & metamorphic fuzzing across
//! every reliability engine in the workspace.
//!
//! The repo computes the same quantity — `Pr[ψ]` over the world
//! distribution `Ω(𝔇)`, and the reliability `R_ψ(𝔇)` derived from it —
//! through many independent code paths: the Prop 3.1 quantifier-free
//! fast path, the Thm 4.2 Gray-code world enumerator (serial, parallel,
//! budgeted-sharded, and behind the budgeted [`Solver`]), the Thm 5.4
//! grounding + Shannon pipeline and its Karp–Luby FPTRAS, the Thm 5.12
//! padding estimator, naive Monte Carlo, and for propositional DNF
//! events the Shannon / inclusion–exclusion / ROBDD / #SAT quartet. This
//! crate turns that redundancy into a test oracle:
//!
//! * [`gen`] — deterministic seeded generators for structured instances,
//!   clustered near the paper's hard/easy boundary;
//! * [`diff`] — the differential runner: exact engines must agree
//!   bit-for-bit, samplers are Bernoulli trials against their (ε, δ)
//!   envelopes, aggregated run-wide;
//! * [`meta`] — metamorphic laws from the paper, checked exactly
//!   (complement, factorization, monotonicity, the Thm 5.12 padding
//!   identity built end-to-end, the §3-Remark model restriction);
//! * [`shrink`](mod@shrink) — greedy delta-debugging to a locally
//!   minimal repro;
//! * [`runner`] — the fuzz loop gluing the above, serializing shrunk
//!   repros as JSON for `tests/corpus/`;
//! * [`serve_path`] — round-trips cases through a live `POST /v1/solve`
//!   and demands HTTP ≡ library bit-equality;
//! * [`chaos`] — the same round trip with a seeded [`FaultPlan`] armed,
//!   demanding the fail-closed invariant: answers are bit-identical to
//!   fault-free or explicitly tagged, errors are explicit, and nothing
//!   outlives its deadline past the watchdog + injected-stall budget.
//!
//! [`FaultPlan`]: qrel_faults::FaultPlan
//!
//! [`Solver`]: qrel_runtime::Solver

pub mod case;
pub mod chaos;
pub mod diff;
pub mod gen;
pub mod meta;
pub mod runner;
pub mod serve_path;
pub mod shrink;

pub use case::{DnfEventSpec, FuzzCase};
pub use chaos::{run_chaos, sample_plan, ChaosConfig, ChaosReport, ChaosViolation};
pub use diff::{check_case, CheckOutcome, Failure, SamplerTrial};
pub use gen::{generate, FAMILIES};
pub use meta::check_metamorphic;
pub use runner::{run_fuzz, EngineStats, FuzzConfig, FuzzReport, Repro};
pub use serve_path::{serve_round_trip, ServeReport};
pub use shrink::shrink;
