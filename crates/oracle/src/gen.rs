//! Seeded instance generators.
//!
//! Every generator is a pure function of `(seed, family)`: the same pair
//! always yields the same [`FuzzCase`], so a failing seed printed by
//! `qrel fuzz` reproduces forever. Families deliberately cluster around
//! the paper's hard/easy boundary — quantifier-free queries (Prop 3.1,
//! PTIME), self-join-free conjunctive queries, conjunctive queries *with*
//! self-joins (paths and stars over a binary relation, the shapes that
//! straddle the dichotomy), existential FO with negated atoms (Thm 5.4
//! FPTRAS territory), mixed-quantifier FO (only the Thm 4.2 enumerator
//! and the Thm 5.12 padding estimator apply), and propositional DNF
//! events including near-zero-probability variants that stress relative
//! (ε, δ) envelopes.

use crate::case::{DnfEventSpec, FuzzCase};
use qrel_arith::BigRational;
use qrel_db::{DatabaseBuilder, Fact};
use qrel_prob::{UnreliableDatabase, UnreliableDatabaseSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every generator family, in round-robin order.
pub const FAMILIES: &[&str] = &[
    "qf",
    "sjf-cq",
    "selfjoin-path",
    "selfjoin-star",
    "efo",
    "universal",
    "dnf",
    "dnf-nearzero",
];

/// Error-probability pool. Mixes dyadic rationals (exact in `f64`),
/// non-dyadic ones (1/3, 1/10 — catch float-vs-rational confusion),
/// near-certain and near-zero entries, and the degenerate μ = 1 flip.
const MU_POOL: &[(i64, u64)] = &[
    (1, 2),
    (1, 4),
    (3, 4),
    (1, 3),
    (1, 10),
    (1, 64),
    (9, 10),
    (1, 1024),
    (1, 1),
];

/// Maximum uncertain facts per instance: 2⁸ = 256 worlds keeps the exact
/// enumerator (the oracle every other engine is judged against) cheap.
const MAX_UNCERTAIN: usize = 8;

fn mu(rng: &mut StdRng) -> BigRational {
    let (n, d) = MU_POOL[rng.gen_range(0..MU_POOL.len())];
    BigRational::from_ratio(n, d)
}

/// Generate the case for `(seed, family)`.
///
/// # Panics
/// Panics on an unknown family name (the CLI validates first).
pub fn generate(seed: u64, family: &str) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        "dnf" => FuzzCase::dnf_case(seed, family, gen_dnf(&mut rng, false)),
        "dnf-nearzero" => FuzzCase::dnf_case(seed, family, gen_dnf(&mut rng, true)),
        _ => {
            let (spec, n) = gen_database(&mut rng);
            let query = match family {
                "qf" => gen_qf(&mut rng, n),
                "sjf-cq" => gen_sjf_cq(&mut rng, n),
                "selfjoin-path" => gen_path(&mut rng, n),
                "selfjoin-star" => gen_star(&mut rng),
                "efo" => gen_efo(&mut rng, n),
                "universal" => gen_universal(&mut rng),
                other => panic!("unknown fuzz family {other:?}"),
            };
            FuzzCase::query_case(seed, family, spec, query)
        }
    }
}

/// Random unreliable database over vocabulary `{S/1, T/1, E/2}` with a
/// universe of 2–4 elements and 1–8 uncertain facts.
fn gen_database(rng: &mut StdRng) -> (UnreliableDatabaseSpec, usize) {
    let n = rng.gen_range(2usize..=4);
    let mut builder = DatabaseBuilder::new()
        .universe_size(n)
        .relation("S", 1)
        .relation("T", 1)
        .relation("E", 2);
    for name in ["S", "T"] {
        let tuples: Vec<Vec<u32>> = (0..n as u32)
            .filter(|_| rng.gen_bool(0.5))
            .map(|e| vec![e])
            .collect();
        builder = builder.tuples(name, tuples);
    }
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            if rng.gen_bool(0.4) {
                edges.push(vec![a, b]);
            }
        }
    }
    builder = builder.tuples("E", edges);
    let db = builder.build();

    let mut ud = UnreliableDatabase::reliable(db);
    let total = ud.indexer().total();
    let k = rng.gen_range(1usize..=MAX_UNCERTAIN.min(total));
    // Sample k distinct fact indices by rejection (total ≤ 24).
    let mut picked = Vec::new();
    while picked.len() < k {
        let i = rng.gen_range(0..total);
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    for i in picked {
        let fact: Fact = ud.indexer().fact_at(i);
        ud.set_error(&fact, mu(rng))
            .expect("pool probabilities are valid");
    }
    (UnreliableDatabaseSpec::from_model(&ud), n)
}

fn constant(rng: &mut StdRng, n: usize) -> String {
    format!("'e{}'", rng.gen_range(0..n))
}

/// Ground atom over the fixed vocabulary.
fn ground_atom(rng: &mut StdRng, n: usize) -> String {
    match rng.gen_range(0..3) {
        0 => format!("S({})", constant(rng, n)),
        1 => format!("T({})", constant(rng, n)),
        _ => format!("E({}, {})", constant(rng, n), constant(rng, n)),
    }
}

/// Quantifier-free sentence: a small boolean combination of ground atoms.
fn gen_qf(rng: &mut StdRng, n: usize) -> String {
    fn go(rng: &mut StdRng, n: usize, depth: usize) -> String {
        if depth == 0 || rng.gen_bool(0.4) {
            let atom = ground_atom(rng, n);
            if rng.gen_bool(0.3) {
                format!("!{atom}")
            } else {
                atom
            }
        } else {
            let op = if rng.gen_bool(0.5) { "&" } else { "|" };
            let a = go(rng, n, depth - 1);
            let b = go(rng, n, depth - 1);
            format!("({a} {op} {b})")
        }
    }
    go(rng, n, 2)
}

/// Self-join-free conjunctive sentence: each relation appears at most
/// once, optionally with a constant plugged into one position.
fn gen_sjf_cq(rng: &mut StdRng, n: usize) -> String {
    match rng.gen_range(0..4) {
        0 => "exists x y. (S(x) & E(x, y) & T(y))".to_string(),
        1 => "exists x. (S(x) & T(x))".to_string(),
        2 => {
            let c = constant(rng, n);
            format!("exists y. (E({c}, y) & T(y))")
        }
        _ => "exists x y. (S(x) & E(x, y))".to_string(),
    }
}

/// Path-shaped conjunctive sentence with self-joins on `E` — the
/// boundary-straddling shape from the dichotomy literature.
fn gen_path(rng: &mut StdRng, n: usize) -> String {
    match rng.gen_range(0..4) {
        0 => "exists x y z. (E(x, y) & E(y, z))".to_string(),
        1 => "exists x y z u. (E(x, y) & E(y, z) & E(z, u))".to_string(),
        2 => "exists x y z. (S(x) & E(x, y) & E(y, z))".to_string(),
        _ => {
            let c = constant(rng, n);
            format!("exists y z. (E({c}, y) & E(y, z))")
        }
    }
}

/// Star-shaped conjunctive sentence with self-joins on `E`.
fn gen_star(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => "exists x y z. (E(x, y) & E(x, z))".to_string(),
        1 => "exists x y z. (S(x) & E(x, y) & E(x, z) & T(y))".to_string(),
        _ => "exists x y z u. (E(x, y) & E(x, z) & E(x, u))".to_string(),
    }
}

/// Existential FO with negated atoms and disjunction.
fn gen_efo(rng: &mut StdRng, n: usize) -> String {
    match rng.gen_range(0..4) {
        0 => "exists x. (S(x) & !T(x))".to_string(),
        1 => "exists x y. (E(x, y) & !E(y, x))".to_string(),
        2 => "exists x. ((S(x) | T(x)) & !E(x, x))".to_string(),
        _ => {
            let c = constant(rng, n);
            format!("exists x. (E(x, {c}) & !S(x))")
        }
    }
}

/// Universal / mixed-quantifier sentences: beyond the existential
/// fragment, so only the Thm 4.2 enumerator and the Thm 5.12 padding
/// estimator apply.
fn gen_universal(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4) {
        0 => "forall x. (S(x) | T(x))".to_string(),
        1 => "forall x. (!S(x) | exists y. E(x, y))".to_string(),
        2 => "forall x y. (!E(x, y) | E(y, x))".to_string(),
        _ => "forall x. exists y. (E(x, y) | T(y))".to_string(),
    }
}

/// Random DNF event: 3–7 variables, 2–5 terms, 1–3 literals per term
/// (no variable repeated within a term, so no vacuous contradictions).
/// `near_zero` draws probabilities from the bottom of the pool and makes
/// terms longer, pushing `Pr[ψ]` toward 0 where relative-error envelopes
/// are hardest.
fn gen_dnf(rng: &mut StdRng, near_zero: bool) -> DnfEventSpec {
    let num_vars = rng.gen_range(3usize..=7);
    let num_terms = rng.gen_range(2usize..=5);
    let mut terms = Vec::with_capacity(num_terms);
    for _ in 0..num_terms {
        let width_max = if near_zero { num_vars } else { 3.min(num_vars) };
        let width = rng.gen_range(1usize..=width_max);
        let mut vars: Vec<i64> = Vec::with_capacity(width);
        while vars.len() < width {
            let v = rng.gen_range(1i64..=num_vars as i64);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        terms.push(
            vars.into_iter()
                .map(|v| {
                    if rng.gen_bool(if near_zero { 0.9 } else { 0.7 }) {
                        v
                    } else {
                        -v
                    }
                })
                .collect(),
        );
    }
    let probs = (0..num_vars)
        .map(|_| {
            let (n, d) = if near_zero {
                let low: [(i64, u64); 3] = [(1, 1024), (1, 64), (1, 10)];
                low[rng.gen_range(0..3usize)]
            } else {
                MU_POOL[rng.gen_range(0..MU_POOL.len())]
            };
            BigRational::from_ratio(n, d).to_string()
        })
        .collect();
    DnfEventSpec {
        num_vars,
        terms,
        probs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for family in FAMILIES {
            let a = generate(42, family);
            let b = generate(42, family);
            assert_eq!(a, b, "family {family} not deterministic");
            let c = generate(43, family);
            assert!(a == c || a.seed != c.seed, "seeds recorded");
        }
    }

    #[test]
    fn generated_cases_decode() {
        for family in FAMILIES {
            for seed in 0..30 {
                let case = generate(seed, family);
                let ud = case
                    .build_db()
                    .unwrap_or_else(|e| panic!("{family}/{seed}: {e}"));
                if let Some(ud) = ud {
                    let worlds = 1u64 << ud.uncertain_facts().len();
                    assert!(worlds <= 256, "{family}/{seed}: too many worlds");
                    let q = case.query.as_ref().unwrap();
                    qrel_eval::FoQuery::parse(q)
                        .unwrap_or_else(|e| panic!("{family}/{seed}: bad query {q:?}: {e}"));
                } else {
                    let spec = case.dnf.as_ref().unwrap();
                    spec.build()
                        .unwrap_or_else(|e| panic!("{family}/{seed}: {e}"));
                }
            }
        }
    }

    #[test]
    fn json_round_trip_across_families() {
        for family in FAMILIES {
            let case = generate(7, family);
            let back = FuzzCase::from_json(&case.to_json()).unwrap();
            assert_eq!(back, case);
        }
    }
}
