//! Minimal HTTP/1.1 on raw [`TcpStream`]s: exactly what the service
//! needs, nothing more.
//!
//! One request per connection (`Connection: close`), a read deadline so
//! a stalled client cannot wedge a worker, and a declared-body-size
//! guard checked *before* any body byte is read so an oversized upload
//! is refused for the price of its headers.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line + headers. 16 KiB is far beyond any
/// legitimate client of this API.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request: method, path (query string stripped),
/// headers (names lowercased), body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// `(name, value)` pairs in arrival order, names lowercased and
    /// values trimmed. Duplicates are kept; [`Request::header`] returns
    /// the first.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps onto one response
/// status in the worker loop.
#[derive(Debug)]
pub enum HttpError {
    /// Unparseable request line/headers, or a missing/garbled
    /// `Content-Length` → `400`.
    BadRequest(String),
    /// Declared or actual body beyond the configured cap → `413`.
    PayloadTooLarge { declared: usize, limit: usize },
    /// The client stalled past the read deadline → `408`.
    Timeout,
    /// The socket died; no response is possible.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::PayloadTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::Timeout => f.write_str("timed out reading the request"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// Read and parse one request from `stream`, enforcing the read
/// deadline and the body-size cap.
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    read_timeout: Duration,
) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(HttpError::Io)?;

    // Accumulate until the blank line ending the head. Reads are small
    // and bounded; the deadline covers a byte-at-a-time trickler.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before the request head completed".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::BadRequest("not an HTTP/1.x request".into())),
    }
    // Strip any query string; the API carries everything in the body.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest("unparseable Content-Length".into()))?;
        }
        headers.push((name, value));
    }
    // The guard: reject a too-large declaration before reading a single
    // body byte.
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response about to be written. Extra headers ride in
/// `headers`; `Content-Length` and `Connection: close` are added by
/// [`write_response`].
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    pub headers: Vec<(String, String)>,
}

impl Response {
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            headers: Vec::new(),
        }
    }

    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }
}

pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Serialize and send `resp`; errors are swallowed (the client may
/// already be gone, and there is nobody left to tell).
pub fn write_response(stream: &mut TcpStream, resp: &Response) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        status_reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(&resp.body);
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Run `read_request` against bytes written from a paired socket.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
            // Keep the socket open briefly so a short read sees EOF
            // only after all bytes arrived.
            c.shutdown(std::net::Shutdown::Write).unwrap();
            let mut sink = Vec::new();
            let _ = c.read_to_end(&mut sink);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let out = read_request(&mut conn, max_body, Duration::from_millis(500));
        drop(conn);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            b"POST /v1/solve?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn headers_are_case_insensitive_and_trimmed() {
        let req = parse(
            b"POST /v1/jobs HTTP/1.1\r\nX-Qrel-Tenant:  acme \r\nContent-Length: 0\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.header("x-qrel-tenant"), Some("acme"));
        assert_eq!(req.header("X-Qrel-Tenant"), Some("acme"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn declared_oversize_is_rejected_without_reading_the_body() {
        let err = parse(b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 128).unwrap_err();
        assert!(matches!(
            err,
            HttpError::PayloadTooLarge {
                declared: 999999,
                limit: 128
            }
        ));
    }

    #[test]
    fn garbage_is_bad_request() {
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n", 128),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n", 128),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn stalled_client_times_out() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            // Send half a head, then stall past the deadline.
            c.write_all(b"GET /healthz HT").unwrap();
            std::thread::sleep(Duration::from_millis(300));
            drop(c);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let err = read_request(&mut conn, 128, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, HttpError::Timeout), "{err}");
        client.join().unwrap();
    }
}
