//! The `/v1/solve` wire protocol: request parsing/validation and
//! deterministic response serialization.
//!
//! Request body (JSON object):
//!
//! ```json
//! {
//!   "dataset": "uncertain16",        // preloaded name … or …
//!   "db": { …UnreliableDatabaseSpec… },
//!   "query": "exists x. S(x)",
//!   "free": ["x", "y"],              // optional, default: sorted free vars
//!   "method": "auto",                // auto|plan|qf|exact|fptras|padding|mc
//!   "eps": 0.05, "delta": 0.05,      // sampling accuracy
//!   "seed": 0,                       // RNG seed (part of the cache key)
//!   "timeout_ms": 1000               // per-request Budget deadline
//! }
//! ```
//!
//! The response body is a *deterministic* function of the request when
//! no wall-clock trip occurred: it carries no timestamps or elapsed
//! times (those ride in `X-Qrel-Elapsed-Us` / `/metrics`), so a cached
//! body is bit-identical to what a fresh solve would serialize.

use qrel_prob::UnreliableDatabaseSpec;
use qrel_runtime::{Method, SolveReport};
use qrel_sched::Priority;
use serde::Value;
use serde_json::ParseLimits;

/// Which database a request targets.
#[derive(Debug)]
pub enum DbRef {
    /// A dataset preloaded at server start, by name.
    Named(String),
    /// An inline spec shipped in the request body.
    Inline(Box<UnreliableDatabaseSpec>),
}

/// A validated solve request — the one envelope shared by
/// `POST /v1/solve` and `POST /v1/jobs`.
#[derive(Debug)]
pub struct SolveRequest {
    pub db: DbRef,
    pub query: String,
    pub free: Option<Vec<String>>,
    pub method: Method,
    pub eps: f64,
    pub delta: f64,
    pub seed: u64,
    pub timeout_ms: Option<u64>,
    /// Tenant the job is accounted against. Body field wins over the
    /// `X-Qrel-Tenant` header; both absent means `"default"`.
    pub tenant: Option<String>,
    /// Scheduler band (`high`/`normal`/`low`), default `normal`.
    pub priority: Priority,
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(x) => Some(*x),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

/// Parse and validate a `/v1/solve` body. The error string is shipped
/// back verbatim in a `400` response.
pub fn parse_solve_request(body: &[u8], limits: ParseLimits) -> Result<SolveRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value: Value =
        serde_json::from_str_with_limits(text, limits).map_err(|e| format!("bad JSON: {e}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| format!("body must be a JSON object, got {}", value.kind()))?;

    for (key, _) in obj {
        if !matches!(
            key.as_str(),
            "dataset"
                | "db"
                | "query"
                | "free"
                | "method"
                | "eps"
                | "delta"
                | "seed"
                | "timeout_ms"
                | "tenant"
                | "priority"
        ) {
            return Err(format!("unknown field {key:?}"));
        }
    }

    let db = match (value.get("dataset"), value.get("db")) {
        (Some(_), Some(_)) => {
            return Err("give either \"dataset\" or \"db\", not both".into());
        }
        (Some(name), None) => {
            let name = name
                .as_str()
                .ok_or_else(|| "\"dataset\" must be a string".to_string())?;
            DbRef::Named(name.to_string())
        }
        (None, Some(spec)) => {
            let spec: UnreliableDatabaseSpec = serde_json::from_value(spec.clone())
                .map_err(|e| format!("bad \"db\" spec: {e}"))?;
            DbRef::Inline(Box::new(spec))
        }
        (None, None) => return Err("missing \"dataset\" or \"db\"".into()),
    };

    let query = value
        .get("query")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "missing string field \"query\"".to_string())?
        .to_string();

    let free = match value.get("free") {
        None => None,
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| "\"free\" must be an array of strings".to_string())?;
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                names.push(
                    item.as_str()
                        .ok_or_else(|| "\"free\" must be an array of strings".to_string())?
                        .to_string(),
                );
            }
            Some(names)
        }
    };

    let method_name = value
        .get("method")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "\"method\" must be a string".to_string())
        })
        .transpose()?
        .unwrap_or_else(|| "auto".to_string());
    let method = Method::parse(&method_name).ok_or_else(|| {
        format!("unknown method {method_name:?} (auto|plan|qf|exact|fptras|padding|mc)")
    })?;

    let eps = match value.get("eps") {
        None => 0.05,
        Some(v) => as_f64(v).ok_or_else(|| "\"eps\" must be a number".to_string())?,
    };
    let delta = match value.get("delta") {
        None => 0.05,
        Some(v) => as_f64(v).ok_or_else(|| "\"delta\" must be a number".to_string())?,
    };
    if !(eps > 0.0 && eps.is_finite()) {
        return Err("\"eps\" must be a positive finite number".into());
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err("\"delta\" must be in (0, 1)".into());
    }

    let seed = match value.get("seed") {
        None => 0,
        Some(v) => {
            as_u64(v).ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?
        }
    };
    let timeout_ms = match value.get("timeout_ms") {
        None => None,
        Some(v) => Some(
            as_u64(v).ok_or_else(|| "\"timeout_ms\" must be a non-negative integer".to_string())?,
        ),
    };

    let tenant = match value.get("tenant") {
        None => None,
        Some(v) => {
            let t = v
                .as_str()
                .ok_or_else(|| "\"tenant\" must be a string".to_string())?;
            if t.is_empty() || t.len() > 64 {
                return Err("\"tenant\" must be 1..=64 characters".into());
            }
            Some(t.to_string())
        }
    };
    let priority = match value.get("priority") {
        None => Priority::Normal,
        Some(v) => {
            let p = v
                .as_str()
                .ok_or_else(|| "\"priority\" must be a string".to_string())?;
            Priority::parse(p).ok_or_else(|| format!("unknown priority {p:?} (high|normal|low)"))?
        }
    };

    Ok(SolveRequest {
        db,
        query,
        free,
        method,
        eps,
        delta,
        seed,
        timeout_ms,
        tenant,
        priority,
    })
}

/// True when `report` is a deterministic function of (database, query,
/// method, ε, δ, seed) — i.e. no rung tripped on wall-clock time or
/// external cancellation. Counter trips (worlds/samples/terms caps)
/// happen at exactly the same point on every run and are fine; only
/// time and cancellation make the degradation path machine-dependent.
/// Caught rung panics are excluded too: under fault injection a healed
/// answer is bit-identical but the *trace* records the panic, and a
/// cached panic trace would replay a fault to fault-free clients.
/// The cache stores only deterministic reports.
pub fn is_deterministic(report: &SolveReport) -> bool {
    report.trace.iter().all(|step| {
        !step.note.contains("deadline")
            && !step.note.contains("cancelled")
            && !step.note.contains("panicked")
    })
}

/// Serialize a solve report into the response body. Deliberately
/// excludes `elapsed` (see the module docs).
pub fn solve_response_body(report: &SolveReport) -> Vec<u8> {
    let mut obj: Vec<(String, Value)> = Vec::with_capacity(9);
    obj.push(("reliability".into(), Value::Float(report.reliability)));
    obj.push((
        "exact".into(),
        match &report.exact {
            Some(r) => Value::Str(r.to_string()),
            None => Value::Null,
        },
    ));
    obj.push((
        "bounds".into(),
        match report.bounds {
            Some((lo, hi)) => Value::Array(vec![Value::Float(lo), Value::Float(hi)]),
            None => Value::Null,
        },
    ));
    obj.push(("method".into(), Value::Str(report.method.to_string())));
    obj.push((
        "confidence".into(),
        Value::Str(report.confidence.to_string()),
    ));
    obj.push((
        "guaranteed".into(),
        Value::Bool(report.confidence.is_guaranteed()),
    ));
    obj.push((
        "spent".into(),
        Value::Object(vec![
            ("worlds".into(), Value::Int(report.worlds as i128)),
            ("samples".into(), Value::Int(report.samples as i128)),
            ("terms".into(), Value::Int(report.terms as i128)),
        ]),
    ));
    obj.push(("trace".into(), Value::Str(report.trace_line())));
    serde_json::to_string(&Value::Object(obj))
        .expect("value serialization is infallible")
        .into_bytes()
}

/// The structured error envelope shared by every endpoint (and the CLI
/// in `--json` mode):
///
/// ```json
/// {"error":{"code":"queue_full","message":"…","retryable":true,"retry_after_ms":2000}}
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorEnvelope {
    pub code: String,
    pub message: String,
    pub retryable: bool,
    /// Mirrors the `Retry-After` header (which is in whole seconds)
    /// with millisecond precision; `None` when there is no point
    /// retrying on a timer.
    pub retry_after_ms: Option<u64>,
}

impl ErrorEnvelope {
    /// Serialize into the wire body.
    pub fn to_body(&self) -> Vec<u8> {
        let obj: Vec<(String, Value)> = vec![
            ("code".into(), Value::Str(self.code.clone())),
            ("message".into(), Value::Str(self.message.clone())),
            ("retryable".into(), Value::Bool(self.retryable)),
            (
                "retry_after_ms".into(),
                match self.retry_after_ms {
                    Some(ms) => Value::Int(ms as i128),
                    None => Value::Null,
                },
            ),
        ];
        serde_json::to_string(&Value::Object(vec![("error".into(), Value::Object(obj))]))
            .expect("value serialization is infallible")
            .into_bytes()
    }

    /// Parse a wire body back into the envelope (round-trip testing and
    /// client-side use).
    pub fn from_body(body: &[u8]) -> Result<ErrorEnvelope, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let value: Value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;
        let inner = value
            .get("error")
            .ok_or_else(|| "missing \"error\" object".to_string())?;
        let code = inner
            .get("code")
            .and_then(|v| v.as_str())
            .ok_or_else(|| "missing string field \"error.code\"".to_string())?
            .to_string();
        let message = inner
            .get("message")
            .and_then(|v| v.as_str())
            .ok_or_else(|| "missing string field \"error.message\"".to_string())?
            .to_string();
        let retryable = match inner.get("retryable") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("missing bool field \"error.retryable\"".into()),
        };
        let retry_after_ms = match inner.get("retry_after_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(as_u64(v).ok_or_else(|| {
                "\"error.retry_after_ms\" must be a non-negative integer".to_string()
            })?),
        };
        Ok(ErrorEnvelope {
            code,
            message,
            retryable,
            retry_after_ms,
        })
    }
}

/// The canonical error code for an HTTP status.
pub fn error_code_for_status(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "read_timeout",
        409 => "conflict",
        413 => "payload_too_large",
        422 => "unprocessable",
        429 => "queue_full",
        500 => "internal",
        503 => "unavailable",
        _ => "error",
    }
}

/// Whether a retry of the identical request can plausibly succeed.
pub fn status_is_retryable(status: u16) -> bool {
    matches!(status, 408 | 429 | 500 | 503)
}

/// Build the envelope body for a failure status. `retry_after_secs`
/// should match the `Retry-After` header when one is sent.
pub fn error_body(status: u16, message: &str, retry_after_secs: Option<u64>) -> Vec<u8> {
    ErrorEnvelope {
        code: error_code_for_status(status).to_string(),
        message: message.to_string(),
        retryable: status_is_retryable(status),
        retry_after_ms: retry_after_secs.map(|s| s * 1000),
    }
    .to_body()
}

/// `POST /v1/jobs` acceptance body.
pub fn job_accepted_body(job_id: u64, coalesced: bool, state: &str) -> Vec<u8> {
    serde_json::to_string(&Value::Object(vec![
        ("job_id".into(), Value::Int(job_id as i128)),
        ("coalesced".into(), Value::Bool(coalesced)),
        ("state".into(), Value::Str(state.to_string())),
    ]))
    .expect("value serialization is infallible")
    .into_bytes()
}

/// `GET /v1/jobs/{id}` body. `result` is the terminal solve outcome —
/// the exact `(status, body)` the synchronous facade would have
/// returned, spliced verbatim so a job result is bit-identical to a
/// direct solve (and to every other fetch of the same job). `error`
/// carries a pre-built [`ErrorEnvelope`] for failed/cancelled jobs.
#[allow(clippy::too_many_arguments)]
pub fn job_status_body(
    job_id: u64,
    tenant: &str,
    state: &str,
    priority: &str,
    coalesced: bool,
    progress: &str,
    result: Option<(u16, &[u8])>,
    error: Option<&ErrorEnvelope>,
) -> Vec<u8> {
    let js = |s: &str| serde_json::to_string(&Value::Str(s.to_string())).expect("string");
    let mut out = String::with_capacity(160 + result.map_or(0, |(_, b)| b.len()));
    out.push_str(&format!(
        "{{\"job_id\":{job_id},\"tenant\":{},\"state\":{},\"priority\":{},\"coalesced\":{coalesced},\"progress\":{}",
        js(tenant),
        js(state),
        js(priority),
        js(progress),
    ));
    match result {
        Some((status, body)) => {
            out.push_str(&format!(",\"result\":{{\"status\":{status},\"body\":"));
            out.push_str(std::str::from_utf8(body).expect("stored bodies are JSON"));
            out.push('}');
        }
        None => out.push_str(",\"result\":null"),
    }
    match error {
        Some(env) => {
            let body = env.to_body();
            let text = std::str::from_utf8(&body).expect("envelope is JSON");
            // Splice the inner object: {"error":{…}} → {…}.
            out.push_str(",\"error\":");
            out.push_str(&text["{\"error\":".len()..text.len() - 1]);
        }
        None => out.push_str(",\"error\":null"),
    }
    out.push('}');
    out.into_bytes()
}

/// `GET /v1/jobs` (tenant-scoped list) body. Items are
/// `(job_id, state, priority, coalesced)` in submit order.
pub fn job_list_body(tenant: &str, items: &[(u64, String, String, bool)]) -> Vec<u8> {
    let jobs = items
        .iter()
        .map(|(id, state, priority, coalesced)| {
            Value::Object(vec![
                ("job_id".into(), Value::Int(*id as i128)),
                ("state".into(), Value::Str(state.clone())),
                ("priority".into(), Value::Str(priority.clone())),
                ("coalesced".into(), Value::Bool(*coalesced)),
            ])
        })
        .collect();
    serde_json::to_string(&Value::Object(vec![
        ("tenant".into(), Value::Str(tenant.to_string())),
        ("jobs".into(), Value::Array(jobs)),
    ]))
    .expect("value serialization is infallible")
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_runtime::{Confidence, TraceStep};
    use std::time::Duration;

    fn limits() -> ParseLimits {
        ParseLimits {
            max_depth: 64,
            max_bytes: 1 << 20,
        }
    }

    #[test]
    fn minimal_request_defaults() {
        let req = parse_solve_request(br#"{"dataset":"d16","query":"exists x. S(x)"}"#, limits())
            .unwrap();
        assert!(matches!(req.db, DbRef::Named(ref n) if n == "d16"));
        assert_eq!(req.method, Method::Auto);
        assert_eq!(req.eps, 0.05);
        assert_eq!(req.delta, 0.05);
        assert_eq!(req.seed, 0);
        assert_eq!(req.timeout_ms, None);
        assert!(req.free.is_none());
    }

    #[test]
    fn full_request_parses() {
        let req = parse_solve_request(
            br#"{"dataset":"d","query":"S(x)","free":["x"],"method":"exact",
                 "eps":0.1,"delta":0.01,"seed":7,"timeout_ms":250}"#,
            limits(),
        )
        .unwrap();
        assert_eq!(req.method, Method::Exact);
        assert_eq!(req.free.as_deref(), Some(&["x".to_string()][..]));
        assert_eq!(req.seed, 7);
        assert_eq!(req.timeout_ms, Some(250));
    }

    #[test]
    fn validation_rejects_bad_requests() {
        let cases: &[&[u8]] = &[
            b"not json",
            br#"[1,2]"#,
            br#"{"query":"S(x)"}"#,
            br#"{"dataset":"d","db":{},"query":"q"}"#,
            br#"{"dataset":"d"}"#,
            br#"{"dataset":"d","query":"q","method":"quantum"}"#,
            br#"{"dataset":"d","query":"q","eps":0}"#,
            br#"{"dataset":"d","query":"q","delta":1.5}"#,
            br#"{"dataset":"d","query":"q","seed":-1}"#,
            br#"{"dataset":"d","query":"q","surprise":true}"#,
        ];
        for body in cases {
            assert!(
                parse_solve_request(body, limits()).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    fn report(trace_notes: &[&str]) -> SolveReport {
        SolveReport {
            reliability: 0.5,
            exact: None,
            bounds: None,
            confidence: Confidence::Fptras {
                eps: 0.05,
                delta: 0.05,
            },
            method: Method::Fptras,
            trace: trace_notes
                .iter()
                .map(|n| TraceStep {
                    method: Method::Fptras,
                    note: n.to_string(),
                })
                .collect(),
            elapsed: Duration::from_millis(3),
            worlds: 0,
            samples: 10,
            terms: 2,
        }
    }

    #[test]
    fn determinism_classifier() {
        assert!(is_deterministic(&report(&[
            "completed with (ε=0.05, δ=0.05) guarantee"
        ])));
        assert!(is_deterministic(&report(&[
            "budget of 100 worlds exhausted after 101",
            "completed",
        ])));
        assert!(!is_deterministic(&report(&[
            "deadline of 200ms exceeded after 204ms",
            "completed",
        ])));
        assert!(!is_deterministic(&report(&["cancelled by caller"])));
        assert!(!is_deterministic(&report(&[
            "panicked: injected fault: runtime.rung.exact.panic",
            "retrying after 4ms (attempt 2 of 3)",
            "completed",
        ])));
    }

    #[test]
    fn response_body_is_stable_json() {
        let body = solve_response_body(&report(&["completed"]));
        let text = String::from_utf8(body).unwrap();
        assert!(text.starts_with("{\"reliability\":0.5,"));
        assert!(text.contains("\"guaranteed\":true"));
        assert!(text.contains("\"spent\":{\"worlds\":0,\"samples\":10,\"terms\":2}"));
        // No timing field anywhere: the body must be cacheable.
        assert!(!text.contains("elapsed"));
    }

    #[test]
    fn tenant_and_priority_parse_and_validate() {
        let req = parse_solve_request(
            br#"{"dataset":"d","query":"q","tenant":"acme","priority":"low"}"#,
            limits(),
        )
        .unwrap();
        assert_eq!(req.tenant.as_deref(), Some("acme"));
        assert_eq!(req.priority, Priority::Low);
        // Defaults.
        let req = parse_solve_request(br#"{"dataset":"d","query":"q"}"#, limits()).unwrap();
        assert_eq!(req.tenant, None);
        assert_eq!(req.priority, Priority::Normal);
        // Rejections.
        for body in [
            br#"{"dataset":"d","query":"q","priority":"urgent"}"#.as_slice(),
            br#"{"dataset":"d","query":"q","tenant":""}"#.as_slice(),
            br#"{"dataset":"d","query":"q","tenant":7}"#.as_slice(),
        ] {
            assert!(
                parse_solve_request(body, limits()).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn error_envelope_shape_is_exact() {
        let body = error_body(429, "queue is full", Some(2));
        assert_eq!(
            body,
            br#"{"error":{"code":"queue_full","message":"queue is full","retryable":true,"retry_after_ms":2000}}"#
                .to_vec()
        );
        let body = error_body(400, "bad \"query\"", None);
        assert_eq!(
            body,
            br#"{"error":{"code":"bad_request","message":"bad \"query\"","retryable":false,"retry_after_ms":null}}"#
                .to_vec()
        );
    }

    #[test]
    fn error_envelope_round_trips_for_every_status() {
        // Exhaustive over the full failure surface: serialize → parse
        // must reproduce every field for each status the server emits.
        for status in [400u16, 404, 405, 408, 409, 413, 422, 429, 500, 503] {
            for retry in [None, Some(1), Some(30)] {
                let env = ErrorEnvelope {
                    code: error_code_for_status(status).to_string(),
                    message: format!("message for {status} with \"quotes\" and \\slash"),
                    retryable: status_is_retryable(status),
                    retry_after_ms: retry.map(|s: u64| s * 1000),
                };
                let parsed = ErrorEnvelope::from_body(&env.to_body()).unwrap();
                assert_eq!(parsed, env, "status {status}, retry {retry:?}");
            }
        }
        // Codes are distinct per status (the client can dispatch on
        // them without looking at the HTTP status line).
        let codes: std::collections::HashSet<&str> =
            [400u16, 404, 405, 408, 409, 413, 422, 429, 500, 503]
                .iter()
                .map(|&s| error_code_for_status(s))
                .collect();
        assert_eq!(codes.len(), 10);
        // Retryable statuses carry retryable: true.
        assert!(status_is_retryable(429) && status_is_retryable(503));
        assert!(!status_is_retryable(400) && !status_is_retryable(422));
    }

    #[test]
    fn malformed_envelopes_are_rejected() {
        for body in [
            br#"{"error":"stringly"}"#.as_slice(),
            br#"{"error":{"code":"x","retryable":true,"retry_after_ms":null}}"#.as_slice(),
            br#"{"error":{"code":"x","message":"m","retry_after_ms":null}}"#.as_slice(),
            br#"{"error":{"code":"x","message":"m","retryable":true,"retry_after_ms":-3}}"#
                .as_slice(),
            br#"{"ok":true}"#.as_slice(),
            b"not json".as_slice(),
        ] {
            assert!(
                ErrorEnvelope::from_body(body).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn job_bodies_are_stable_json() {
        assert_eq!(
            job_accepted_body(7, true, "queued"),
            br#"{"job_id":7,"coalesced":true,"state":"queued"}"#.to_vec()
        );
        // Terminal job with a spliced result: the embedded body bytes
        // appear verbatim.
        let result_body = br#"{"reliability":0.5,"method":"exact"}"#;
        let body = job_status_body(
            7,
            "default",
            "done",
            "normal",
            false,
            "",
            Some((200, result_body.as_slice())),
            None,
        );
        let text = String::from_utf8(body).unwrap();
        assert_eq!(
            text,
            r#"{"job_id":7,"tenant":"default","state":"done","priority":"normal","coalesced":false,"progress":"","result":{"status":200,"body":{"reliability":0.5,"method":"exact"}},"error":null}"#
        );
        // Failed job with an embedded error envelope object.
        let env = ErrorEnvelope {
            code: "internal".into(),
            message: "boom".into(),
            retryable: true,
            retry_after_ms: None,
        };
        let body = job_status_body(8, "t", "failed", "low", false, "", None, Some(&env));
        let text = String::from_utf8(body).unwrap();
        assert!(
            text.contains(r#""error":{"code":"internal","message":"boom","retryable":true,"retry_after_ms":null}"#),
            "{text}"
        );
        // List body.
        let items = vec![(1u64, "done".to_string(), "normal".to_string(), false)];
        assert_eq!(
            job_list_body("default", &items),
            br#"{"tenant":"default","jobs":[{"job_id":1,"state":"done","priority":"normal","coalesced":false}]}"#
                .to_vec()
        );
    }
}
