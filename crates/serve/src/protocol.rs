//! The `/v1/solve` wire protocol: request parsing/validation and
//! deterministic response serialization.
//!
//! Request body (JSON object):
//!
//! ```json
//! {
//!   "dataset": "uncertain16",        // preloaded name … or …
//!   "db": { …UnreliableDatabaseSpec… },
//!   "query": "exists x. S(x)",
//!   "free": ["x", "y"],              // optional, default: sorted free vars
//!   "method": "auto",                // auto|qf|exact|fptras|padding|mc
//!   "eps": 0.05, "delta": 0.05,      // sampling accuracy
//!   "seed": 0,                       // RNG seed (part of the cache key)
//!   "timeout_ms": 1000               // per-request Budget deadline
//! }
//! ```
//!
//! The response body is a *deterministic* function of the request when
//! no wall-clock trip occurred: it carries no timestamps or elapsed
//! times (those ride in `X-Qrel-Elapsed-Us` / `/metrics`), so a cached
//! body is bit-identical to what a fresh solve would serialize.

use qrel_prob::UnreliableDatabaseSpec;
use qrel_runtime::{Method, SolveReport};
use serde::Value;
use serde_json::ParseLimits;

/// Which database a request targets.
#[derive(Debug)]
pub enum DbRef {
    /// A dataset preloaded at server start, by name.
    Named(String),
    /// An inline spec shipped in the request body.
    Inline(Box<UnreliableDatabaseSpec>),
}

/// A validated solve request.
#[derive(Debug)]
pub struct SolveRequest {
    pub db: DbRef,
    pub query: String,
    pub free: Option<Vec<String>>,
    pub method: Method,
    pub eps: f64,
    pub delta: f64,
    pub seed: u64,
    pub timeout_ms: Option<u64>,
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(x) => Some(*x),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

/// Parse and validate a `/v1/solve` body. The error string is shipped
/// back verbatim in a `400` response.
pub fn parse_solve_request(body: &[u8], limits: ParseLimits) -> Result<SolveRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value: Value =
        serde_json::from_str_with_limits(text, limits).map_err(|e| format!("bad JSON: {e}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| format!("body must be a JSON object, got {}", value.kind()))?;

    for (key, _) in obj {
        if !matches!(
            key.as_str(),
            "dataset"
                | "db"
                | "query"
                | "free"
                | "method"
                | "eps"
                | "delta"
                | "seed"
                | "timeout_ms"
        ) {
            return Err(format!("unknown field {key:?}"));
        }
    }

    let db = match (value.get("dataset"), value.get("db")) {
        (Some(_), Some(_)) => {
            return Err("give either \"dataset\" or \"db\", not both".into());
        }
        (Some(name), None) => {
            let name = name
                .as_str()
                .ok_or_else(|| "\"dataset\" must be a string".to_string())?;
            DbRef::Named(name.to_string())
        }
        (None, Some(spec)) => {
            let spec: UnreliableDatabaseSpec = serde_json::from_value(spec.clone())
                .map_err(|e| format!("bad \"db\" spec: {e}"))?;
            DbRef::Inline(Box::new(spec))
        }
        (None, None) => return Err("missing \"dataset\" or \"db\"".into()),
    };

    let query = value
        .get("query")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "missing string field \"query\"".to_string())?
        .to_string();

    let free = match value.get("free") {
        None => None,
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| "\"free\" must be an array of strings".to_string())?;
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                names.push(
                    item.as_str()
                        .ok_or_else(|| "\"free\" must be an array of strings".to_string())?
                        .to_string(),
                );
            }
            Some(names)
        }
    };

    let method_name = value
        .get("method")
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| "\"method\" must be a string".to_string())
        })
        .transpose()?
        .unwrap_or_else(|| "auto".to_string());
    let method = Method::parse(&method_name).ok_or_else(|| {
        format!("unknown method {method_name:?} (auto|qf|exact|fptras|padding|mc)")
    })?;

    let eps = match value.get("eps") {
        None => 0.05,
        Some(v) => as_f64(v).ok_or_else(|| "\"eps\" must be a number".to_string())?,
    };
    let delta = match value.get("delta") {
        None => 0.05,
        Some(v) => as_f64(v).ok_or_else(|| "\"delta\" must be a number".to_string())?,
    };
    if !(eps > 0.0 && eps.is_finite()) {
        return Err("\"eps\" must be a positive finite number".into());
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err("\"delta\" must be in (0, 1)".into());
    }

    let seed = match value.get("seed") {
        None => 0,
        Some(v) => {
            as_u64(v).ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?
        }
    };
    let timeout_ms = match value.get("timeout_ms") {
        None => None,
        Some(v) => Some(
            as_u64(v).ok_or_else(|| "\"timeout_ms\" must be a non-negative integer".to_string())?,
        ),
    };

    Ok(SolveRequest {
        db,
        query,
        free,
        method,
        eps,
        delta,
        seed,
        timeout_ms,
    })
}

/// True when `report` is a deterministic function of (database, query,
/// method, ε, δ, seed) — i.e. no rung tripped on wall-clock time or
/// external cancellation. Counter trips (worlds/samples/terms caps)
/// happen at exactly the same point on every run and are fine; only
/// time and cancellation make the degradation path machine-dependent.
/// Caught rung panics are excluded too: under fault injection a healed
/// answer is bit-identical but the *trace* records the panic, and a
/// cached panic trace would replay a fault to fault-free clients.
/// The cache stores only deterministic reports.
pub fn is_deterministic(report: &SolveReport) -> bool {
    report.trace.iter().all(|step| {
        !step.note.contains("deadline")
            && !step.note.contains("cancelled")
            && !step.note.contains("panicked")
    })
}

/// Serialize a solve report into the response body. Deliberately
/// excludes `elapsed` (see the module docs).
pub fn solve_response_body(report: &SolveReport) -> Vec<u8> {
    let mut obj: Vec<(String, Value)> = Vec::with_capacity(9);
    obj.push(("reliability".into(), Value::Float(report.reliability)));
    obj.push((
        "exact".into(),
        match &report.exact {
            Some(r) => Value::Str(r.to_string()),
            None => Value::Null,
        },
    ));
    obj.push((
        "bounds".into(),
        match report.bounds {
            Some((lo, hi)) => Value::Array(vec![Value::Float(lo), Value::Float(hi)]),
            None => Value::Null,
        },
    ));
    obj.push(("method".into(), Value::Str(report.method.to_string())));
    obj.push((
        "confidence".into(),
        Value::Str(report.confidence.to_string()),
    ));
    obj.push((
        "guaranteed".into(),
        Value::Bool(report.confidence.is_guaranteed()),
    ));
    obj.push((
        "spent".into(),
        Value::Object(vec![
            ("worlds".into(), Value::Int(report.worlds as i128)),
            ("samples".into(), Value::Int(report.samples as i128)),
            ("terms".into(), Value::Int(report.terms as i128)),
        ]),
    ));
    obj.push(("trace".into(), Value::Str(report.trace_line())));
    serde_json::to_string(&Value::Object(obj))
        .expect("value serialization is infallible")
        .into_bytes()
}

/// `{"error": "..."}` body for failure responses.
pub fn error_body(message: &str) -> Vec<u8> {
    serde_json::to_string(&Value::Object(vec![(
        "error".into(),
        Value::Str(message.to_string()),
    )]))
    .expect("value serialization is infallible")
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_runtime::{Confidence, TraceStep};
    use std::time::Duration;

    fn limits() -> ParseLimits {
        ParseLimits {
            max_depth: 64,
            max_bytes: 1 << 20,
        }
    }

    #[test]
    fn minimal_request_defaults() {
        let req = parse_solve_request(br#"{"dataset":"d16","query":"exists x. S(x)"}"#, limits())
            .unwrap();
        assert!(matches!(req.db, DbRef::Named(ref n) if n == "d16"));
        assert_eq!(req.method, Method::Auto);
        assert_eq!(req.eps, 0.05);
        assert_eq!(req.delta, 0.05);
        assert_eq!(req.seed, 0);
        assert_eq!(req.timeout_ms, None);
        assert!(req.free.is_none());
    }

    #[test]
    fn full_request_parses() {
        let req = parse_solve_request(
            br#"{"dataset":"d","query":"S(x)","free":["x"],"method":"exact",
                 "eps":0.1,"delta":0.01,"seed":7,"timeout_ms":250}"#,
            limits(),
        )
        .unwrap();
        assert_eq!(req.method, Method::Exact);
        assert_eq!(req.free.as_deref(), Some(&["x".to_string()][..]));
        assert_eq!(req.seed, 7);
        assert_eq!(req.timeout_ms, Some(250));
    }

    #[test]
    fn validation_rejects_bad_requests() {
        let cases: &[&[u8]] = &[
            b"not json",
            br#"[1,2]"#,
            br#"{"query":"S(x)"}"#,
            br#"{"dataset":"d","db":{},"query":"q"}"#,
            br#"{"dataset":"d"}"#,
            br#"{"dataset":"d","query":"q","method":"quantum"}"#,
            br#"{"dataset":"d","query":"q","eps":0}"#,
            br#"{"dataset":"d","query":"q","delta":1.5}"#,
            br#"{"dataset":"d","query":"q","seed":-1}"#,
            br#"{"dataset":"d","query":"q","surprise":true}"#,
        ];
        for body in cases {
            assert!(
                parse_solve_request(body, limits()).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(body)
            );
        }
    }

    fn report(trace_notes: &[&str]) -> SolveReport {
        SolveReport {
            reliability: 0.5,
            exact: None,
            bounds: None,
            confidence: Confidence::Fptras {
                eps: 0.05,
                delta: 0.05,
            },
            method: Method::Fptras,
            trace: trace_notes
                .iter()
                .map(|n| TraceStep {
                    method: Method::Fptras,
                    note: n.to_string(),
                })
                .collect(),
            elapsed: Duration::from_millis(3),
            worlds: 0,
            samples: 10,
            terms: 2,
        }
    }

    #[test]
    fn determinism_classifier() {
        assert!(is_deterministic(&report(&[
            "completed with (ε=0.05, δ=0.05) guarantee"
        ])));
        assert!(is_deterministic(&report(&[
            "budget of 100 worlds exhausted after 101",
            "completed",
        ])));
        assert!(!is_deterministic(&report(&[
            "deadline of 200ms exceeded after 204ms",
            "completed",
        ])));
        assert!(!is_deterministic(&report(&["cancelled by caller"])));
        assert!(!is_deterministic(&report(&[
            "panicked: injected fault: runtime.rung.exact.panic",
            "retrying after 4ms (attempt 2 of 3)",
            "completed",
        ])));
    }

    #[test]
    fn response_body_is_stable_json() {
        let body = solve_response_body(&report(&["completed"]));
        let text = String::from_utf8(body).unwrap();
        assert!(text.starts_with("{\"reliability\":0.5,"));
        assert!(text.contains("\"guaranteed\":true"));
        assert!(text.contains("\"spent\":{\"worlds\":0,\"samples\":10,\"terms\":2}"));
        // No timing field anywhere: the body must be cacheable.
        assert!(!text.contains("elapsed"));
    }

    #[test]
    fn error_body_shape() {
        assert_eq!(error_body("nope"), br#"{"error":"nope"}"#.to_vec());
    }
}
