//! Sharded, byte-capped LRU cache for solve results.
//!
//! Keyed by everything the answer is a function of — canonical database
//! hash, canonical query text, free-variable order, method, `ε`/`δ`
//! (bit patterns, so `0.1` and `0.1000…1` never collide), and seed —
//! and storing the exact serialized response body, so a hit returns the
//! byte-identical JSON a fresh solve would produce. Sharding keeps lock
//! contention off the hot path: the shard is picked by a stable FNV-1a
//! hash of the key, each shard holds an independent byte-capped LRU.
//!
//! The LRU order uses the classic lazy scheme: every touch pushes a
//! `(tick, key)` marker onto a queue, eviction pops markers and drops
//! the entry only when the marker's tick still matches the entry's
//! (stale markers are skipped). O(1) amortized, no linked lists.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qrel_plan::Plan;

/// Number of independent LRU shards. Fixed (like `qrel_par`'s shard
/// count) so behaviour never depends on the machine.
pub const CACHE_SHARDS: usize = 8;

/// Everything a cached answer is a function of.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// FNV-1a hash of the canonical (re-serialized) database spec.
    pub db_hash: u64,
    /// Canonical query text (display form of the parsed formula).
    pub query: String,
    /// Free-variable order (part of the answer for k-ary queries).
    pub free: Vec<String>,
    pub method: String,
    pub eps_bits: u64,
    pub delta_bits: u64,
    pub seed: u64,
}

/// Canonical bit pattern for a float-valued key component (`ε`, `δ`).
///
/// `f64::to_bits` alone is almost the right key — IEEE-754 parsing is
/// correctly rounded, so `0.05`, `5e-2` and `0.050` already decode to
/// identical bits — but it leaks the two representational quirks floats
/// have: `-0.0` and `+0.0` compare equal yet differ in bits, and NaN
/// carries 2⁵²−1 distinct payloads that all mean "not a number". Both
/// would split one logical request across several cache entries (or,
/// for NaN, leak unboundedly many keys). Fold them: `-0.0` maps to
/// `+0.0`, every NaN maps to the canonical quiet NaN.
pub fn canonical_f64_bits(x: f64) -> u64 {
    const CANONICAL_NAN: u64 = 0x7ff8_0000_0000_0000;
    if x.is_nan() {
        CANONICAL_NAN
    } else if x == 0.0 {
        0 // +0.0 and -0.0 are the same accuracy request
    } else {
        x.to_bits()
    }
}

/// Stable 64-bit FNV-1a, used for the canonical database hash and for
/// shard selection (std's `DefaultHasher` is explicitly unspecified
/// across releases; cache keys must hash identically forever so that
/// recorded experiments stay reproducible).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl CacheKey {
    /// Stable 64-bit fingerprint over every field. The scheduler uses
    /// it as the coalesce key: two requests with the same fingerprint
    /// are cache-equivalent, so while one is queued or running the
    /// other can join its job group instead of solving again.
    pub fn fingerprint(&self) -> u64 {
        self.stable_hash()
    }

    /// Stable shard/bucket hash over every field.
    fn stable_hash(&self) -> u64 {
        let mut buf = Vec::with_capacity(64 + self.query.len());
        buf.extend_from_slice(&self.db_hash.to_le_bytes());
        buf.extend_from_slice(self.query.as_bytes());
        buf.push(0);
        for v in &self.free {
            buf.extend_from_slice(v.as_bytes());
            buf.push(0);
        }
        buf.extend_from_slice(self.method.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&self.eps_bits.to_le_bytes());
        buf.extend_from_slice(&self.delta_bits.to_le_bytes());
        buf.extend_from_slice(&self.seed.to_le_bytes());
        fnv1a(&buf)
    }

    /// Approximate heap footprint of the key itself, charged against
    /// the byte cap alongside the body.
    fn weight(&self) -> usize {
        std::mem::size_of::<CacheKey>()
            + self.query.len()
            + self.free.iter().map(|s| s.len() + 24).sum::<usize>()
            + self.method.len()
    }
}

#[derive(Debug)]
struct Entry {
    body: Arc<Vec<u8>>,
    /// FNV-1a of `body` taken at insert time. Verified on every hit:
    /// the cache's contract is that a hit is byte-identical to the
    /// fresh solve it replaces, so a corrupted entry must surface as a
    /// miss (recompute), never as a silently wrong reply.
    checksum: u64,
    /// Tick of the most recent touch; stale queue markers carry older
    /// ticks and are skipped at eviction time.
    tick: u64,
    weight: usize,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    order: VecDeque<(u64, CacheKey)>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: &CacheKey) -> Option<(Arc<Vec<u8>>, u64)> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(key)?;
        entry.tick = tick;
        self.order.push_back((tick, key.clone()));
        Some((Arc::clone(&entry.body), entry.checksum))
    }

    fn remove(&mut self, key: &CacheKey) {
        if let Some(entry) = self.map.remove(key) {
            self.bytes -= entry.weight;
        }
    }

    fn insert(&mut self, key: CacheKey, body: Arc<Vec<u8>>, cap: usize) {
        let weight = key.weight() + body.len();
        if weight > cap {
            return; // a single entry larger than the whole shard
        }
        self.tick += 1;
        let tick = self.tick;
        let checksum = fnv1a(&body);
        if let Some(old) = self.map.insert(
            key.clone(),
            Entry {
                body,
                checksum,
                tick,
                weight,
            },
        ) {
            self.bytes -= old.weight;
        }
        self.bytes += weight;
        self.order.push_back((tick, key));
        while self.bytes > cap {
            let Some((marker_tick, marker_key)) = self.order.pop_front() else {
                break;
            };
            if self
                .map
                .get(&marker_key)
                .is_some_and(|e| e.tick == marker_tick)
            {
                let evicted = self.map.remove(&marker_key).expect("entry just observed");
                self.bytes -= evicted.weight;
            }
        }
    }
}

/// The sharded result cache. Thread-safe; clone the [`Arc`] it is held
/// in rather than the cache itself.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte cap (total cap / [`CACHE_SHARDS`]).
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Hits whose body failed checksum verification: the entry was
    /// evicted and the lookup reported a miss (fail closed, recompute).
    poison_detected: AtomicU64,
}

impl ResultCache {
    /// A cache holding up to `max_bytes` total (keys + bodies). A zero
    /// cap disables caching entirely — every lookup misses, inserts are
    /// dropped.
    pub fn new(max_bytes: usize) -> Self {
        ResultCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_cap: max_bytes / CACHE_SHARDS,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            poison_detected: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[(key.stable_hash() % CACHE_SHARDS as u64) as usize]
    }

    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        if self.shard_cap == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let got = self
            .shard(key)
            .lock()
            .expect("cache shard poisoned")
            .touch(key);
        let Some((mut body, checksum)) = got else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        // Chaos hook: corrupt the reply we are about to verify, modeling
        // bit rot / a buggy write between insert and hit.
        if qrel_faults::armed() {
            if let Some(_fired) = qrel_faults::hit(qrel_faults::points::CACHE_REPLY_POISON) {
                let mut corrupted = body.as_ref().clone();
                if let Some(b) = corrupted.first_mut() {
                    *b ^= 0x01;
                }
                body = Arc::new(corrupted);
            }
        }
        // Verify the checksum taken at insert time. A mismatch means
        // the bytes in hand are NOT the bytes the solver produced:
        // evict the entry and fail closed as a miss so the caller
        // recomputes, instead of serving a silently wrong reply.
        if fnv1a(&body) != checksum {
            self.shard(key)
                .lock()
                .expect("cache shard poisoned")
                .remove(key);
            self.poison_detected.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(body)
    }

    pub fn insert(&self, key: CacheKey, body: Arc<Vec<u8>>) {
        if self.shard_cap == 0 {
            return;
        }
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, body, self.shard_cap);
    }

    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits rejected because the body failed checksum verification.
    pub fn poison_detected_count(&self) -> u64 {
        self.poison_detected.load(Ordering::Relaxed)
    }

    /// Total entries across all shards (test/diagnostic use).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes accounted across all shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Plan cache

/// Entry cap for [`PlanCache`]. Plans are tiny symbolic trees (a few
/// hundred bytes), so a count cap is the right bound, not a byte cap.
pub const PLAN_CACHE_CAP: usize = 4096;

/// Outcome of a plan-cache lookup, surfaced to clients in the
/// `X-Qrel-Plan` debug header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStatus {
    /// A safe plan was served from the cache.
    Hit,
    /// A safe plan was compiled fresh (and cached).
    Miss,
    /// The query is provably outside the safe class; the decline reason
    /// is cached too, so repeat offenders skip recompilation.
    Unsafe,
}

impl PlanStatus {
    pub fn as_str(&self) -> &'static str {
        match self {
            PlanStatus::Hit => "hit",
            PlanStatus::Miss => "miss",
            PlanStatus::Unsafe => "unsafe",
        }
    }
}

#[derive(Default)]
struct PlanShard {
    map: HashMap<(String, String), Result<Arc<Plan>, String>>,
    order: VecDeque<(String, String)>,
}

/// Cache of compiled safe plans, keyed by `(canonical query text,
/// schema fingerprint)`.
///
/// Plans are *symbolic* — they mention relation names and variables but
/// no fact probabilities — so a plan compiled once is valid for every
/// database over the same schema, forever. In particular a fact
/// mutation moves the dataset's db-hash (invalidating its
/// [`ResultCache`] entries precisely) while this cache keeps hitting:
/// only the *result* depends on ν, never the plan. The schema
/// fingerprint is part of the key because arity checks happen at eval
/// time — the same query text over a different schema must not share a
/// decline verdict.
///
/// Declines are cached negatively (the `Unsafe` reason as a string), so
/// a hot unsafe query costs one hash lookup, not a recompilation.
#[derive(Default)]
pub struct PlanCache {
    shard: Mutex<PlanShard>,
    hits: AtomicU64,
    misses: AtomicU64,
    unsafe_total: AtomicU64,
}

impl PlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the plan for `(query, schema)`, compiling (and caching
    /// the outcome, success or decline) on a miss.
    pub fn get_or_compile<F>(
        &self,
        query: &str,
        schema: &str,
        compile: F,
    ) -> (Result<Arc<Plan>, String>, PlanStatus)
    where
        F: FnOnce() -> Result<Plan, qrel_plan::Unsafe>,
    {
        let key = (query.to_string(), schema.to_string());
        let mut shard = self.shard.lock().expect("plan cache poisoned");
        if let Some(cached) = shard.map.get(&key) {
            let status = match cached {
                Ok(_) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    PlanStatus::Hit
                }
                Err(_) => {
                    self.unsafe_total.fetch_add(1, Ordering::Relaxed);
                    PlanStatus::Unsafe
                }
            };
            return (cached.clone(), status);
        }
        let outcome = match compile() {
            Ok(plan) => Ok(Arc::new(plan)),
            Err(reason) => Err(reason.to_string()),
        };
        let status = match &outcome {
            Ok(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                PlanStatus::Miss
            }
            Err(_) => {
                self.unsafe_total.fetch_add(1, Ordering::Relaxed);
                PlanStatus::Unsafe
            }
        };
        shard.map.insert(key.clone(), outcome.clone());
        shard.order.push_back(key);
        while shard.map.len() > PLAN_CACHE_CAP {
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            shard.map.remove(&oldest);
        }
        (outcome, status)
    }

    /// Safe plans served from the cache.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Safe plans compiled fresh.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that resolved to a declined (unsafe) query.
    pub fn unsafe_count(&self) -> u64 {
        self.unsafe_total.load(Ordering::Relaxed)
    }

    /// Cached entries (test/diagnostic use).
    pub fn len(&self) -> usize {
        self.shard.lock().expect("plan cache poisoned").map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            db_hash: 42,
            query: "exists x. S(x)".into(),
            free: vec![],
            method: "auto".into(),
            eps_bits: 0.05f64.to_bits(),
            delta_bits: 0.05f64.to_bits(),
            seed,
        }
    }

    fn body(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; n])
    }

    #[test]
    fn hit_returns_the_exact_bytes() {
        let cache = ResultCache::new(1 << 20);
        let k = key(0);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), Arc::new(b"{\"r\":1}".to_vec()));
        assert_eq!(cache.get(&k).unwrap().as_slice(), b"{\"r\":1}");
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
    }

    #[test]
    fn distinct_seeds_are_distinct_entries() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(key(1), Arc::new(b"one".to_vec()));
        cache.insert(key(2), Arc::new(b"two".to_vec()));
        assert_eq!(cache.get(&key(1)).unwrap().as_slice(), b"one");
        assert_eq!(cache.get(&key(2)).unwrap().as_slice(), b"two");
    }

    #[test]
    fn byte_cap_evicts_least_recently_used() {
        // Single-shard-sized cap would split awkwardly; use keys that
        // all land wherever they land and a cap small enough to force
        // eviction regardless.
        let cache = ResultCache::new(CACHE_SHARDS * 4096);
        for s in 0..200u64 {
            cache.insert(key(s), body(1024));
        }
        // Far fewer than 200 survive, and accounting stayed within cap.
        assert!(cache.len() < 60, "len = {}", cache.len());
        assert!(cache.bytes() <= CACHE_SHARDS * 4096);
        // The most recently inserted keys are the likeliest survivors:
        // at least one of the last few must still be present.
        let recent_hits = (195..200).filter(|&s| cache.get(&key(s)).is_some()).count();
        assert!(recent_hits > 0);
    }

    #[test]
    fn touching_protects_from_eviction() {
        // Everything in one shard: same key fields except seed may
        // spread, so craft a tiny cap per shard and hammer one key.
        let cache = ResultCache::new(CACHE_SHARDS * 4096);
        let hot = key(7);
        cache.insert(hot.clone(), body(512));
        for s in 100..160u64 {
            cache.insert(key(s), body(512));
            // Keep the hot key warm.
            cache.get(&hot);
        }
        assert!(cache.get(&hot).is_some(), "hot key was evicted");
    }

    #[test]
    fn zero_cap_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(key(0), body(8));
        assert!(cache.get(&key(0)).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn oversized_single_entry_is_dropped() {
        let cache = ResultCache::new(CACHE_SHARDS * 256);
        cache.insert(key(0), body(10_000));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn canonical_bits_unify_textual_variants() {
        // Correctly-rounded parsing means every spelling of the same
        // decimal already lands on one bit pattern; canonicalization
        // must preserve that.
        let spellings = ["0.05", "5e-2", "0.050", "0.0500", "5.0E-2"];
        let bits: Vec<u64> = spellings
            .iter()
            .map(|s| canonical_f64_bits(s.parse::<f64>().unwrap()))
            .collect();
        assert!(
            bits.iter().all(|&b| b == bits[0]),
            "{spellings:?} -> {bits:?}"
        );
        // ...and distinct accuracies stay distinct.
        assert_ne!(canonical_f64_bits(0.05), canonical_f64_bits(0.1),);
    }

    #[test]
    fn canonical_bits_fold_signed_zero_and_nan() {
        assert_eq!(canonical_f64_bits(-0.0), canonical_f64_bits(0.0));
        assert_eq!(canonical_f64_bits(0.0), 0);
        // Every NaN payload — quiet, negative, arbitrary — collapses to
        // one key instead of 2^52 − 1 of them.
        let weird_nan = f64::from_bits(0xfff8_dead_beef_0001);
        assert!(weird_nan.is_nan());
        assert_eq!(canonical_f64_bits(f64::NAN), canonical_f64_bits(weird_nan));
        assert_eq!(canonical_f64_bits(f64::NAN), 0x7ff8_0000_0000_0000);
        // Non-zero, non-NaN values keep their exact bits.
        assert_eq!(canonical_f64_bits(0.25), 0.25f64.to_bits());
    }

    #[test]
    fn keys_differing_only_in_float_spelling_share_an_entry() {
        let cache = ResultCache::new(1 << 20);
        let mut a = key(0);
        a.eps_bits = canonical_f64_bits("5e-2".parse::<f64>().unwrap());
        let mut b = key(0);
        b.eps_bits = canonical_f64_bits("0.050".parse::<f64>().unwrap());
        cache.insert(a, Arc::new(b"shared".to_vec()));
        assert_eq!(cache.get(&b).unwrap().as_slice(), b"shared");
    }

    #[test]
    fn poisoned_entry_is_detected_evicted_and_reported_as_miss() {
        let cache = ResultCache::new(1 << 20);
        let k = key(0);
        cache.insert(k.clone(), Arc::new(b"{\"r\":1}".to_vec()));
        let plan = qrel_faults::FaultPlan::new(2).with_rule(
            qrel_faults::points::CACHE_REPLY_POISON,
            1.0,
            0,
            1, // poison the first hit only
        );
        {
            let _guard = plan.arm();
            // The poisoned hit fails verification: miss, entry evicted.
            assert!(cache.get(&k).is_none(), "poisoned reply must not be served");
            assert_eq!(cache.poison_detected_count(), 1);
            assert_eq!(cache.len(), 0, "corrupted entry must be evicted");
            // Self-healing: recompute-and-reinsert restores clean hits
            // even while the plan is still armed (its one fire is spent).
            cache.insert(k.clone(), Arc::new(b"{\"r\":1}".to_vec()));
            assert_eq!(cache.get(&k).unwrap().as_slice(), b"{\"r\":1}");
        }
        assert_eq!(cache.poison_detected_count(), 1);
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned values: the canonical db hash is part of recorded
        // experiment output, so the function must never change.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn plan_cache_hits_after_first_compile_and_counts() {
        let cache = PlanCache::new();
        let f = qrel_logic::parser::parse_formula("exists x. S(x)").unwrap();
        let compiles = std::cell::Cell::new(0);
        let lookup = || {
            cache.get_or_compile("(exists x. S(x))", "S/1", || {
                compiles.set(compiles.get() + 1);
                qrel_plan::compile(&f)
            })
        };
        let (p1, s1) = lookup();
        assert!(p1.is_ok());
        assert_eq!(s1, PlanStatus::Miss);
        let (p2, s2) = lookup();
        assert_eq!(s2, PlanStatus::Hit);
        assert!(Arc::ptr_eq(&p1.unwrap(), &p2.unwrap()), "same cached plan");
        assert_eq!(compiles.get(), 1, "second lookup must not recompile");
        assert_eq!((cache.hit_count(), cache.miss_count()), (1, 1));
    }

    #[test]
    fn plan_cache_caches_declines_negatively() {
        let cache = PlanCache::new();
        let f = qrel_logic::parser::parse_formula("exists x y. (S(x) & E(x, y) & T(y))").unwrap();
        for _ in 0..2 {
            let (p, s) = cache.get_or_compile("h0", "E/2,S/1,T/1", || qrel_plan::compile(&f));
            assert_eq!(s, PlanStatus::Unsafe);
            assert!(p.unwrap_err().contains("non-hierarchical"));
        }
        assert_eq!(cache.unsafe_count(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn plan_cache_keys_on_schema_too() {
        // Same query text, different schemas: independent entries.
        let cache = PlanCache::new();
        let f = qrel_logic::parser::parse_formula("exists x. S(x)").unwrap();
        let (first, _) = cache.get_or_compile("(exists x. S(x))", "S/1", || qrel_plan::compile(&f));
        assert!(first.is_ok());
        let (_, s) = cache.get_or_compile("(exists x. S(x))", "S/1,T/1", || qrel_plan::compile(&f));
        assert_eq!(s, PlanStatus::Miss);
        assert_eq!(cache.len(), 2);
    }
}
