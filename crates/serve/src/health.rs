//! Self-healing control plane for the serve path: per-method circuit
//! breakers, the server health state machine, and the drain-rate
//! estimator behind the dynamic `Retry-After` header.
//!
//! ## Circuit breaker
//!
//! One breaker per solve method (including `auto`). Classic three-state
//! machine:
//!
//! ```text
//!            N consecutive failures
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ cooldown elapses
//!     │ probe succeeds                  ▼
//!     └────────────────────────────  HalfOpen ──▶ Open (probe fails)
//! ```
//!
//! A *failure* is a solve that panicked (even if the retry ladder then
//! healed it — a flapping rung is still flapping) or errored with a
//! non-user-fault kind; user errors (bad query, bad spec) never trip a
//! breaker. While a method's breaker is open, requests for it are
//! refused up front with `503` + `Retry-After` instead of burning a
//! worker on a rung that is currently known-bad. After `cooldown`, one
//! probe request is let through; its outcome closes or re-opens the
//! circuit.
//!
//! ## Health states
//!
//! `/healthz` reports `ok` (all circuits closed), `degraded` (at least
//! one circuit open or half-open), or `draining` (shutdown in
//! progress). The status string is the machine-readable contract;
//! load balancers route on it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qrel_runtime::Method;

/// Methods with an independent breaker, in a fixed label order.
pub const BREAKER_METHODS: [Method; 6] = [
    Method::Auto,
    Method::Qf,
    Method::Exact,
    Method::Fptras,
    Method::Padding,
    Method::NaiveMc,
];

fn method_index(method: Method) -> usize {
    BREAKER_METHODS
        .iter()
        .position(|&m| m == method)
        .expect("every method has a breaker slot")
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    /// Numeric encoding for the `/metrics` gauge.
    fn as_gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// What the breaker says about an incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Circuit closed — serve normally.
    Allowed,
    /// Circuit half-open — this request is the probe; its outcome
    /// decides the next state.
    Probe,
    /// Circuit open — refuse with `503`; `retry_after_secs` is the
    /// remaining cooldown, rounded up (at least 1).
    Rejected { retry_after_secs: u64 },
}

#[derive(Debug)]
struct BreakerSlot {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// A half-open probe is in flight; concurrent requests stay
    /// rejected until it reports back.
    probe_in_flight: bool,
}

impl Default for BreakerSlot {
    fn default() -> Self {
        BreakerSlot {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            probe_in_flight: false,
        }
    }
}

/// Per-method circuit breakers. One instance per server; all methods
/// take `&self` (a short mutex hold per decision — the solve itself
/// dwarfs it).
#[derive(Debug)]
pub struct Breakers {
    slots: Vec<Mutex<BreakerSlot>>,
    threshold: u32,
    cooldown: Duration,
    opens_total: AtomicU64,
}

impl Breakers {
    /// `threshold` consecutive failures open a circuit; it stays open
    /// for `cooldown` before a probe is admitted. A zero threshold
    /// disables the breakers entirely (every admission is `Allowed`).
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Breakers {
            slots: BREAKER_METHODS
                .iter()
                .map(|_| Mutex::new(BreakerSlot::default()))
                .collect(),
            threshold,
            cooldown,
            opens_total: AtomicU64::new(0),
        }
    }

    fn slot(&self, method: Method) -> std::sync::MutexGuard<'_, BreakerSlot> {
        self.slots[method_index(method)]
            .lock()
            .expect("breaker slot poisoned")
    }

    /// Gate an incoming request for `method`.
    pub fn admit(&self, method: Method) -> Admission {
        if self.threshold == 0 {
            return Admission::Allowed;
        }
        let mut slot = self.slot(method);
        match slot.state {
            BreakerState::Closed => Admission::Allowed,
            BreakerState::Open => {
                let elapsed = slot.opened_at.map(|t| t.elapsed()).unwrap_or_default();
                if elapsed >= self.cooldown {
                    slot.state = BreakerState::HalfOpen;
                    slot.probe_in_flight = true;
                    Admission::Probe
                } else {
                    let left = self.cooldown.saturating_sub(elapsed);
                    Admission::Rejected {
                        retry_after_secs: (left.as_secs_f64().ceil() as u64).max(1),
                    }
                }
            }
            BreakerState::HalfOpen => {
                if slot.probe_in_flight {
                    Admission::Rejected {
                        retry_after_secs: 1,
                    }
                } else {
                    slot.probe_in_flight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Record a healthy solve for `method`: closes a half-open circuit,
    /// resets the failure streak.
    pub fn record_success(&self, method: Method) {
        if self.threshold == 0 {
            return;
        }
        let mut slot = self.slot(method);
        slot.state = BreakerState::Closed;
        slot.consecutive_failures = 0;
        slot.opened_at = None;
        slot.probe_in_flight = false;
    }

    /// Record an outcome that is neither a health signal nor a failure
    /// (a user error: bad query, unsupported fragment). Releases a
    /// half-open probe without moving the state, so the next request
    /// probes again; never touches the failure streak.
    pub fn record_neutral(&self, method: Method) {
        if self.threshold == 0 {
            return;
        }
        self.slot(method).probe_in_flight = false;
    }

    /// Record a breaker-relevant failure for `method` (a rung panic or
    /// an internal error — never a user error).
    pub fn record_failure(&self, method: Method) {
        if self.threshold == 0 {
            return;
        }
        let mut slot = self.slot(method);
        match slot.state {
            BreakerState::HalfOpen => {
                // The probe failed: straight back to Open, fresh cooldown.
                slot.state = BreakerState::Open;
                slot.opened_at = Some(Instant::now());
                slot.probe_in_flight = false;
                self.opens_total.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Open => {}
            BreakerState::Closed => {
                slot.consecutive_failures += 1;
                if slot.consecutive_failures >= self.threshold {
                    slot.state = BreakerState::Open;
                    slot.opened_at = Some(Instant::now());
                    self.opens_total.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    pub fn state(&self, method: Method) -> BreakerState {
        self.slot(method).state
    }

    /// True iff any circuit is not closed (the server is degraded).
    pub fn any_open(&self) -> bool {
        BREAKER_METHODS
            .iter()
            .any(|&m| self.state(m) != BreakerState::Closed)
    }

    /// Prometheus text for the breaker series, appended to the main
    /// metrics render.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(
            "# HELP qrel_circuit_state Circuit state per method (0=closed, 1=open, 2=half-open).\n",
        );
        out.push_str("# TYPE qrel_circuit_state gauge\n");
        for &m in &BREAKER_METHODS {
            out.push_str(&format!(
                "qrel_circuit_state{{method=\"{}\"}} {}\n",
                m.name(),
                self.state(m).as_gauge()
            ));
        }
        out.push_str("# HELP qrel_circuit_opens_total Circuit open transitions.\n");
        out.push_str("# TYPE qrel_circuit_opens_total counter\n");
        out.push_str(&format!(
            "qrel_circuit_opens_total {}\n",
            self.opens_total.load(Ordering::Relaxed)
        ));
        out
    }
}

/// The server-level health state surfaced in `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    Healthy,
    Degraded,
    Draining,
}

impl HealthState {
    pub fn as_str(self) -> &'static str {
        match self {
            // "ok" (not "healthy") is the wire value existing monitors
            // already match on.
            HealthState::Healthy => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Draining => "draining",
        }
    }

    /// healthy → degraded → draining; draining dominates.
    pub fn derive(shutting_down: bool, any_circuit_open: bool) -> HealthState {
        if shutting_down {
            HealthState::Draining
        } else if any_circuit_open {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        }
    }
}

/// Sliding-window drain-rate estimator: counts events (connections a
/// worker picked up) in per-second ring buckets, so the recent rate is
/// the sum over the last few full seconds. Lock-free; staleness is
/// handled by re-zeroing a bucket the first time its second comes
/// around again.
#[derive(Debug)]
pub struct RateEstimator {
    /// `buckets[sec % WINDOW]` = (sec, count) packed as two u32s worth
    /// of info in two atomics.
    seconds: [AtomicU64; Self::WINDOW],
    counts: [AtomicU64; Self::WINDOW],
    epoch: Instant,
}

impl Default for RateEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RateEstimator {
    const WINDOW: usize = 8;

    pub fn new() -> Self {
        RateEstimator {
            seconds: Default::default(),
            counts: Default::default(),
            epoch: Instant::now(),
        }
    }

    fn now_sec(&self) -> u64 {
        // 1-based so second 0 never collides with the empty-bucket
        // sentinel, and the first wall-clock second is a full bucket.
        self.epoch.elapsed().as_secs() + 1
    }

    /// Record one drained connection.
    pub fn record(&self) {
        let sec = self.now_sec();
        let i = (sec % Self::WINDOW as u64) as usize;
        if self.seconds[i].swap(sec, Ordering::Relaxed) != sec {
            // First event of this bucket's new second: restart its count.
            // (A racing recorder may lose one increment; the estimate
            // only feeds a clamped hint, so that is fine.)
            self.counts[i].store(0, Ordering::Relaxed);
        }
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Events per second over the last full window seconds (excluding
    /// the current, partial second).
    pub fn per_second(&self) -> f64 {
        let now = self.now_sec();
        let mut total = 0u64;
        let mut span = 0u64;
        for i in 0..Self::WINDOW {
            let sec = self.seconds[i].load(Ordering::Relaxed);
            if sec != 0 && sec < now && now - sec <= Self::WINDOW as u64 {
                total += self.counts[i].load(Ordering::Relaxed);
                span = span.max(now - sec);
            }
        }
        if span == 0 {
            return 0.0;
        }
        total as f64 / span as f64
    }
}

/// The `Retry-After` a backpressure rejection should carry: total
/// backlog (connections waiting in the admission queue *plus* jobs
/// queued or running in the scheduler — both must drain before a
/// retried request gets a worker) over the recent drain rate, floored
/// by assuming at least the worker pool drains in parallel, clamped to
/// `1..=30` seconds.
pub fn compute_retry_after(
    queue_depth: u64,
    sched_backlog: u64,
    drain_per_sec: f64,
    workers: usize,
) -> u64 {
    let rate = drain_per_sec.max(workers.max(1) as f64 * 0.1).max(0.1);
    let secs = ((queue_depth + sched_backlog + 1) as f64 / rate).ceil() as u64;
    secs.clamp(1, 30)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let b = Breakers::new(3, Duration::from_millis(30));
        assert_eq!(b.admit(Method::Exact), Admission::Allowed);
        b.record_failure(Method::Exact);
        b.record_failure(Method::Exact);
        assert_eq!(b.state(Method::Exact), BreakerState::Closed);
        b.record_failure(Method::Exact);
        assert_eq!(b.state(Method::Exact), BreakerState::Open);
        assert!(matches!(
            b.admit(Method::Exact),
            Admission::Rejected { retry_after_secs } if retry_after_secs >= 1
        ));
        // Other methods are unaffected.
        assert_eq!(b.admit(Method::Fptras), Admission::Allowed);
        // After the cooldown, exactly one probe goes through; the rest
        // keep being rejected until it reports.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(b.admit(Method::Exact), Admission::Probe);
        assert!(matches!(b.admit(Method::Exact), Admission::Rejected { .. }));
        // Probe success closes the circuit.
        b.record_success(Method::Exact);
        assert_eq!(b.state(Method::Exact), BreakerState::Closed);
        assert_eq!(b.admit(Method::Exact), Admission::Allowed);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = Breakers::new(1, Duration::from_millis(10));
        b.record_failure(Method::NaiveMc);
        assert_eq!(b.state(Method::NaiveMc), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.admit(Method::NaiveMc), Admission::Probe);
        b.record_failure(Method::NaiveMc);
        assert_eq!(b.state(Method::NaiveMc), BreakerState::Open);
        assert!(matches!(
            b.admit(Method::NaiveMc),
            Admission::Rejected { .. }
        ));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = Breakers::new(3, Duration::from_secs(5));
        b.record_failure(Method::Auto);
        b.record_failure(Method::Auto);
        b.record_success(Method::Auto);
        b.record_failure(Method::Auto);
        b.record_failure(Method::Auto);
        assert_eq!(b.state(Method::Auto), BreakerState::Closed);
    }

    #[test]
    fn zero_threshold_disables_breakers() {
        let b = Breakers::new(0, Duration::from_secs(1));
        for _ in 0..100 {
            b.record_failure(Method::Exact);
        }
        assert_eq!(b.admit(Method::Exact), Admission::Allowed);
        assert!(!b.any_open());
    }

    #[test]
    fn breaker_metrics_render() {
        let b = Breakers::new(1, Duration::from_secs(60));
        b.record_failure(Method::Padding);
        let text = b.render();
        assert!(
            text.contains("qrel_circuit_state{method=\"padding\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("qrel_circuit_state{method=\"exact\"} 0"),
            "{text}"
        );
        assert!(text.contains("qrel_circuit_opens_total 1"), "{text}");
    }

    #[test]
    fn health_state_machine() {
        assert_eq!(HealthState::derive(false, false), HealthState::Healthy);
        assert_eq!(HealthState::derive(false, true), HealthState::Degraded);
        assert_eq!(HealthState::derive(true, false), HealthState::Draining);
        assert_eq!(HealthState::derive(true, true), HealthState::Draining);
        assert_eq!(HealthState::Healthy.as_str(), "ok");
    }

    #[test]
    fn retry_after_scales_with_depth_and_rate() {
        // Shallow queue, healthy drain: bottom of the clamp.
        assert_eq!(compute_retry_after(0, 0, 50.0, 4), 1);
        // Deep queue, slow drain: grows, but clamps at 30.
        let deep = compute_retry_after(64, 0, 2.0, 4);
        assert!((30..=33).contains(&deep), "deep = {deep}");
        assert_eq!(compute_retry_after(10_000, 0, 0.0, 1), 30);
        // Moderate backlog lands strictly between the clamp ends.
        let mid = compute_retry_after(20, 0, 4.0, 4);
        assert!((2..=10).contains(&mid), "mid = {mid}");
    }

    #[test]
    fn retry_after_folds_scheduler_backlog_and_stays_clamped() {
        // Same connection backlog, deeper scheduler backlog: the hint
        // must not shrink, and a heavy backlog must grow it.
        let base = compute_retry_after(4, 0, 4.0, 4);
        let loaded = compute_retry_after(4, 40, 4.0, 4);
        assert!(loaded >= base, "loaded {loaded} < base {base}");
        assert!(loaded > base, "scheduler backlog had no effect");
        // Every corner of the input space respects the 1..=30 clamp.
        for &conn in &[0u64, 1, 64, 10_000] {
            for &jobs in &[0u64, 1, 100, 1_000_000] {
                for &rate in &[0.0, 0.5, 50.0] {
                    for &workers in &[1usize, 4, 32] {
                        let secs = compute_retry_after(conn, jobs, rate, workers);
                        assert!((1..=30).contains(&secs), "retry_after = {secs}");
                    }
                }
            }
        }
    }

    #[test]
    fn rate_estimator_counts_recent_seconds() {
        let r = RateEstimator::new();
        assert_eq!(r.per_second(), 0.0);
        for _ in 0..10 {
            r.record();
        }
        // Events land in the current (partial) second, which per_second
        // excludes; wait for the second boundary.
        std::thread::sleep(Duration::from_millis(1100));
        assert!(r.per_second() > 0.0);
    }
}
