//! The server: accept loop, bounded admission queue, worker pool,
//! request routing, and graceful shutdown.
//!
//! ## Threading model
//!
//! One acceptor thread (the caller of [`Server::run`]) plus a fixed
//! pool of `workers` threads. The acceptor does no parsing: it accepts
//! a connection and offers it to the bounded admission queue. When the
//! queue is full it writes a `429 Too Many Requests` (with
//! `Retry-After`) and closes — backpressure instead of unbounded
//! buffering. Workers pop connections, read the request under a read
//! deadline (a stalled client trips `408`, it cannot wedge the worker
//! forever), route it, and write the response.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or SIGTERM/ctrl-c once
//! [`install_shutdown_signals`] ran) flips a flag the acceptor checks
//! between accepts: it stops accepting, closes the queue, and workers
//! drain what was already admitted — nobody is killed mid-solve. If the
//! drain outlives `shutdown_grace`, the server-wide
//! [`CancelToken`] wired into every in-flight [`Budget`] is cancelled
//! and the solves unwind cooperatively through the latched-trip
//! machinery, still producing (degraded) responses.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qrel_budget::{Budget, CancelToken, QrelError};
use qrel_eval::FoQuery;
use qrel_prob::{UnreliableDatabase, UnreliableDatabaseSpec};
use qrel_runtime::Solver;
use serde::Value;
use serde_json::ParseLimits;

use crate::cache::{fnv1a, CacheKey, ResultCache};
use crate::health::{compute_retry_after, Admission, Breakers, HealthState, RateEstimator};
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::protocol::{
    error_body, is_deterministic, parse_solve_request, solve_response_body, DbRef,
};

/// Server configuration. `Default` gives sane local-service values;
/// the CLI maps its flags onto the fields it exposes.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (printed by the
    /// CLI, exposed via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it get `429`.
    pub queue_cap: usize,
    /// Result-cache capacity in bytes (`0` disables caching).
    pub cache_bytes: usize,
    /// Maximum request-body size; larger declarations get `413`.
    pub max_body_bytes: usize,
    /// Per-connection read deadline; slower clients get `408`.
    pub read_timeout: Duration,
    /// Budget deadline applied when a request carries no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Threads each solve may use. Defaults to 1: under concurrent load
    /// parallelism comes from the worker pool, not from intra-solve
    /// sharding (the answer is identical either way — see `qrel_par`).
    pub solver_threads: usize,
    /// How long a graceful shutdown waits for in-flight solves before
    /// cancelling their budgets.
    pub shutdown_grace: Duration,
    /// Dataset files (`UnreliableDatabaseSpec` JSON) loaded at startup
    /// and addressable by file stem in `/v1/solve`.
    pub preload: Vec<PathBuf>,
    /// Consecutive breaker-relevant failures (rung panics, internal
    /// errors) that open a method's circuit. `0` disables breakers.
    pub breaker_threshold: u32,
    /// How long an open circuit rejects before admitting a probe.
    pub breaker_cooldown: Duration,
    /// Scan period of the stuck-worker watchdog; a solve that overstays
    /// its deadline by more than one period is hard-cancelled.
    pub watchdog_period: Duration,
    /// Master switch for the self-healing plane (breakers, watchdog,
    /// solver rung retries). `false` is the E16 "before" arm.
    pub self_heal: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_cap: 64,
            cache_bytes: 64 * 1024 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            default_timeout_ms: 30_000,
            solver_threads: 1,
            shutdown_grace: Duration::from_secs(30),
            preload: Vec::new(),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(2),
            watchdog_period: Duration::from_millis(250),
            self_heal: true,
        }
    }
}

/// How [`Server::run`] ended, for the CLI's exit code: a clean drain
/// exits 0, a forced one (grace expired or the watchdog had to kill
/// work) exits 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// The drain outlived `shutdown_grace` and in-flight budgets were
    /// hard-cancelled.
    pub forced: bool,
    /// Solves hard-cancelled by the stuck-worker watchdog over the
    /// server's lifetime.
    pub watchdog_cancels: u64,
}

/// Errors surfaced while bringing the server up.
#[derive(Debug)]
pub enum ServeError {
    Io(std::io::Error),
    /// A preload file failed to read, parse, or build.
    BadDataset {
        path: PathBuf,
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::BadDataset { path, reason } => {
                write!(f, "cannot preload {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A dataset preloaded at startup: the built model plus its canonical
/// hash (computed once, shared by every request that names it).
struct PreparedDb {
    ud: UnreliableDatabase,
    hash: u64,
}

/// Canonical database hash: FNV-1a over the *re-serialized* spec, so
/// an inline spec and a preloaded dataset describing the same model
/// share one cache entry regardless of field order or formatting in
/// the original JSON.
pub fn canonical_db_hash(ud: &UnreliableDatabase) -> u64 {
    let spec = UnreliableDatabaseSpec::from_model(ud);
    let text = serde_json::to_string(&spec).expect("spec serialization is infallible");
    fnv1a(text.as_bytes())
}

// ---------------------------------------------------------------------------
// Admission queue

struct QueueInner {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

/// Bounded MPMC connection queue with close-and-drain semantics.
struct AdmissionQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    cap: usize,
}

impl AdmissionQueue {
    fn new(cap: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(QueueInner {
                conns: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Offer a connection; `Err` hands it back when the queue is full
    /// or closed. `Ok` carries the new depth for the gauge.
    fn try_push(&self, conn: TcpStream) -> Result<usize, TcpStream> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.conns.len() >= self.cap {
            return Err(conn);
        }
        inner.conns.push_back(conn);
        let depth = inner.conns.len();
        drop(inner);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Block until a connection is available or the queue is closed
    /// *and* drained. Returns the connection plus the remaining depth.
    fn pop(&self) -> Option<(TcpStream, usize)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = inner.conns.pop_front() {
                return Some((conn, inner.conns.len()));
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("queue poisoned");
        }
    }

    /// Refuse new work; workers drain what is queued, then exit.
    fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.cv.notify_all();
    }

    /// Current backlog (for the dynamic `Retry-After`).
    fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").conns.len()
    }
}

// ---------------------------------------------------------------------------
// In-flight registry (stuck-worker watchdog)

/// One in-flight solve: its private cancel token and the instant past
/// which the watchdog considers it stuck. The hard deadline is the
/// request's budget deadline plus one watchdog period of slack — a
/// solve legitimately degrading *at* its deadline is never shot.
struct InFlight {
    token: CancelToken,
    hard_deadline: Instant,
}

#[derive(Default)]
struct InFlightRegistry {
    entries: Mutex<HashMap<u64, InFlight>>,
    next_id: AtomicU64,
}

impl InFlightRegistry {
    fn register(&self, token: CancelToken, hard_deadline: Instant) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("inflight registry poisoned")
            .insert(id, InFlight {
                token,
                hard_deadline,
            });
        id
    }

    fn deregister(&self, id: u64) {
        self.entries
            .lock()
            .expect("inflight registry poisoned")
            .remove(&id);
    }

    /// Cancel (and forget) every entry whose hard deadline has passed.
    /// Returns how many were shot.
    fn cancel_overdue(&self, now: Instant) -> u64 {
        let mut entries = self.entries.lock().expect("inflight registry poisoned");
        let overdue: Vec<u64> = entries
            .iter()
            .filter(|(_, f)| now >= f.hard_deadline)
            .map(|(&id, _)| id)
            .collect();
        for id in &overdue {
            if let Some(f) = entries.remove(id) {
                f.token.cancel();
            }
        }
        overdue.len() as u64
    }

    /// Cancel every entry (the drain-escalation path).
    fn cancel_all(&self) {
        let entries = self.entries.lock().expect("inflight registry poisoned");
        for f in entries.values() {
            f.token.cancel();
        }
    }
}

/// RAII guard: deregisters the solve when it returns by any path
/// (including a panic unwinding through `catch_unwind`).
struct InFlightGuard<'a> {
    registry: &'a InFlightRegistry,
    id: u64,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.registry.deregister(self.id);
    }
}

// ---------------------------------------------------------------------------
// Shared state & handle

struct Shared {
    config: ServerConfig,
    datasets: HashMap<String, PreparedDb>,
    cache: ResultCache,
    metrics: Metrics,
    queue: AdmissionQueue,
    shutdown: AtomicBool,
    /// Per-method circuit breakers (no-ops when `self_heal` is off).
    breakers: Breakers,
    /// Recent connection drain rate, for the dynamic `Retry-After`.
    drain_rate: RateEstimator,
    /// Every in-flight solve's private cancel token, scanned by the
    /// stuck-worker watchdog and swept by the drain escalation.
    inflight: InFlightRegistry,
    /// Latched by the drain escalation: solves admitted after it start
    /// out cancelled instead of burning the remaining grace.
    hard_cancelled: AtomicBool,
}

/// Cloneable control handle: request shutdown, inspect metrics.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin a graceful shutdown: stop accepting, drain, return from
    /// [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Cancel every in-flight request budget immediately (the
    /// escalation a graceful drain falls back to after the grace
    /// period). Solves admitted afterwards start out cancelled.
    pub fn hard_cancel(&self) {
        self.shared.hard_cancelled.store(true, Ordering::SeqCst);
        self.shared.inflight.cancel_all();
    }

    /// Rendered Prometheus metrics (same text `/metrics` serves).
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared)
    }

    /// The current `/healthz` status string: `ok`, `degraded`, or
    /// `draining`.
    pub fn health(&self) -> &'static str {
        HealthState::derive(
            self.shared.shutdown.load(Ordering::SeqCst),
            self.shared.breakers.any_open(),
        )
        .as_str()
    }

    /// Solves hard-cancelled by the stuck-worker watchdog so far.
    pub fn watchdog_cancels(&self) -> u64 {
        self.shared.metrics.watchdog_cancel_count()
    }
}

/// The full `/metrics` text: core registry, breaker series, and the
/// cache's poison-detection counter.
fn render_metrics(shared: &Shared) -> String {
    let mut text = shared.metrics.render();
    text.push_str(&shared.breakers.render());
    text.push_str(
        "# HELP qrel_cache_poison_detected_total Cache replies rejected by checksum.\n",
    );
    text.push_str("# TYPE qrel_cache_poison_detected_total counter\n");
    text.push_str(&format!(
        "qrel_cache_poison_detected_total {}\n",
        shared.cache.poison_detected_count()
    ));
    text
}

// ---------------------------------------------------------------------------
// Signal handling (std-only: link directly against libc's `signal`)

#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set from the signal handler; polled by the accept loop.
    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        // A store on an atomic is async-signal-safe.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // libc's signal(2); std already links libc on unix, so this
        // adds no dependency.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: registering an async-signal-safe handler for two
        // standard termination signals.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

/// Register SIGINT/SIGTERM handlers that trigger a graceful shutdown
/// of every server whose accept loop is running in this process.
pub fn install_shutdown_signals() {
    signals::install();
}

// ---------------------------------------------------------------------------
// Server

pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and preload datasets. The server is not
    /// serving until [`Server::run`] is called.
    pub fn bind(config: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let mut datasets = HashMap::new();
        for path in &config.preload {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            let prepared = Self::load_dataset(path).map_err(|reason| ServeError::BadDataset {
                path: path.clone(),
                reason,
            })?;
            datasets.insert(name, prepared);
        }
        let cache = ResultCache::new(config.cache_bytes);
        let queue = AdmissionQueue::new(config.queue_cap.max(1));
        let breakers = Breakers::new(
            if config.self_heal {
                config.breaker_threshold
            } else {
                0
            },
            config.breaker_cooldown,
        );
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                datasets,
                cache,
                metrics: Metrics::new(),
                queue,
                shutdown: AtomicBool::new(false),
                breakers,
                drain_rate: RateEstimator::new(),
                inflight: InFlightRegistry::default(),
                hard_cancelled: AtomicBool::new(false),
            }),
        })
    }

    fn load_dataset(path: &PathBuf) -> Result<PreparedDb, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let spec: UnreliableDatabaseSpec =
            serde_json::from_str(&text).map_err(|e| format!("bad spec JSON: {e}"))?;
        let ud = spec.build().map_err(|e| format!("invalid spec: {e}"))?;
        let hash = canonical_db_hash(&ud);
        Ok(PreparedDb { ud, hash })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Names of the preloaded datasets, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.datasets.keys().cloned().collect();
        names.sort();
        names
    }

    /// Serve until shutdown is requested, then drain and return a
    /// [`DrainReport`] saying whether the drain was clean or forced.
    pub fn run(self) -> Result<DrainReport, ServeError> {
        let shared = self.shared;
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qrel-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        // Stuck-worker watchdog: scans the in-flight registry every
        // period and hard-cancels any solve past its hard deadline
        // (budget deadline + one period of slack). Cancellation is
        // cooperative — the solve unwinds through the budget's latched
        // trip and still answers — but the watchdog guarantees no
        // request outlives its deadline by more than ~one period, even
        // when an injected stall wedges a rung.
        let stopped = Arc::new(AtomicBool::new(false));
        let watchdog = if shared.config.self_heal && !shared.config.watchdog_period.is_zero() {
            let shared = Arc::clone(&shared);
            let stopped = Arc::clone(&stopped);
            Some(
                std::thread::Builder::new()
                    .name("qrel-watchdog".into())
                    .spawn(move || {
                        while !stopped.load(Ordering::SeqCst) {
                            std::thread::sleep(shared.config.watchdog_period);
                            let shot = shared.inflight.cancel_overdue(Instant::now());
                            for _ in 0..shot {
                                shared.metrics.record_watchdog_cancel();
                            }
                        }
                    })
                    .expect("spawn watchdog"),
            )
        } else {
            None
        };

        // Accept loop. The listener is non-blocking so the shutdown
        // flag (local or signal-driven) is observed within ~1ms. The
        // idle poll is the floor on cold-connection latency (E14
        // measured ~5ms p50 with a 5ms poll — entirely this sleep), so
        // it is kept tight; 1k wakeups/s when idle is noise.
        loop {
            if shared.shutdown.load(Ordering::SeqCst) || signals::requested() {
                break;
            }
            match self.listener.accept() {
                Ok((conn, _peer)) => match shared.queue.try_push(conn) {
                    Ok(depth) => shared.metrics.set_queue_depth(depth),
                    Err(conn) => reject_connection(&shared, conn),
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => {
                    // A failed accept (e.g. a reset mid-handshake) is
                    // the client's problem; keep serving.
                }
            }
        }

        // Drain: refuse new work, let workers finish what was admitted.
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.queue.close();
        let cancels_before_drain = shared.metrics.watchdog_cancel_count();
        let (drained_tx, drained_rx) = std::sync::mpsc::channel::<()>();
        let forced = Arc::new(AtomicBool::new(false));
        let grace_guard = {
            let shared = Arc::clone(&shared);
            let forced = Arc::clone(&forced);
            let grace = shared.config.shutdown_grace;
            std::thread::spawn(move || {
                // Disconnected means the drain finished (the sender is
                // dropped after the workers join); only an actual
                // timeout escalates.
                if matches!(
                    drained_rx.recv_timeout(grace),
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout)
                ) {
                    // The drain is overstaying its welcome: cancel every
                    // in-flight budget; solves unwind via the latched
                    // trip cause and still answer (degraded).
                    forced.store(true, Ordering::SeqCst);
                    shared.hard_cancelled.store(true, Ordering::SeqCst);
                    shared.inflight.cancel_all();
                }
            })
        };
        for w in workers {
            let _ = w.join();
        }
        drop(drained_tx); // disconnects the grace guard's recv — drain done
        let _ = grace_guard.join();
        stopped.store(true, Ordering::SeqCst);
        if let Some(w) = watchdog {
            let _ = w.join();
        }
        // "Forced" means the drain itself was not clean: the grace
        // period expired, or the watchdog had to shoot in-flight work
        // while draining. Watchdog cancels during normal serving are
        // routine self-healing and do not taint the exit code.
        let watchdog_cancels = shared.metrics.watchdog_cancel_count();
        Ok(DrainReport {
            forced: forced.load(Ordering::SeqCst) || watchdog_cancels > cancels_before_drain,
            watchdog_cancels,
        })
    }
}

/// Write the backpressure response in the acceptor thread (bounded
/// work: a fixed ~120-byte write with a short timeout).
fn reject_connection(shared: &Shared, mut conn: TcpStream) {
    use std::io::Read;
    shared.metrics.record_rejected();
    shared.metrics.record_request("other", 429);
    let _ = conn.set_write_timeout(Some(Duration::from_millis(200)));
    // Retry-After tracks reality: current backlog over the recently
    // observed drain rate, clamped to 1..=30s — a deep queue behind a
    // slow drain tells clients to back off longer than a blip does.
    let retry_after = compute_retry_after(
        shared.queue.depth() as u64,
        shared.drain_rate.per_second(),
        shared.config.workers,
    );
    let resp = Response::json(429, error_body("admission queue full; retry shortly"))
        .with_header("Retry-After", retry_after.to_string());
    write_response(&mut conn, &resp);
    // Signal end-of-response, then drain what the client already sent:
    // closing a socket with unread bytes in the receive buffer sends
    // RST, which can destroy the 429 before the client reads it. Both
    // the timeout and the iteration count are small so a trickling
    // client cannot pin the acceptor.
    let _ = conn.shutdown(std::net::Shutdown::Write);
    let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    for _ in 0..8 {
        match conn.read(&mut sink) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((mut conn, depth)) = shared.queue.pop() {
        shared.metrics.set_queue_depth(depth);
        shared.drain_rate.record();
        // Chaos hook: a slow/stalled client connection. Sits in front
        // of `read_request` so the read deadline machinery is what gets
        // exercised, exactly as a real trickling client would.
        if qrel_faults::armed() {
            qrel_faults::maybe_stall(qrel_faults::points::SERVE_CONN_SLOW_READ);
        }
        let req = match read_request(
            &mut conn,
            shared.config.max_body_bytes,
            shared.config.read_timeout,
        ) {
            Ok(req) => req,
            Err(err) => {
                let (status, message) = match &err {
                    HttpError::BadRequest(m) => (400, m.clone()),
                    HttpError::PayloadTooLarge { .. } => (413, err.to_string()),
                    HttpError::Timeout => (408, err.to_string()),
                    HttpError::Io(_) => continue, // socket died; nothing to say
                };
                shared.metrics.record_request("other", status);
                write_response(&mut conn, &Response::json(status, error_body(&message)));
                continue;
            }
        };
        // A panicking route must never take the worker down with it.
        let path = req.path.clone();
        let resp = catch_unwind(AssertUnwindSafe(|| {
            // Chaos hook: a worker panicking mid-request. Inside the
            // catch so the contract under test is "panic becomes a
            // tagged 500, worker survives".
            if qrel_faults::armed() {
                qrel_faults::maybe_panic(qrel_faults::points::SERVE_WORKER_PANIC);
            }
            route(shared, &req)
        }))
        .unwrap_or_else(|_| Response::json(500, error_body("internal error")));
        shared.metrics.record_request(&path, resp.status);
        write_response(&mut conn, &resp);
    }
}

fn route(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => Response::text(200, render_metrics(shared)),
        ("POST", "/v1/solve") => solve(shared, &req.body),
        (_, "/healthz") | (_, "/metrics") | (_, "/v1/solve") => {
            Response::json(405, error_body("method not allowed"))
        }
        _ => Response::json(404, error_body("not found")),
    }
}

fn healthz(shared: &Shared) -> Response {
    let mut names: Vec<&String> = shared.datasets.keys().collect();
    names.sort();
    let state = HealthState::derive(
        shared.shutdown.load(Ordering::SeqCst),
        shared.breakers.any_open(),
    );
    let body = Value::Object(vec![
        ("status".into(), Value::Str(state.as_str().into())),
        (
            "datasets".into(),
            Value::Array(names.into_iter().map(|n| Value::Str(n.clone())).collect()),
        ),
        ("workers".into(), Value::Int(shared.config.workers as i128)),
        (
            "queue_cap".into(),
            Value::Int(shared.config.queue_cap as i128),
        ),
    ]);
    Response::json(
        200,
        serde_json::to_string(&body)
            .expect("value serialization is infallible")
            .into_bytes(),
    )
}

fn solve(shared: &Shared, body: &[u8]) -> Response {
    let limits = ParseLimits {
        max_depth: 64,
        max_bytes: shared.config.max_body_bytes,
    };
    let req = match parse_solve_request(body, limits) {
        Ok(r) => r,
        Err(m) => return Response::json(400, error_body(&m)),
    };

    // Resolve the database: preloaded (hash already computed) or
    // inline (built and canonically hashed per request).
    let (ud, db_hash): (&UnreliableDatabase, u64);
    let built;
    match &req.db {
        DbRef::Named(name) => match shared.datasets.get(name) {
            Some(p) => {
                ud = &p.ud;
                db_hash = p.hash;
            }
            None => {
                let mut known: Vec<&String> = shared.datasets.keys().collect();
                known.sort();
                return Response::json(
                    400,
                    error_body(&format!("unknown dataset {name:?} (loaded: {known:?})")),
                );
            }
        },
        DbRef::Inline(spec) => match spec.build() {
            Ok(b) => {
                built = b;
                db_hash = canonical_db_hash(&built);
                ud = &built;
            }
            Err(e) => return Response::json(400, error_body(&format!("invalid spec: {e}"))),
        },
    }

    // Canonicalize the query exactly the way the CLI does, so the same
    // logical query always maps to the same cache key.
    let formula = match qrel_logic::parser::parse_formula(&req.query) {
        Ok(f) => f,
        Err(e) => return Response::json(400, error_body(&format!("bad query: {e}"))),
    };
    let free = match &req.free {
        Some(f) => f.clone(),
        None => formula.free_vars(),
    };
    {
        let mut sorted = free.clone();
        sorted.sort();
        if sorted != formula.free_vars() {
            return Response::json(
                400,
                error_body(&format!(
                    "\"free\" {:?} does not match the query's free variables {:?}",
                    free,
                    formula.free_vars()
                )),
            );
        }
    }
    let key = CacheKey {
        db_hash,
        query: formula.to_string(),
        free: free.clone(),
        method: req.method.to_string(),
        eps_bits: crate::cache::canonical_f64_bits(req.eps),
        delta_bits: crate::cache::canonical_f64_bits(req.delta),
        seed: req.seed,
    };

    if let Some(hit) = shared.cache.get(&key) {
        shared.metrics.record_cache(true);
        return Response::json(200, hit.as_ref().clone())
            .with_header("X-Qrel-Cache", "hit")
            .with_header("X-Qrel-Elapsed-Us", "0");
    }
    shared.metrics.record_cache(false);

    // Circuit breaker: while this method's rung is known-bad, refuse up
    // front with 503 instead of burning a worker on it. (Cache hits are
    // served above regardless — they involve no solve.)
    if let Admission::Rejected { retry_after_secs } = shared.breakers.admit(req.method) {
        return Response::json(
            503,
            error_body(&format!(
                "circuit open for method \"{}\"; retry shortly",
                req.method.name()
            )),
        )
        .with_header("Retry-After", retry_after_secs.to_string());
    }

    let timeout = req.timeout_ms.unwrap_or(shared.config.default_timeout_ms);
    // Each request gets a private cancel token so the stuck-worker
    // watchdog (and the drain escalation) can shoot exactly the solves
    // that are overdue, not everything in flight.
    let token = CancelToken::new();
    if shared.hard_cancelled.load(Ordering::SeqCst) {
        token.cancel();
    }
    let budget = Budget::with_deadline_from_now(Duration::from_millis(timeout))
        .with_cancel_token(token.clone());
    let mut solver = Solver::new()
        .with_method(req.method)
        .with_accuracy(req.eps, req.delta)
        .with_seed(req.seed)
        .with_threads(shared.config.solver_threads);
    if !shared.config.self_heal {
        solver = solver.with_rung_retries(0);
    }
    let query = FoQuery::with_free_order(formula, free);
    let started = Instant::now();
    let hard_deadline =
        started + Duration::from_millis(timeout) + shared.config.watchdog_period;
    let inflight_id = shared.inflight.register(token, hard_deadline);
    let _inflight = InFlightGuard {
        registry: &shared.inflight,
        id: inflight_id,
    };
    match solver.solve(ud, &query, &budget) {
        Ok(report) => {
            let elapsed = started.elapsed();
            shared.metrics.record_solve(report.method, elapsed);
            // Breaker accounting: a healed rung panic still answers
            // correctly, but a flapping rung is flapping — it counts
            // toward opening the circuit.
            if report.trace.iter().any(|s| s.note.contains("panicked")) {
                shared.breakers.record_failure(req.method);
            } else {
                shared.breakers.record_success(req.method);
            }
            let bytes = solve_response_body(&report);
            if is_deterministic(&report) {
                shared.cache.insert(key, Arc::new(bytes.clone()));
            }
            Response::json(200, bytes)
                .with_header("X-Qrel-Cache", "miss")
                .with_header("X-Qrel-Elapsed-Us", elapsed.as_micros().to_string())
        }
        // The solver errors only when *nothing* produced an estimate —
        // an unsupported fragment, a hard eval failure, or a budget too
        // small to start. The request was well-formed JSON, so: 422.
        Err(e) => {
            if matches!(e, QrelError::RungPanic(_)) {
                shared.breakers.record_failure(req.method);
            } else {
                // Deadline trips, cancellations, and user-fault errors
                // say nothing about the rung's health.
                shared.breakers.record_neutral(req.method);
            }
            Response::json(422, error_body(&e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Raw one-shot HTTP client against a local server.
    fn http(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> (u16, Vec<(String, String)>, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        conn.write_all(req.as_bytes()).unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let headers = lines
            .filter_map(|l| l.split_once(": "))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        (status, headers, body.to_string())
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn boot(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..config
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || {
            server.run().unwrap();
        });
        (addr, handle, join)
    }

    fn boot_drain(
        config: ServerConfig,
    ) -> (
        SocketAddr,
        ServerHandle,
        std::thread::JoinHandle<DrainReport>,
    ) {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..config
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        (addr, handle, join)
    }

    fn example_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            preload: vec![PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../data/example.json"
            ))],
            ..ServerConfig::default()
        }
    }

    #[test]
    fn healthz_and_metrics_respond() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(example_config());
        let (status, _, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("example"), "{body}");
        let (status, _, text) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(text.contains("qrel_http_requests_total"), "{text}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn solve_and_cache_round_trip() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(example_config());
        let body = r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact"}"#;
        let (s1, h1, b1) = http(addr, "POST", "/v1/solve", body);
        assert_eq!(s1, 200, "{b1}");
        assert_eq!(header(&h1, "X-Qrel-Cache"), Some("miss"));
        assert!(b1.contains("\"exact\":"), "{b1}");
        let (s2, h2, b2) = http(addr, "POST", "/v1/solve", body);
        assert_eq!(s2, 200);
        assert_eq!(header(&h2, "X-Qrel-Cache"), Some("hit"));
        assert_eq!(b1, b2, "cached body must be byte-identical");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn unknown_paths_and_methods() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(example_config());
        assert_eq!(http(addr, "GET", "/nope", "").0, 404);
        assert_eq!(http(addr, "GET", "/v1/solve", "").0, 405);
        assert_eq!(http(addr, "POST", "/healthz", "").0, 405);
        assert_eq!(http(addr, "POST", "/v1/solve", "not json").0, 400);
        handle.shutdown();
        join.join().unwrap();
    }

    /// A request guaranteed to occupy a worker for ~`timeout_ms`: a
    /// forced exact enumeration over 2^28 worlds cannot finish, so its
    /// deadline trips and the ladder answers with a partial (200).
    fn slow_solve_body(timeout_ms: u64, seed: u64) -> String {
        let names: Vec<String> = (0..28).map(|i| format!("\"e{i}\"")).collect();
        let tuples: Vec<String> = (0..28).map(|i| format!("[{i}]")).collect();
        let errors: Vec<String> = (0..28)
            .map(|i| format!("{{\"relation\":\"S\",\"tuple\":[{i}],\"mu\":\"1/2\"}}"))
            .collect();
        format!(
            "{{\"db\":{{\"database\":{{\"vocab\":{{\"symbols\":[{{\"name\":\"S\",\"arity\":1}}]}},\
             \"universe\":{{\"names\":[{}]}},\
             \"relations\":[{{\"arity\":1,\"tuples\":[{}]}}]}},\
             \"model\":\"full\",\"errors\":[{}]}},\
             \"query\":\"exists x. S(x)\",\"method\":\"exact\",\
             \"timeout_ms\":{timeout_ms},\"seed\":{seed}}}",
            names.join(","),
            tuples.join(","),
            errors.join(",")
        )
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_requests() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        // One worker so the in-flight request is unambiguous.
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            ..example_config()
        });
        let slow =
            std::thread::spawn(move || http(addr, "POST", "/v1/solve", &slow_solve_body(400, 0)));
        std::thread::sleep(Duration::from_millis(100));
        handle.shutdown();
        // The in-flight request still completes with an answer.
        let (status, _, body) = slow.join().unwrap();
        assert_eq!(status, 200, "{body}");
        join.join().unwrap();
    }

    #[test]
    fn backpressure_rejects_with_429_when_saturated() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            queue_cap: 1,
            ..example_config()
        });
        // Six near-simultaneous slow solves against one worker and one
        // queue slot: at most two are admitted before the first solve's
        // ~800ms deadline trips, so several must be turned away with
        // 429 regardless of accept interleaving.
        let clients: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    http(addr, "POST", "/v1/solve", &slow_solve_body(800, i))
                })
            })
            .collect();
        let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let rejected = results.iter().filter(|(s, _, _)| *s == 429).count();
        let served = results.iter().filter(|(s, _, _)| *s == 200).count();
        assert!(
            rejected >= 1,
            "never saw a 429 under saturation: {results:?}"
        );
        assert!(served >= 1, "nothing was served: {results:?}");
        for (status, headers, _) in &results {
            if *status == 429 {
                // Retry-After is computed from queue depth and drain
                // rate, not hardcoded; the contract is the clamp range.
                let secs: u64 = header(headers, "Retry-After")
                    .expect("429 carries Retry-After")
                    .parse()
                    .expect("Retry-After is an integer");
                assert!((1..=30).contains(&secs), "Retry-After = {secs}");
            }
        }
        handle.shutdown();
        join.join().unwrap();
        // The rejection is visible in the metrics text.
        assert!(handle.metrics_text().contains("qrel_rejected_total"));
        assert!(handle.shared.metrics.rejected_count() >= 1);
    }

    #[test]
    fn worker_panic_fault_becomes_tagged_500_and_worker_survives() {
        let plan = qrel_faults::FaultPlan::new(0xFA17).with_rule(
            qrel_faults::points::SERVE_WORKER_PANIC,
            1.0,
            0,
            2, // exactly the first two requests panic
        );
        let guard = plan.arm();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            ..example_config()
        });
        // Both injected panics come back as explicit 500s...
        assert_eq!(http(addr, "GET", "/healthz", "").0, 500);
        assert_eq!(http(addr, "GET", "/healthz", "").0, 500);
        // ...and the single worker is still alive to serve the third.
        let (status, _, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");
        drop(guard);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn persistent_rung_panics_open_the_circuit_and_healthz_degrades() {
        let plan = qrel_faults::FaultPlan::new(0xB12E)
            .with_rule(&qrel_faults::points::rung_panic("exact"), 1.0, 0, 0);
        let _guard = plan.arm();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60),
            ..example_config()
        });
        // Retries are exhausted by the always-on panic fault, the exact
        // rung has no fallback under a forced method, so each request
        // fails; two of them trip the breaker.
        let body = r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact"}"#;
        for want_seed in 0..2u64 {
            let body = format!(
                r#"{{"dataset":"example","query":"exists x. Admin(x)","method":"exact","seed":{want_seed}}}"#
            );
            let (status, _, resp) = http(addr, "POST", "/v1/solve", &body);
            assert_eq!(status, 422, "{resp}");
            assert!(resp.contains("panicked"), "{resp}");
        }
        // Circuit open: refused up front with 503 + Retry-After.
        let (status, headers, resp) = http(addr, "POST", "/v1/solve", body);
        assert_eq!(status, 503, "{resp}");
        assert!(header(&headers, "Retry-After").is_some());
        assert!(resp.contains("circuit open"), "{resp}");
        // The health surface reflects it.
        let (_, _, health) = http(addr, "GET", "/healthz", "");
        assert!(health.contains("\"status\":\"degraded\""), "{health}");
        assert_eq!(handle.health(), "degraded");
        // Other methods are unaffected by the exact rung's circuit.
        let (status, _, resp) = http(
            addr,
            "POST",
            "/v1/solve",
            r#"{"dataset":"example","query":"exists x. Admin(x)","method":"mc"}"#,
        );
        assert_eq!(status, 200, "{resp}");
        let metrics = handle.metrics_text();
        assert!(
            metrics.contains("qrel_circuit_state{method=\"exact\"} 1"),
            "{metrics}"
        );
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn watchdog_hard_cancels_a_stuck_solve() {
        // A 900ms injected stall inside the exact rung wedges the solve
        // well past its 100ms deadline; the watchdog (50ms period) must
        // shoot it, and the request still gets an answer instead of
        // hanging until the stall ends... the stall itself is not
        // interruptible, but the budget observes the cancellation at
        // the next probe, so the response arrives right after.
        let plan = qrel_faults::FaultPlan::new(0x57A1)
            .with_rule(&qrel_faults::points::rung_stall("exact"), 1.0, 900, 1);
        let _guard = plan.arm();
        let (addr, handle, join) = boot_drain(ServerConfig {
            workers: 1,
            watchdog_period: Duration::from_millis(50),
            ..example_config()
        });
        let started = Instant::now();
        let (status, _, body) = http(
            addr,
            "POST",
            "/v1/solve",
            r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact","timeout_ms":100}"#,
        );
        let elapsed = started.elapsed();
        // The answer is an explicit outcome (degraded 200 or tagged
        // 422), never a hang: the stall bounds the response time.
        assert!(status == 200 || status == 422, "{status}: {body}");
        assert!(
            elapsed < Duration::from_secs(5),
            "request took {elapsed:?}"
        );
        assert!(handle.watchdog_cancels() >= 1, "watchdog never fired");
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.watchdog_cancels, handle.watchdog_cancels());
        // The cancel happened during serving, not during the drain.
        assert!(!report.forced, "{report:?}");
    }

    #[test]
    fn clean_drain_reports_unforced() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot_drain(example_config());
        assert_eq!(http(addr, "GET", "/healthz", "").0, 200);
        handle.shutdown();
        let report = join.join().unwrap();
        assert!(!report.forced);
        assert_eq!(report.watchdog_cancels, 0);
    }

    #[test]
    fn self_heal_off_disables_breakers_and_watchdog() {
        let plan = qrel_faults::FaultPlan::new(0x0FF)
            .with_rule(&qrel_faults::points::rung_panic("exact"), 1.0, 0, 0);
        let _guard = plan.arm();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            self_heal: false,
            breaker_threshold: 1,
            ..example_config()
        });
        // Every request fails (no retries), but the breaker never
        // opens: the "before" arm keeps failing loudly instead.
        let body = r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact"}"#;
        for _ in 0..3 {
            let (status, _, resp) = http(addr, "POST", "/v1/solve", body);
            assert_eq!(status, 422, "{resp}");
        }
        let (_, _, health) = http(addr, "GET", "/healthz", "");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        handle.shutdown();
        join.join().unwrap();
    }
}
