//! The server: accept loop, bounded admission queue, worker pool,
//! request routing, and graceful shutdown.
//!
//! ## Threading model
//!
//! One acceptor thread (the caller of [`Server::run`]) plus a fixed
//! pool of `workers` threads. The acceptor does no parsing: it accepts
//! a connection and offers it to the bounded admission queue. When the
//! queue is full it writes a `429 Too Many Requests` (with
//! `Retry-After`) and closes — backpressure instead of unbounded
//! buffering. Workers pop connections, read the request under a read
//! deadline (a stalled client trips `408`, it cannot wedge the worker
//! forever), route it, and write the response.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or SIGTERM/ctrl-c once
//! [`install_shutdown_signals`] ran) flips a flag the acceptor checks
//! between accepts: it stops accepting, closes the queue, and workers
//! drain what was already admitted — nobody is killed mid-solve. If the
//! drain outlives `shutdown_grace`, the server-wide
//! [`CancelToken`] wired into every in-flight [`Budget`] is cancelled
//! and the solves unwind cooperatively through the latched-trip
//! machinery, still producing (degraded) responses.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use qrel_budget::{Budget, CancelToken, QrelError};
use qrel_eval::FoQuery;
use qrel_prob::{UnreliableDatabase, UnreliableDatabaseSpec};
use qrel_runtime::{Method, ProgressHook, Solver};
use qrel_sched::{CancelOutcome, JobCtx, JobState, Priority, SchedConfig, Scheduler, SubmitError};
use qrel_store::{live_fact_count, Mutation, Store, StoreError};
use serde::Value;
use serde_json::ParseLimits;

use crate::cache::{fnv1a, CacheKey, PlanCache, PlanStatus, ResultCache};
use crate::health::{compute_retry_after, Admission, Breakers, HealthState, RateEstimator};
use crate::http::{read_request, write_response, HttpError, Request, Response};
use crate::metrics::{render_sched, Metrics};
use crate::protocol::{
    error_body, is_deterministic, job_accepted_body, job_list_body, job_status_body,
    parse_solve_request, solve_response_body, DbRef, ErrorEnvelope,
};

/// Server configuration. `Default` gives sane local-service values;
/// the CLI maps its flags onto the fields it exposes.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (printed by the
    /// CLI, exposed via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it get `429`.
    pub queue_cap: usize,
    /// Result-cache capacity in bytes (`0` disables caching).
    pub cache_bytes: usize,
    /// Maximum request-body size; larger declarations get `413`.
    pub max_body_bytes: usize,
    /// Per-connection read deadline; slower clients get `408`.
    pub read_timeout: Duration,
    /// Budget deadline applied when a request carries no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Threads each solve may use. Defaults to 1: under concurrent load
    /// parallelism comes from the worker pool, not from intra-solve
    /// sharding (the answer is identical either way — see `qrel_par`).
    pub solver_threads: usize,
    /// How long a graceful shutdown waits for in-flight solves before
    /// cancelling their budgets.
    pub shutdown_grace: Duration,
    /// Dataset files (`UnreliableDatabaseSpec` JSON) loaded at startup
    /// and addressable by file stem in `/v1/solve`.
    pub preload: Vec<PathBuf>,
    /// Consecutive breaker-relevant failures (rung panics, internal
    /// errors) that open a method's circuit. `0` disables breakers.
    pub breaker_threshold: u32,
    /// How long an open circuit rejects before admitting a probe.
    pub breaker_cooldown: Duration,
    /// Scan period of the stuck-worker watchdog; a solve that overstays
    /// its deadline by more than one period is hard-cancelled.
    pub watchdog_period: Duration,
    /// Master switch for the self-healing plane (breakers, watchdog,
    /// solver rung retries). `false` is the E16 "before" arm.
    pub self_heal: bool,
    /// Scheduler worker threads executing solves. `0` means "match
    /// `workers`", so the synchronous facade can never wait on a job no
    /// scheduler worker is free to run.
    pub sched_workers: usize,
    /// Maximum queued+running jobs one tenant may hold; submits beyond
    /// it get `429`.
    pub per_tenant_cap: usize,
    /// Scheduler workers that skip `low`-priority jobs, so a flood of
    /// batch work cannot starve short interactive solves.
    pub reserved_workers: usize,
    /// Terminal job records retained for `GET /v1/jobs/{id}` replay
    /// before the oldest are evicted.
    pub job_retain_cap: usize,
    /// Directory of a persistent [`qrel_store::Store`]. When set, its
    /// datasets are served alongside the preloads and the fact-mutation
    /// endpoints (`POST`/`DELETE /v1/datasets/{name}/facts`) go live.
    pub store: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            queue_cap: 64,
            cache_bytes: 64 * 1024 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            default_timeout_ms: 30_000,
            solver_threads: 1,
            shutdown_grace: Duration::from_secs(30),
            preload: Vec::new(),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(2),
            watchdog_period: Duration::from_millis(250),
            self_heal: true,
            sched_workers: 0,
            per_tenant_cap: 64,
            reserved_workers: 1,
            job_retain_cap: 1024,
            store: None,
        }
    }
}

/// How [`Server::run`] ended, for the CLI's exit code: a clean drain
/// exits 0, a forced one (grace expired or the watchdog had to kill
/// work) exits 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// The drain outlived `shutdown_grace` and in-flight budgets were
    /// hard-cancelled.
    pub forced: bool,
    /// Solves hard-cancelled by the stuck-worker watchdog over the
    /// server's lifetime.
    pub watchdog_cancels: u64,
}

/// Errors surfaced while bringing the server up.
#[derive(Debug)]
pub enum ServeError {
    Io(std::io::Error),
    /// A preload file failed to read, parse, or build.
    BadDataset {
        path: PathBuf,
        reason: String,
    },
    /// The `--store` directory failed to open or a stored dataset
    /// failed to rebuild.
    BadStore {
        path: PathBuf,
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::BadDataset { path, reason } => {
                write!(f, "cannot preload {}: {reason}", path.display())
            }
            ServeError::BadStore { path, reason } => {
                write!(f, "cannot open store {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A live dataset: the built model plus its canonical hash (computed
/// when the dataset is loaded or mutated, shared by every request that
/// names it) and the live-fact count `/healthz` reports. Preloads keep
/// the spec-serialization hash; store-backed datasets carry the store's
/// incrementally maintained db-hash, so a fact mutation moves exactly
/// this dataset's cache keys and nobody else's.
struct PreparedDb {
    ud: Arc<UnreliableDatabase>,
    hash: u64,
    facts: u64,
    /// `true` when the dataset lives in the persistent store (and is
    /// therefore mutable via `/v1/datasets/{name}/facts`).
    stored: bool,
}

/// Canonical database hash: FNV-1a over the *re-serialized* spec, so
/// an inline spec and a preloaded dataset describing the same model
/// share one cache entry regardless of field order or formatting in
/// the original JSON.
pub fn canonical_db_hash(ud: &UnreliableDatabase) -> u64 {
    let spec = UnreliableDatabaseSpec::from_model(ud);
    let text = serde_json::to_string(&spec).expect("spec serialization is infallible");
    fnv1a(text.as_bytes())
}

// ---------------------------------------------------------------------------
// Admission queue

struct QueueInner {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

/// Bounded MPMC connection queue with close-and-drain semantics.
struct AdmissionQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    cap: usize,
}

impl AdmissionQueue {
    fn new(cap: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(QueueInner {
                conns: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap,
        }
    }

    /// Offer a connection; `Err` hands it back when the queue is full
    /// or closed. `Ok` carries the new depth for the gauge.
    fn try_push(&self, conn: TcpStream) -> Result<usize, TcpStream> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.conns.len() >= self.cap {
            return Err(conn);
        }
        inner.conns.push_back(conn);
        let depth = inner.conns.len();
        drop(inner);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Block until a connection is available or the queue is closed
    /// *and* drained. Returns the connection plus the remaining depth.
    fn pop(&self) -> Option<(TcpStream, usize)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = inner.conns.pop_front() {
                return Some((conn, inner.conns.len()));
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).expect("queue poisoned");
        }
    }

    /// Refuse new work; workers drain what is queued, then exit.
    fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.cv.notify_all();
    }

    /// Current backlog (for the dynamic `Retry-After`).
    fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").conns.len()
    }
}

// ---------------------------------------------------------------------------
// In-flight registry (stuck-worker watchdog)

/// One in-flight solve: its private cancel token and the instant past
/// which the watchdog considers it stuck. The hard deadline is the
/// request's budget deadline plus one watchdog period of slack — a
/// solve legitimately degrading *at* its deadline is never shot.
struct InFlight {
    token: CancelToken,
    hard_deadline: Instant,
}

#[derive(Default)]
struct InFlightRegistry {
    entries: Mutex<HashMap<u64, InFlight>>,
    next_id: AtomicU64,
}

impl InFlightRegistry {
    fn register(&self, token: CancelToken, hard_deadline: Instant) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("inflight registry poisoned")
            .insert(
                id,
                InFlight {
                    token,
                    hard_deadline,
                },
            );
        id
    }

    fn deregister(&self, id: u64) {
        self.entries
            .lock()
            .expect("inflight registry poisoned")
            .remove(&id);
    }

    /// Cancel (and forget) every entry whose hard deadline has passed.
    /// Returns how many were shot.
    fn cancel_overdue(&self, now: Instant) -> u64 {
        let mut entries = self.entries.lock().expect("inflight registry poisoned");
        let overdue: Vec<u64> = entries
            .iter()
            .filter(|(_, f)| now >= f.hard_deadline)
            .map(|(&id, _)| id)
            .collect();
        for id in &overdue {
            if let Some(f) = entries.remove(id) {
                f.token.cancel();
            }
        }
        overdue.len() as u64
    }

    /// Cancel every entry (the drain-escalation path).
    fn cancel_all(&self) {
        let entries = self.entries.lock().expect("inflight registry poisoned");
        for f in entries.values() {
            f.token.cancel();
        }
    }
}

/// RAII guard: deregisters the solve when it returns by any path
/// (including a panic unwinding through `catch_unwind`).
struct InFlightGuard<'a> {
    registry: &'a InFlightRegistry,
    id: u64,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.registry.deregister(self.id);
    }
}

// ---------------------------------------------------------------------------
// Solve jobs

/// The payload of one scheduled solve: everything [`execute_solve`]
/// needs, fully resolved at admission time so scheduler workers never
/// parse or validate anything.
struct SolveTask {
    ud: Arc<UnreliableDatabase>,
    query: FoQuery,
    method: Method,
    eps: f64,
    delta: f64,
    seed: u64,
    timeout_ms: u64,
    cache_key: CacheKey,
    /// The cached safe plan for this query/schema, when the plan cache
    /// had one. The solver's plan rung uses it instead of recompiling.
    plan: Option<Arc<qrel_plan::Plan>>,
}

/// The terminal outcome of a solve job: the exact HTTP `(status, body)`
/// the synchronous facade returns, stored once per job group and
/// replayed verbatim by every result fetch — bit-identical responses by
/// construction, coalesced duplicates included.
struct SolveOutcome {
    status: u16,
    body: Vec<u8>,
    /// `X-Qrel-Cache` header value ("hit" or "miss").
    cache: &'static str,
    elapsed_us: u64,
}

/// State the scheduler's executor needs. Kept in its own `Arc`,
/// separate from [`Shared`] (which owns the scheduler), so the executor
/// closure does not create an `Arc` cycle through the scheduler it runs
/// inside.
struct ExecCtx {
    cache: ResultCache,
    /// Compiled safe plans keyed by (query, schema) — db-independent,
    /// so fact mutations never touch it (unlike the result cache).
    plan_cache: PlanCache,
    metrics: Metrics,
    /// Per-method circuit breakers (no-ops when `self_heal` is off).
    breakers: Breakers,
    /// Every in-flight solve's private cancel token, scanned by the
    /// stuck-worker watchdog and swept by the drain escalation.
    inflight: InFlightRegistry,
    /// Latched by the drain escalation: solves admitted after it start
    /// out cancelled instead of burning the remaining grace.
    hard_cancelled: AtomicBool,
    solver_threads: usize,
    self_heal: bool,
    watchdog_period: Duration,
}

/// Run one solve job on a scheduler worker: budget wired to the job
/// group's cancel token, watchdog registration, breaker accounting, and
/// result caching — exactly what the old synchronous handler did
/// inline, so the facade's responses are unchanged.
fn execute_solve(ctx: &ExecCtx, task: &SolveTask, job: &JobCtx) -> SolveOutcome {
    let token = job.token().clone();
    if ctx.hard_cancelled.load(Ordering::SeqCst) {
        token.cancel();
    }
    let budget = Budget::with_deadline_from_now(Duration::from_millis(task.timeout_ms))
        .with_cancel_token(token.clone());
    let reporter = job.progress_reporter();
    let mut solver = Solver::new()
        .with_method(task.method)
        .with_accuracy(task.eps, task.delta)
        .with_seed(task.seed)
        .with_threads(ctx.solver_threads)
        .with_progress(ProgressHook::new(move |ev| {
            reporter(format!(
                "rung {}/{} {} attempt {}: {}",
                ev.rung + 1,
                ev.of,
                ev.method,
                ev.attempt,
                ev.note.as_deref().unwrap_or("started")
            ))
        }));
    if !ctx.self_heal {
        solver = solver.with_rung_retries(0);
    }
    if let Some(plan) = &task.plan {
        solver = solver.with_plan_hint(Arc::clone(plan));
    }
    let started = Instant::now();
    let hard_deadline = started + Duration::from_millis(task.timeout_ms) + ctx.watchdog_period;
    let inflight_id = ctx.inflight.register(token, hard_deadline);
    let _inflight = InFlightGuard {
        registry: &ctx.inflight,
        id: inflight_id,
    };
    match solver.solve(&task.ud, &task.query, &budget) {
        Ok(report) => {
            let elapsed = started.elapsed();
            ctx.metrics.record_solve(report.method, elapsed);
            // Breaker accounting: a healed rung panic still answers
            // correctly, but a flapping rung is flapping — it counts
            // toward opening the circuit.
            if report.trace.iter().any(|s| s.note.contains("panicked")) {
                ctx.breakers.record_failure(task.method);
            } else {
                ctx.breakers.record_success(task.method);
            }
            let bytes = solve_response_body(&report);
            if is_deterministic(&report) {
                ctx.cache
                    .insert(task.cache_key.clone(), Arc::new(bytes.clone()));
            }
            SolveOutcome {
                status: 200,
                body: bytes,
                cache: "miss",
                elapsed_us: elapsed.as_micros() as u64,
            }
        }
        // The solver errors only when *nothing* produced an estimate —
        // an unsupported fragment, a hard eval failure, or a budget too
        // small to start. The request was well-formed JSON, so: 422.
        Err(e) => {
            if matches!(e, QrelError::RungPanic(_)) {
                ctx.breakers.record_failure(task.method);
            } else {
                // Deadline trips, cancellations, and user-fault errors
                // say nothing about the rung's health.
                ctx.breakers.record_neutral(task.method);
            }
            SolveOutcome {
                status: 422,
                body: error_body(422, &e.to_string(), None),
                cache: "miss",
                elapsed_us: started.elapsed().as_micros() as u64,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shared state & handle

struct Shared {
    config: ServerConfig,
    /// Live dataset registry. A `RwLock` because fact mutations swap
    /// entries at runtime; solves only ever take the read side.
    datasets: RwLock<HashMap<String, PreparedDb>>,
    /// The persistent store behind the mutable datasets, when `--store`
    /// was given. Commits serialize on the mutex; reads go through the
    /// registry and never touch it.
    store: Option<Mutex<Store>>,
    queue: AdmissionQueue,
    shutdown: AtomicBool,
    /// Recent connection drain rate, for the dynamic `Retry-After`.
    drain_rate: RateEstimator,
    exec: Arc<ExecCtx>,
    /// The job scheduler every solve — synchronous facade or job API —
    /// runs on.
    sched: Scheduler<SolveTask, SolveOutcome>,
}

/// Cloneable control handle: request shutdown, inspect metrics.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin a graceful shutdown: stop accepting, drain, return from
    /// [`Server::run`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.close();
    }

    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Cancel every in-flight request budget immediately (the
    /// escalation a graceful drain falls back to after the grace
    /// period). Solves admitted afterwards start out cancelled.
    pub fn hard_cancel(&self) {
        self.shared
            .exec
            .hard_cancelled
            .store(true, Ordering::SeqCst);
        self.shared.exec.inflight.cancel_all();
        self.shared.sched.abort();
    }

    /// Rendered Prometheus metrics (same text `/metrics` serves).
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared)
    }

    /// The current `/healthz` status string: `ok`, `degraded`, or
    /// `draining`.
    pub fn health(&self) -> &'static str {
        HealthState::derive(
            self.shared.shutdown.load(Ordering::SeqCst),
            self.shared.exec.breakers.any_open(),
        )
        .as_str()
    }

    /// Solves hard-cancelled by the stuck-worker watchdog so far.
    pub fn watchdog_cancels(&self) -> u64 {
        self.shared.exec.metrics.watchdog_cancel_count()
    }
}

/// The full `/metrics` text: core registry, breaker series, scheduler
/// series, and the cache's poison-detection counter.
fn render_metrics(shared: &Shared) -> String {
    let mut text = shared.exec.metrics.render();
    text.push_str(&shared.exec.breakers.render());
    text.push_str(&render_sched(&shared.sched.stats()));
    text.push_str("# HELP qrel_cache_poison_detected_total Cache replies rejected by checksum.\n");
    text.push_str("# TYPE qrel_cache_poison_detected_total counter\n");
    text.push_str(&format!(
        "qrel_cache_poison_detected_total {}\n",
        shared.exec.cache.poison_detected_count()
    ));
    text.push_str("# HELP qrel_plan_cache_hits_total Safe plans served from the plan cache.\n");
    text.push_str("# TYPE qrel_plan_cache_hits_total counter\n");
    text.push_str(&format!(
        "qrel_plan_cache_hits_total {}\n",
        shared.exec.plan_cache.hit_count()
    ));
    text.push_str("# HELP qrel_plan_cache_misses_total Safe plans compiled fresh.\n");
    text.push_str("# TYPE qrel_plan_cache_misses_total counter\n");
    text.push_str(&format!(
        "qrel_plan_cache_misses_total {}\n",
        shared.exec.plan_cache.miss_count()
    ));
    text.push_str(
        "# HELP qrel_plan_unsafe_total Plan lookups that resolved to a provably unsafe query.\n",
    );
    text.push_str("# TYPE qrel_plan_unsafe_total counter\n");
    text.push_str(&format!(
        "qrel_plan_unsafe_total {}\n",
        shared.exec.plan_cache.unsafe_count()
    ));
    if let Some(store) = &shared.store {
        let store = store.lock().expect("store poisoned");
        for (name, help, value) in [
            (
                "qrel_store_segments",
                "Segment files referenced by the store manifest.",
                store.total_segments(),
            ),
            (
                "qrel_store_live_facts",
                "Facts in a non-default state across all stored datasets.",
                store.total_live_facts(),
            ),
            (
                "qrel_store_dead_rows",
                "Shadowed/tombstone segment rows compaction would reclaim.",
                store.total_dead_rows(),
            ),
            (
                "qrel_store_bytes",
                "Total bytes of referenced segment files.",
                store.total_bytes(),
            ),
            (
                "qrel_store_last_commit_ms",
                "Latency of the most recent store commit, in milliseconds.",
                store.last_commit_ms(),
            ),
        ] {
            text.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }
    }
    text
}

// ---------------------------------------------------------------------------
// Signal handling (std-only: link directly against libc's `signal`)

#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set from the signal handler; polled by the accept loop.
    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        // A store on an atomic is async-signal-safe.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // libc's signal(2); std already links libc on unix, so this
        // adds no dependency.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: registering an async-signal-safe handler for two
        // standard termination signals.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

/// Register SIGINT/SIGTERM handlers that trigger a graceful shutdown
/// of every server whose accept loop is running in this process.
pub fn install_shutdown_signals() {
    signals::install();
}

// ---------------------------------------------------------------------------
// Server

pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and preload datasets. The server is not
    /// serving until [`Server::run`] is called.
    pub fn bind(config: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let mut datasets = HashMap::new();
        for path in &config.preload {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string());
            let prepared = Self::load_dataset(path).map_err(|reason| ServeError::BadDataset {
                path: path.clone(),
                reason,
            })?;
            datasets.insert(name, prepared);
        }
        // Open (or initialize) the persistent store and register every
        // dataset it holds. Store-backed entries shadow a preload of the
        // same name: the durable copy is the source of truth.
        let store = match &config.store {
            Some(dir) => {
                let bad = |reason: String| ServeError::BadStore {
                    path: dir.clone(),
                    reason,
                };
                let store = if qrel_store::manifest::manifest_path(dir).exists() {
                    Store::open(dir).map_err(|e| bad(e.to_string()))?
                } else {
                    Store::init(dir).map_err(|e| bad(e.to_string()))?
                };
                for name in store.dataset_names() {
                    let mut ds = store.load(&name).map_err(|e| bad(e.to_string()))?;
                    let ud = ds.build().map_err(|e| bad(e.to_string()))?;
                    let entry = ds.entry();
                    datasets.insert(
                        name,
                        PreparedDb {
                            ud: Arc::new(ud),
                            hash: entry.db_hash,
                            facts: entry.live_facts,
                            stored: true,
                        },
                    );
                }
                Some(Mutex::new(store))
            }
            None => None,
        };
        let cache = ResultCache::new(config.cache_bytes);
        let queue = AdmissionQueue::new(config.queue_cap.max(1));
        let breakers = Breakers::new(
            if config.self_heal {
                config.breaker_threshold
            } else {
                0
            },
            config.breaker_cooldown,
        );
        let exec = Arc::new(ExecCtx {
            cache,
            plan_cache: PlanCache::new(),
            metrics: Metrics::new(),
            breakers,
            inflight: InFlightRegistry::default(),
            hard_cancelled: AtomicBool::new(false),
            solver_threads: config.solver_threads,
            self_heal: config.self_heal,
            watchdog_period: config.watchdog_period,
        });
        // `sched_workers == 0` mirrors the HTTP pool so a facade worker
        // always has a scheduler worker to wait on.
        let sched_workers = if config.sched_workers == 0 {
            config.workers.max(1)
        } else {
            config.sched_workers
        };
        let sched = {
            let exec = Arc::clone(&exec);
            Scheduler::new(
                SchedConfig {
                    workers: sched_workers,
                    per_tenant_cap: config.per_tenant_cap,
                    retain_cap: config.job_retain_cap,
                    reserved_workers: config.reserved_workers,
                },
                move |task: &SolveTask, job: &JobCtx| execute_solve(&exec, task, job),
            )
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                datasets: RwLock::new(datasets),
                store,
                queue,
                shutdown: AtomicBool::new(false),
                drain_rate: RateEstimator::new(),
                exec,
                sched,
            }),
        })
    }

    fn load_dataset(path: &PathBuf) -> Result<PreparedDb, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let spec: UnreliableDatabaseSpec =
            serde_json::from_str(&text).map_err(|e| format!("bad spec JSON: {e}"))?;
        let ud = spec.build().map_err(|e| format!("invalid spec: {e}"))?;
        let hash = canonical_db_hash(&ud);
        let facts = live_fact_count(&ud);
        Ok(PreparedDb {
            ud: Arc::new(ud),
            hash,
            facts,
            stored: false,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Names of the served datasets (preloaded and store-backed),
    /// sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let datasets = self.shared.datasets.read().expect("registry poisoned");
        let mut names: Vec<String> = datasets.keys().cloned().collect();
        names.sort();
        names
    }

    /// Serve until shutdown is requested, then drain and return a
    /// [`DrainReport`] saying whether the drain was clean or forced.
    pub fn run(self) -> Result<DrainReport, ServeError> {
        let shared = self.shared;
        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qrel-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        // Stuck-worker watchdog: scans the in-flight registry every
        // period and hard-cancels any solve past its hard deadline
        // (budget deadline + one period of slack). Cancellation is
        // cooperative — the solve unwinds through the budget's latched
        // trip and still answers — but the watchdog guarantees no
        // request outlives its deadline by more than ~one period, even
        // when an injected stall wedges a rung.
        let stopped = Arc::new(AtomicBool::new(false));
        let watchdog = if shared.config.self_heal && !shared.config.watchdog_period.is_zero() {
            let shared = Arc::clone(&shared);
            let stopped = Arc::clone(&stopped);
            Some(
                std::thread::Builder::new()
                    .name("qrel-watchdog".into())
                    .spawn(move || {
                        while !stopped.load(Ordering::SeqCst) {
                            std::thread::sleep(shared.config.watchdog_period);
                            let shot = shared.exec.inflight.cancel_overdue(Instant::now());
                            for _ in 0..shot {
                                shared.exec.metrics.record_watchdog_cancel();
                            }
                        }
                    })
                    .expect("spawn watchdog"),
            )
        } else {
            None
        };

        // Accept loop. The listener is non-blocking so the shutdown
        // flag (local or signal-driven) is observed within ~1ms. The
        // idle poll is the floor on cold-connection latency (E14
        // measured ~5ms p50 with a 5ms poll — entirely this sleep), so
        // it is kept tight; 1k wakeups/s when idle is noise.
        loop {
            if shared.shutdown.load(Ordering::SeqCst) || signals::requested() {
                break;
            }
            match self.listener.accept() {
                Ok((conn, _peer)) => match shared.queue.try_push(conn) {
                    Ok(depth) => shared.exec.metrics.set_queue_depth(depth),
                    Err(conn) => reject_connection(&shared, conn),
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => {
                    // A failed accept (e.g. a reset mid-handshake) is
                    // the client's problem; keep serving.
                }
            }
        }

        // Drain: refuse new work, let workers finish what was admitted.
        shared.shutdown.store(true, Ordering::SeqCst);
        shared.queue.close();
        let cancels_before_drain = shared.exec.metrics.watchdog_cancel_count();
        let (drained_tx, drained_rx) = std::sync::mpsc::channel::<()>();
        let forced = Arc::new(AtomicBool::new(false));
        let grace_guard = {
            let shared = Arc::clone(&shared);
            let forced = Arc::clone(&forced);
            let grace = shared.config.shutdown_grace;
            std::thread::spawn(move || {
                // Disconnected means the drain finished (the sender is
                // dropped after the workers join); only an actual
                // timeout escalates.
                if matches!(
                    drained_rx.recv_timeout(grace),
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout)
                ) {
                    // The drain is overstaying its welcome: cancel every
                    // in-flight budget and abort the scheduler; solves
                    // unwind via the latched trip cause and still answer
                    // (degraded).
                    forced.store(true, Ordering::SeqCst);
                    shared.exec.hard_cancelled.store(true, Ordering::SeqCst);
                    shared.exec.inflight.cancel_all();
                    shared.sched.abort();
                }
            })
        };
        for w in workers {
            let _ = w.join();
        }
        // Facade waiters are gone; drain what the job API enqueued.
        // Still under the grace guard: an overdue scheduler drain gets
        // aborted the same way an overdue connection drain does.
        shared.sched.close();
        shared.sched.join();
        drop(drained_tx); // disconnects the grace guard's recv — drain done
        let _ = grace_guard.join();
        stopped.store(true, Ordering::SeqCst);
        if let Some(w) = watchdog {
            let _ = w.join();
        }
        // "Forced" means the drain itself was not clean: the grace
        // period expired, or the watchdog had to shoot in-flight work
        // while draining. Watchdog cancels during normal serving are
        // routine self-healing and do not taint the exit code.
        let watchdog_cancels = shared.exec.metrics.watchdog_cancel_count();
        Ok(DrainReport {
            forced: forced.load(Ordering::SeqCst) || watchdog_cancels > cancels_before_drain,
            watchdog_cancels,
        })
    }
}

/// Write the backpressure response in the acceptor thread (bounded
/// work: a fixed ~120-byte write with a short timeout).
/// Dynamic `Retry-After`: connection backlog plus scheduler backlog
/// over the recently observed drain rate, clamped to 1..=30s — a deep
/// queue behind a slow drain tells clients to back off longer than a
/// blip does.
fn retry_after_hint(shared: &Shared) -> u64 {
    compute_retry_after(
        shared.queue.depth() as u64,
        shared.sched.backlog(),
        shared.drain_rate.per_second(),
        shared.config.workers,
    )
}

fn reject_connection(shared: &Shared, mut conn: TcpStream) {
    use std::io::Read;
    shared.exec.metrics.record_rejected();
    shared.exec.metrics.record_request("other", 429);
    let _ = conn.set_write_timeout(Some(Duration::from_millis(200)));
    let retry_after = retry_after_hint(shared);
    let resp = Response::json(
        429,
        error_body(
            429,
            "admission queue full; retry shortly",
            Some(retry_after),
        ),
    )
    .with_header("Retry-After", retry_after.to_string());
    write_response(&mut conn, &resp);
    // Signal end-of-response, then drain what the client already sent:
    // closing a socket with unread bytes in the receive buffer sends
    // RST, which can destroy the 429 before the client reads it. Both
    // the timeout and the iteration count are small so a trickling
    // client cannot pin the acceptor.
    let _ = conn.shutdown(std::net::Shutdown::Write);
    let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    for _ in 0..8 {
        match conn.read(&mut sink) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some((mut conn, depth)) = shared.queue.pop() {
        shared.exec.metrics.set_queue_depth(depth);
        shared.drain_rate.record();
        // Chaos hook: a slow/stalled client connection. Sits in front
        // of `read_request` so the read deadline machinery is what gets
        // exercised, exactly as a real trickling client would.
        if qrel_faults::armed() {
            qrel_faults::maybe_stall(qrel_faults::points::SERVE_CONN_SLOW_READ);
        }
        let req = match read_request(
            &mut conn,
            shared.config.max_body_bytes,
            shared.config.read_timeout,
        ) {
            Ok(req) => req,
            Err(err) => {
                let (status, message) = match &err {
                    HttpError::BadRequest(m) => (400, m.clone()),
                    HttpError::PayloadTooLarge { .. } => (413, err.to_string()),
                    HttpError::Timeout => (408, err.to_string()),
                    HttpError::Io(_) => continue, // socket died; nothing to say
                };
                shared.exec.metrics.record_request("other", status);
                write_response(
                    &mut conn,
                    &Response::json(status, error_body(status, &message, None)),
                );
                continue;
            }
        };
        // A panicking route must never take the worker down with it.
        let path = req.path.clone();
        let resp = catch_unwind(AssertUnwindSafe(|| {
            // Chaos hook: a worker panicking mid-request. Inside the
            // catch so the contract under test is "panic becomes a
            // tagged 500, worker survives".
            if qrel_faults::armed() {
                qrel_faults::maybe_panic(qrel_faults::points::SERVE_WORKER_PANIC);
            }
            route(shared, &req)
        }))
        .unwrap_or_else(|_| Response::json(500, error_body(500, "internal error", None)));
        shared.exec.metrics.record_request(&path, resp.status);
        write_response(&mut conn, &resp);
    }
}

fn route(shared: &Shared, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => Response::text(200, render_metrics(shared)),
        ("POST", "/v1/solve") => solve(shared, req),
        ("POST", "/v1/jobs") => job_submit(shared, req),
        ("GET", "/v1/jobs") => job_list(shared, req),
        (_, path) if path.starts_with("/v1/jobs/") => job_instance(shared, req),
        ("GET", "/v1/datasets") => datasets_list(shared),
        (_, path) if path.starts_with("/v1/datasets/") => dataset_facts(shared, req),
        (_, "/healthz")
        | (_, "/metrics")
        | (_, "/v1/solve")
        | (_, "/v1/jobs")
        | (_, "/v1/datasets") => Response::json(405, error_body(405, "method not allowed", None)),
        _ => Response::json(404, error_body(404, "not found", None)),
    }
}

fn healthz(shared: &Shared) -> Response {
    // The registry, not boot-time config, is the source of truth: a
    // dataset mutated (or created) after startup reports its live fact
    // count here.
    let datasets = shared.datasets.read().expect("registry poisoned");
    let mut entries: Vec<(&String, &PreparedDb)> = datasets.iter().collect();
    entries.sort_by_key(|(name, _)| name.as_str());
    let state = HealthState::derive(
        shared.shutdown.load(Ordering::SeqCst),
        shared.exec.breakers.any_open(),
    );
    let body = Value::Object(vec![
        ("status".into(), Value::Str(state.as_str().into())),
        (
            "datasets".into(),
            Value::Array(
                entries
                    .into_iter()
                    .map(|(name, p)| {
                        Value::Object(vec![
                            ("name".into(), Value::Str(name.clone())),
                            ("facts".into(), Value::Int(p.facts as i128)),
                            ("stored".into(), Value::Bool(p.stored)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("workers".into(), Value::Int(shared.config.workers as i128)),
        (
            "queue_cap".into(),
            Value::Int(shared.config.queue_cap as i128),
        ),
    ]);
    Response::json(
        200,
        serde_json::to_string(&body)
            .expect("value serialization is infallible")
            .into_bytes(),
    )
}

/// What admission produced for a solve-shaped request: a cache hit
/// served without touching the scheduler, or a fully resolved task
/// ready to enqueue (plus its coalesce key).
#[allow(clippy::large_enum_variant)] // short-lived; one per admitted request
enum Admitted {
    Hit(Arc<Vec<u8>>),
    Enqueue { task: SolveTask, key: u64 },
}

struct SolveAdmission {
    tenant: String,
    priority: Priority,
    outcome: Admitted,
    /// Plan-cache consultation outcome, when the method involves the
    /// plan rung and a solve is actually enqueued (`X-Qrel-Plan`).
    plan: Option<PlanStatus>,
}

/// Schema fingerprint for the plan-cache key: relation symbols in
/// declaration order, e.g. `"S/1,T/1,E/2"`. Declaration order is stable
/// for a given spec, and two schemas that differ in any name or arity
/// must not share plan entries (arity errors surface at eval time).
fn schema_fingerprint(ud: &UnreliableDatabase) -> String {
    ud.observed()
        .vocabulary()
        .symbols()
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// The shared front half of `POST /v1/solve` and `POST /v1/jobs`:
/// parse, resolve the database, canonicalize the query, consult the
/// cache and the breakers. `Err` carries the finished error response.
fn admit_solve(shared: &Shared, req: &Request) -> Result<SolveAdmission, Response> {
    let limits = ParseLimits {
        max_depth: 64,
        max_bytes: shared.config.max_body_bytes,
    };
    let sreq = match parse_solve_request(&req.body, limits) {
        Ok(r) => r,
        Err(m) => return Err(Response::json(400, error_body(400, &m, None))),
    };

    // Tenant scoping: the request body wins, then the `X-Qrel-Tenant`
    // header, then the shared default bucket.
    let tenant = match sreq
        .tenant
        .clone()
        .or_else(|| req.header("x-qrel-tenant").map(str::to_string))
    {
        Some(t) => {
            if t.is_empty() || t.len() > 64 {
                return Err(Response::json(
                    400,
                    error_body(400, "tenant must be 1..=64 characters", None),
                ));
            }
            t
        }
        None => "default".to_string(),
    };

    // Resolve the database: preloaded (hash already computed) or
    // inline (built and canonically hashed per request).
    let (ud, db_hash): (Arc<UnreliableDatabase>, u64) = match &sreq.db {
        DbRef::Named(name) => {
            let datasets = shared.datasets.read().expect("registry poisoned");
            match datasets.get(name) {
                Some(p) => (Arc::clone(&p.ud), p.hash),
                None => {
                    let mut known: Vec<&String> = datasets.keys().collect();
                    known.sort();
                    return Err(Response::json(
                        400,
                        error_body(
                            400,
                            &format!("unknown dataset {name:?} (loaded: {known:?})"),
                            None,
                        ),
                    ));
                }
            }
        }
        DbRef::Inline(spec) => match spec.build() {
            Ok(b) => {
                let hash = canonical_db_hash(&b);
                (Arc::new(b), hash)
            }
            Err(e) => {
                return Err(Response::json(
                    400,
                    error_body(400, &format!("invalid spec: {e}"), None),
                ))
            }
        },
    };

    // Canonicalize the query exactly the way the CLI does, so the same
    // logical query always maps to the same cache key.
    let formula = match qrel_logic::parser::parse_formula(&sreq.query) {
        Ok(f) => f,
        Err(e) => {
            return Err(Response::json(
                400,
                error_body(400, &format!("bad query: {e}"), None),
            ))
        }
    };
    let free = match &sreq.free {
        Some(f) => f.clone(),
        None => formula.free_vars(),
    };
    {
        let mut sorted = free.clone();
        sorted.sort();
        if sorted != formula.free_vars() {
            return Err(Response::json(
                400,
                error_body(
                    400,
                    &format!(
                        "\"free\" {:?} does not match the query's free variables {:?}",
                        free,
                        formula.free_vars()
                    ),
                    None,
                ),
            ));
        }
    }
    let cache_key = CacheKey {
        db_hash,
        query: formula.to_string(),
        free: free.clone(),
        method: sreq.method.to_string(),
        eps_bits: crate::cache::canonical_f64_bits(sreq.eps),
        delta_bits: crate::cache::canonical_f64_bits(sreq.delta),
        seed: sreq.seed,
    };

    if let Some(hit) = shared.exec.cache.get(&cache_key) {
        shared.exec.metrics.record_cache(true);
        return Ok(SolveAdmission {
            tenant,
            priority: sreq.priority,
            outcome: Admitted::Hit(hit),
            plan: None,
        });
    }
    shared.exec.metrics.record_cache(false);

    // Consult the plan cache for the methods whose ladder includes the
    // plan rung. Declines are cached too ("unsafe"); the solver then
    // skips the rung without recompiling.
    let (plan, plan_status) = if matches!(sreq.method, Method::Auto | Method::Plan) {
        let schema = schema_fingerprint(&ud);
        let (outcome, status) =
            shared
                .exec
                .plan_cache
                .get_or_compile(&cache_key.query, &schema, || qrel_plan::compile(&formula));
        (outcome.ok(), Some(status))
    } else {
        (None, None)
    };

    // Circuit breaker: while this method's rung is known-bad, refuse up
    // front with 503 instead of burning a scheduler slot on it. (Cache
    // hits are served above regardless — they involve no solve.)
    if let Admission::Rejected { retry_after_secs } = shared.exec.breakers.admit(sreq.method) {
        return Err(Response::json(
            503,
            error_body(
                503,
                &format!(
                    "circuit open for method \"{}\"; retry shortly",
                    sreq.method.name()
                ),
                Some(retry_after_secs),
            ),
        )
        .with_header("Retry-After", retry_after_secs.to_string()));
    }

    let timeout_ms = sreq.timeout_ms.unwrap_or(shared.config.default_timeout_ms);
    // The cache key's stable fingerprint doubles as the coalesce key:
    // cache-equivalent requests in flight at the same time share one
    // execution and one stored result.
    let key = cache_key.fingerprint();
    Ok(SolveAdmission {
        tenant,
        priority: sreq.priority,
        outcome: Admitted::Enqueue {
            task: SolveTask {
                ud,
                query: FoQuery::with_free_order(formula, free),
                method: sreq.method,
                eps: sreq.eps,
                delta: sreq.delta,
                seed: sreq.seed,
                timeout_ms,
                cache_key,
                plan,
            },
            key,
        },
        plan: plan_status,
    })
}

/// Map a scheduler submit rejection onto the wire: per-tenant
/// saturation is backpressure (429 + dynamic `Retry-After`), a draining
/// scheduler is 503.
fn submit_error_response(shared: &Shared, err: &SubmitError) -> Response {
    match err {
        SubmitError::QueueFull { .. } => {
            shared.exec.metrics.record_rejected();
            let retry_after = retry_after_hint(shared);
            Response::json(429, error_body(429, &err.to_string(), Some(retry_after)))
                .with_header("Retry-After", retry_after.to_string())
        }
        SubmitError::Closed => Response::json(503, error_body(503, &err.to_string(), Some(1)))
            .with_header("Retry-After", "1"),
    }
}

/// Replay a stored [`SolveOutcome`] as the HTTP response (used by the
/// facade and `GET /v1/jobs/{id}/result`). The body is the stored bytes
/// verbatim — bit-identical across fetches by construction.
fn outcome_response(outcome: &SolveOutcome) -> Response {
    Response::json(outcome.status, outcome.body.clone())
        .with_header("X-Qrel-Cache", outcome.cache)
        .with_header("X-Qrel-Elapsed-Us", outcome.elapsed_us.to_string())
}

/// `POST /v1/solve`: the synchronous facade over the job scheduler —
/// admit, enqueue (coalescing with any equivalent in-flight job), block
/// until the job is terminal. Existing clients see exactly the old
/// contract, bit-identical bodies included.
fn solve(shared: &Shared, req: &Request) -> Response {
    let admission = match admit_solve(shared, req) {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    let (task, key) = match admission.outcome {
        Admitted::Hit(hit) => {
            return Response::json(200, hit.as_ref().clone())
                .with_header("X-Qrel-Cache", "hit")
                .with_header("X-Qrel-Elapsed-Us", "0")
        }
        Admitted::Enqueue { task, key } => (task, key),
    };
    let sub = match shared
        .sched
        .submit(&admission.tenant, admission.priority, Some(key), task)
    {
        Ok(s) => s,
        Err(e) => return submit_error_response(shared, &e),
    };
    let with_plan_header = |resp: Response| match admission.plan {
        Some(status) => resp.with_header("X-Qrel-Plan", status.as_str()),
        None => resp,
    };
    match shared.sched.wait(&admission.tenant, sub.job_id, None) {
        Some(snap) => match snap.state {
            JobState::Done => with_plan_header(outcome_response(
                &snap.result.expect("done job has a result"),
            )),
            JobState::Failed => Response::json(
                500,
                error_body(500, snap.error.as_deref().unwrap_or("job failed"), None),
            ),
            JobState::Cancelled => Response::json(
                503,
                error_body(
                    503,
                    "job cancelled while the server was shutting down",
                    None,
                ),
            ),
            // `wait(.., None)` only returns on a terminal state.
            JobState::Queued | JobState::Running => {
                Response::json(500, error_body(500, "job wait returned early", None))
            }
        },
        None => Response::json(500, error_body(500, "job record lost", None)),
    }
}

/// Tenant scoping for job routes without a request body: the
/// `X-Qrel-Tenant` header or the shared default bucket.
fn header_tenant(req: &Request) -> String {
    match req.header("x-qrel-tenant") {
        Some(t) if !t.is_empty() => t.to_string(),
        _ => "default".to_string(),
    }
}

/// `POST /v1/jobs`: enqueue asynchronously and return a receipt. A
/// cache hit still creates a job record (born `done`, result stored) so
/// the client's poll loop is uniform.
fn job_submit(shared: &Shared, req: &Request) -> Response {
    let admission = match admit_solve(shared, req) {
        Ok(a) => a,
        Err(resp) => return resp,
    };
    let submitted = match admission.outcome {
        Admitted::Hit(hit) => shared.sched.submit_completed(
            &admission.tenant,
            admission.priority,
            Arc::new(SolveOutcome {
                status: 200,
                body: hit.as_ref().clone(),
                cache: "hit",
                elapsed_us: 0,
            }),
        ),
        Admitted::Enqueue { task, key } => {
            shared
                .sched
                .submit(&admission.tenant, admission.priority, Some(key), task)
        }
    };
    match submitted {
        Ok(sub) => {
            let state = shared
                .sched
                .status(&admission.tenant, sub.job_id)
                .map(|s| s.state.name())
                .unwrap_or("queued");
            Response::json(202, job_accepted_body(sub.job_id, sub.coalesced, state))
        }
        Err(e) => submit_error_response(shared, &e),
    }
}

/// `/v1/jobs/{id}` and `/v1/jobs/{id}/result`: parse the id, dispatch
/// on method and suffix.
fn job_instance(shared: &Shared, req: &Request) -> Response {
    let rest = &req.path["/v1/jobs/".len()..];
    let (id_text, want_result) = match rest.strip_suffix("/result") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let id: u64 = match id_text.parse() {
        Ok(id) => id,
        Err(_) => {
            return Response::json(
                404,
                error_body(404, &format!("no such job {id_text:?}"), None),
            )
        }
    };
    let tenant = header_tenant(req);
    match (req.method.as_str(), want_result) {
        ("GET", false) => job_status(shared, &tenant, id),
        ("GET", true) => job_result(shared, &tenant, id),
        ("DELETE", false) => job_cancel(shared, &tenant, id),
        _ => Response::json(405, error_body(405, "method not allowed", None)),
    }
}

/// The envelope embedded in a job-status body for terminal failures.
fn job_error_envelope(state: JobState, detail: Option<&str>) -> Option<ErrorEnvelope> {
    match state {
        JobState::Failed => Some(ErrorEnvelope {
            code: "internal".into(),
            message: detail.unwrap_or("job failed").into(),
            retryable: true,
            retry_after_ms: None,
        }),
        JobState::Cancelled => Some(ErrorEnvelope {
            code: "cancelled".into(),
            message: detail.unwrap_or("job cancelled").into(),
            retryable: false,
            retry_after_ms: None,
        }),
        _ => None,
    }
}

fn job_status(shared: &Shared, tenant: &str, id: u64) -> Response {
    let snap = match shared.sched.status(tenant, id) {
        Some(s) => s,
        None => return Response::json(404, error_body(404, &format!("no such job {id}"), None)),
    };
    let env = job_error_envelope(snap.state, snap.error.as_deref());
    let body = job_status_body(
        snap.id,
        &snap.tenant,
        snap.state.name(),
        snap.priority.name(),
        snap.coalesced,
        &snap.progress,
        snap.result.as_ref().map(|o| (o.status, o.body.as_slice())),
        env.as_ref(),
    );
    Response::json(200, body)
}

/// `GET /v1/jobs/{id}/result`: replay the stored outcome exactly as the
/// synchronous facade would have returned it.
fn job_result(shared: &Shared, tenant: &str, id: u64) -> Response {
    let snap = match shared.sched.status(tenant, id) {
        Some(s) => s,
        None => return Response::json(404, error_body(404, &format!("no such job {id}"), None)),
    };
    match snap.state {
        JobState::Done => outcome_response(&snap.result.expect("done job has a result")),
        JobState::Failed => Response::json(
            500,
            error_body(500, snap.error.as_deref().unwrap_or("job failed"), None),
        ),
        JobState::Cancelled => Response::json(
            409,
            error_body(409, snap.error.as_deref().unwrap_or("job cancelled"), None),
        ),
        JobState::Queued | JobState::Running => Response::json(
            409,
            ErrorEnvelope {
                code: "not_ready".into(),
                message: format!("job {id} is {}; poll again shortly", snap.state.name()),
                retryable: true,
                retry_after_ms: Some(1000),
            }
            .to_body(),
        )
        .with_header("Retry-After", "1"),
    }
}

fn job_cancel(shared: &Shared, tenant: &str, id: u64) -> Response {
    match shared.sched.cancel(tenant, id) {
        CancelOutcome::Cancelled => Response::json(200, job_accepted_body(id, false, "cancelled")),
        CancelOutcome::AlreadyTerminal(state) => Response::json(
            409,
            error_body(409, &format!("job {id} already {}", state.name()), None),
        ),
        CancelOutcome::NotFound => {
            Response::json(404, error_body(404, &format!("no such job {id}"), None))
        }
    }
}

fn job_list(shared: &Shared, req: &Request) -> Response {
    let tenant = header_tenant(req);
    let items: Vec<(u64, String, String, bool)> = shared
        .sched
        .list(&tenant)
        .into_iter()
        .map(|s| {
            (
                s.id,
                s.state.name().to_string(),
                s.priority.name().to_string(),
                s.coalesced,
            )
        })
        .collect();
    Response::json(200, job_list_body(&tenant, &items))
}

// ---------------------------------------------------------------------------
// Dataset routes (persistent store)

/// `GET /v1/datasets`: every served dataset with its live aggregates
/// and db-hash (hex, so clients can watch cache keys move).
fn datasets_list(shared: &Shared) -> Response {
    let datasets = shared.datasets.read().expect("registry poisoned");
    let mut entries: Vec<(&String, &PreparedDb)> = datasets.iter().collect();
    entries.sort_by_key(|(name, _)| name.as_str());
    let body = Value::Object(vec![(
        "datasets".into(),
        Value::Array(
            entries
                .into_iter()
                .map(|(name, p)| {
                    Value::Object(vec![
                        ("name".into(), Value::Str(name.clone())),
                        ("facts".into(), Value::Int(p.facts as i128)),
                        ("db_hash".into(), Value::Str(format!("{:016x}", p.hash))),
                        ("stored".into(), Value::Bool(p.stored)),
                    ])
                })
                .collect(),
        ),
    )]);
    Response::json(
        200,
        serde_json::to_string(&body)
            .expect("value serialization is infallible")
            .into_bytes(),
    )
}

/// Map a store failure onto the wire. Validation problems are the
/// client's (400), a missing dataset is 404, and I/O, corruption, or an
/// injected fault is a tagged 500 — retryable, since the commit left
/// the manifest untouched.
fn store_error_response(e: &StoreError) -> Response {
    let status = match e {
        StoreError::UnknownDataset(_) => 404,
        StoreError::DatasetExists(_) => 409,
        StoreError::UnknownRelation { .. }
        | StoreError::ArityMismatch { .. }
        | StoreError::ElementOutOfRange { .. }
        | StoreError::BadProbability { .. }
        | StoreError::NegativeFactError { .. } => 400,
        StoreError::Io(_) | StoreError::Corrupt(_) | StoreError::Injected(_) => 500,
    };
    Response::json(status, error_body(status, &e.to_string(), None))
}

/// Parse a fact-mutation batch: `{"facts":[{"relation":…,"tuple":[…],
/// "present":…,"mu":…}]}`. Deletes (`delete == true`) take only
/// `relation` and `tuple` and become Reset tombstones.
fn parse_fact_batch(
    body: &[u8],
    limits: ParseLimits,
    delete: bool,
) -> Result<Vec<Mutation>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value: Value =
        serde_json::from_str_with_limits(text, limits).map_err(|e| format!("bad JSON: {e}"))?;
    let obj = value
        .as_object()
        .ok_or_else(|| format!("body must be a JSON object, got {}", value.kind()))?;
    for (key, _) in obj {
        if key != "facts" {
            return Err(format!("unknown field {key:?}"));
        }
    }
    let items = value
        .get("facts")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "missing array field \"facts\"".to_string())?;
    let mut batch = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let fact = item
            .as_object()
            .ok_or_else(|| format!("facts[{i}] must be an object"))?;
        for (key, _) in fact {
            let known = match key.as_str() {
                "relation" | "tuple" => true,
                "present" | "mu" => !delete,
                _ => false,
            };
            if !known {
                return Err(format!("unknown field {key:?} in facts[{i}]"));
            }
        }
        let relation = item
            .get("relation")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("facts[{i}] needs a string \"relation\""))?;
        let raw_tuple = item
            .get("tuple")
            .and_then(|v| v.as_array())
            .ok_or_else(|| format!("facts[{i}] needs an array \"tuple\""))?;
        let mut tuple = Vec::with_capacity(raw_tuple.len());
        for v in raw_tuple {
            let e = match v {
                Value::Int(n) => u32::try_from(*n).ok(),
                _ => None,
            }
            .ok_or_else(|| {
                format!("facts[{i}].tuple elements must be small non-negative integers")
            })?;
            tuple.push(e);
        }
        if delete {
            batch.push(Mutation::reset(relation, tuple));
            continue;
        }
        let present = match item.get("present") {
            None => true,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(format!("facts[{i}].present must be a boolean")),
        };
        let mu = match item.get("mu") {
            None => "0",
            Some(Value::Str(s)) => s.as_str(),
            Some(_) => return Err(format!("facts[{i}].mu must be a string")),
        };
        batch.push(Mutation::set(relation, tuple, present, mu));
    }
    Ok(batch)
}

/// `POST`/`DELETE /v1/datasets/{name}/facts`: batched fact mutations
/// against the persistent store. The batch commits atomically (one
/// segment, one manifest publish); on success the in-memory registry
/// entry is swapped for a rebuild, so subsequent solves see the new
/// model under its new db-hash — old cache entries for this dataset
/// become unreachable, every other dataset's entries are untouched.
fn dataset_facts(shared: &Shared, req: &Request) -> Response {
    let rest = &req.path["/v1/datasets/".len()..];
    let name = match rest.strip_suffix("/facts") {
        Some(n) if !n.is_empty() && !n.contains('/') => n,
        _ => return Response::json(404, error_body(404, "not found", None)),
    };
    let delete = match req.method.as_str() {
        "POST" => false,
        "DELETE" => true,
        _ => return Response::json(405, error_body(405, "method not allowed", None)),
    };
    let store = match &shared.store {
        Some(s) => s,
        None => {
            return Response::json(
                409,
                error_body(
                    409,
                    "server has no persistent store; start it with --store to mutate facts",
                    None,
                ),
            )
        }
    };
    let limits = ParseLimits {
        max_depth: 64,
        max_bytes: shared.config.max_body_bytes,
    };
    let batch = match parse_fact_batch(&req.body, limits, delete) {
        Ok(b) => b,
        Err(m) => return Response::json(400, error_body(400, &m, None)),
    };
    // Commit and rebuild under the store lock so two racing batches
    // cannot interleave their registry swaps out of commit order.
    let (stats, ud) = {
        let mut store = store.lock().expect("store poisoned");
        let stats = match store.commit(name, &batch) {
            Ok(s) => s,
            Err(e) => return store_error_response(&e),
        };
        let ud = match store.load(name).and_then(|mut ds| ds.build()) {
            Ok(ud) => ud,
            Err(e) => return store_error_response(&e),
        };
        (stats, ud)
    };
    {
        let mut datasets = shared.datasets.write().expect("registry poisoned");
        datasets.insert(
            name.to_string(),
            PreparedDb {
                ud: Arc::new(ud),
                hash: stats.db_hash,
                facts: stats.live_facts,
                stored: true,
            },
        );
    }
    let body = Value::Object(vec![
        ("dataset".into(), Value::Str(name.to_string())),
        ("rows".into(), Value::Int(stats.rows as i128)),
        ("live_facts".into(), Value::Int(stats.live_facts as i128)),
        (
            "db_hash".into(),
            Value::Str(format!("{:016x}", stats.db_hash)),
        ),
        (
            "segment".into(),
            match &stats.segment {
                Some(s) => Value::Str(s.clone()),
                None => Value::Null,
            },
        ),
    ]);
    Response::json(
        200,
        serde_json::to_string(&body)
            .expect("value serialization is infallible")
            .into_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Raw one-shot HTTP client against a local server.
    fn http(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> (u16, Vec<(String, String)>, String) {
        http_with(addr, method, path, &[], body)
    }

    /// Like [`http`] but with extra request headers (tenant scoping).
    fn http_with(
        addr: SocketAddr,
        method: &str,
        path: &str,
        extra: &[(&str, &str)],
        body: &str,
    ) -> (u16, Vec<(String, String)>, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        let extra_lines: String = extra.iter().map(|(k, v)| format!("{k}: {v}\r\n")).collect();
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\n{extra_lines}Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        conn.write_all(req.as_bytes()).unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let headers = lines
            .filter_map(|l| l.split_once(": "))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        (status, headers, body.to_string())
    }

    fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
        headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn boot(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..config
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || {
            server.run().unwrap();
        });
        (addr, handle, join)
    }

    fn boot_drain(
        config: ServerConfig,
    ) -> (
        SocketAddr,
        ServerHandle,
        std::thread::JoinHandle<DrainReport>,
    ) {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..config
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().unwrap());
        (addr, handle, join)
    }

    fn example_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            preload: vec![PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../data/example.json"
            ))],
            ..ServerConfig::default()
        }
    }

    /// Extract an unsigned integer JSON field from a flat body.
    fn json_u64(body: &str, field: &str) -> u64 {
        let tag = format!("\"{field}\":");
        let at = body
            .find(&tag)
            .unwrap_or_else(|| panic!("no {field:?} in {body}"))
            + tag.len();
        body[at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    }

    /// Poll `GET /v1/jobs/{id}` until the job is terminal.
    fn poll_job(
        addr: SocketAddr,
        headers: &[(&str, &str)],
        id: u64,
    ) -> (u16, Vec<(String, String)>, String) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (s, h, b) = http_with(addr, "GET", &format!("/v1/jobs/{id}"), headers, "");
            assert_eq!(s, 200, "{b}");
            if ["done", "failed", "cancelled"]
                .iter()
                .any(|t| b.contains(&format!("\"state\":\"{t}\"")))
            {
                return (s, h, b);
            }
            assert!(Instant::now() < deadline, "job {id} never terminal: {b}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn healthz_and_metrics_respond() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(example_config());
        let (status, _, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("example"), "{body}");
        let (status, _, text) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(text.contains("qrel_http_requests_total"), "{text}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn solve_and_cache_round_trip() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(example_config());
        let body = r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact"}"#;
        let (s1, h1, b1) = http(addr, "POST", "/v1/solve", body);
        assert_eq!(s1, 200, "{b1}");
        assert_eq!(header(&h1, "X-Qrel-Cache"), Some("miss"));
        assert!(b1.contains("\"exact\":"), "{b1}");
        let (s2, h2, b2) = http(addr, "POST", "/v1/solve", body);
        assert_eq!(s2, 200);
        assert_eq!(header(&h2, "X-Qrel-Cache"), Some("hit"));
        assert_eq!(b1, b2, "cached body must be byte-identical");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn unknown_paths_and_methods() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(example_config());
        assert_eq!(http(addr, "GET", "/nope", "").0, 404);
        assert_eq!(http(addr, "GET", "/v1/solve", "").0, 405);
        assert_eq!(http(addr, "POST", "/healthz", "").0, 405);
        assert_eq!(http(addr, "POST", "/v1/solve", "not json").0, 400);
        handle.shutdown();
        join.join().unwrap();
    }

    /// A request guaranteed to occupy a worker for ~`timeout_ms`: a
    /// forced exact enumeration over 2^28 worlds cannot finish, so its
    /// deadline trips and the ladder answers with a partial (200).
    fn slow_solve_body(timeout_ms: u64, seed: u64) -> String {
        let names: Vec<String> = (0..28).map(|i| format!("\"e{i}\"")).collect();
        let tuples: Vec<String> = (0..28).map(|i| format!("[{i}]")).collect();
        let errors: Vec<String> = (0..28)
            .map(|i| format!("{{\"relation\":\"S\",\"tuple\":[{i}],\"mu\":\"1/2\"}}"))
            .collect();
        format!(
            "{{\"db\":{{\"database\":{{\"vocab\":{{\"symbols\":[{{\"name\":\"S\",\"arity\":1}}]}},\
             \"universe\":{{\"names\":[{}]}},\
             \"relations\":[{{\"arity\":1,\"tuples\":[{}]}}]}},\
             \"model\":\"full\",\"errors\":[{}]}},\
             \"query\":\"exists x. S(x)\",\"method\":\"exact\",\
             \"timeout_ms\":{timeout_ms},\"seed\":{seed}}}",
            names.join(","),
            tuples.join(","),
            errors.join(",")
        )
    }

    #[test]
    fn graceful_shutdown_drains_in_flight_requests() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        // One worker so the in-flight request is unambiguous.
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            ..example_config()
        });
        let slow =
            std::thread::spawn(move || http(addr, "POST", "/v1/solve", &slow_solve_body(400, 0)));
        std::thread::sleep(Duration::from_millis(100));
        handle.shutdown();
        // The in-flight request still completes with an answer.
        let (status, _, body) = slow.join().unwrap();
        assert_eq!(status, 200, "{body}");
        join.join().unwrap();
    }

    #[test]
    fn backpressure_rejects_with_429_when_saturated() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            queue_cap: 1,
            ..example_config()
        });
        // Six near-simultaneous slow solves against one worker and one
        // queue slot: at most two are admitted before the first solve's
        // ~800ms deadline trips, so several must be turned away with
        // 429 regardless of accept interleaving.
        let clients: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    http(addr, "POST", "/v1/solve", &slow_solve_body(800, i))
                })
            })
            .collect();
        let results: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let rejected = results.iter().filter(|(s, _, _)| *s == 429).count();
        let served = results.iter().filter(|(s, _, _)| *s == 200).count();
        assert!(
            rejected >= 1,
            "never saw a 429 under saturation: {results:?}"
        );
        assert!(served >= 1, "nothing was served: {results:?}");
        for (status, headers, _) in &results {
            if *status == 429 {
                // Retry-After is computed from queue depth and drain
                // rate, not hardcoded; the contract is the clamp range.
                let secs: u64 = header(headers, "Retry-After")
                    .expect("429 carries Retry-After")
                    .parse()
                    .expect("Retry-After is an integer");
                assert!((1..=30).contains(&secs), "Retry-After = {secs}");
            }
        }
        handle.shutdown();
        join.join().unwrap();
        // The rejection is visible in the metrics text.
        assert!(handle.metrics_text().contains("qrel_rejected_total"));
        assert!(handle.shared.exec.metrics.rejected_count() >= 1);
    }

    #[test]
    fn worker_panic_fault_becomes_tagged_500_and_worker_survives() {
        let plan = qrel_faults::FaultPlan::new(0xFA17).with_rule(
            qrel_faults::points::SERVE_WORKER_PANIC,
            1.0,
            0,
            2, // exactly the first two requests panic
        );
        let guard = plan.arm();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            ..example_config()
        });
        // Both injected panics come back as explicit 500s...
        assert_eq!(http(addr, "GET", "/healthz", "").0, 500);
        assert_eq!(http(addr, "GET", "/healthz", "").0, 500);
        // ...and the single worker is still alive to serve the third.
        let (status, _, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");
        drop(guard);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn persistent_rung_panics_open_the_circuit_and_healthz_degrades() {
        let plan = qrel_faults::FaultPlan::new(0xB12E).with_rule(
            &qrel_faults::points::rung_panic("exact"),
            1.0,
            0,
            0,
        );
        let _guard = plan.arm();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60),
            ..example_config()
        });
        // Retries are exhausted by the always-on panic fault, the exact
        // rung has no fallback under a forced method, so each request
        // fails; two of them trip the breaker.
        let body = r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact"}"#;
        for want_seed in 0..2u64 {
            let body = format!(
                r#"{{"dataset":"example","query":"exists x. Admin(x)","method":"exact","seed":{want_seed}}}"#
            );
            let (status, _, resp) = http(addr, "POST", "/v1/solve", &body);
            assert_eq!(status, 422, "{resp}");
            assert!(resp.contains("panicked"), "{resp}");
        }
        // Circuit open: refused up front with 503 + Retry-After.
        let (status, headers, resp) = http(addr, "POST", "/v1/solve", body);
        assert_eq!(status, 503, "{resp}");
        assert!(header(&headers, "Retry-After").is_some());
        assert!(resp.contains("circuit open"), "{resp}");
        // The health surface reflects it.
        let (_, _, health) = http(addr, "GET", "/healthz", "");
        assert!(health.contains("\"status\":\"degraded\""), "{health}");
        assert_eq!(handle.health(), "degraded");
        // Other methods are unaffected by the exact rung's circuit.
        let (status, _, resp) = http(
            addr,
            "POST",
            "/v1/solve",
            r#"{"dataset":"example","query":"exists x. Admin(x)","method":"mc"}"#,
        );
        assert_eq!(status, 200, "{resp}");
        let metrics = handle.metrics_text();
        assert!(
            metrics.contains("qrel_circuit_state{method=\"exact\"} 1"),
            "{metrics}"
        );
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn watchdog_hard_cancels_a_stuck_solve() {
        // A 900ms injected stall inside the exact rung wedges the solve
        // well past its 100ms deadline; the watchdog (50ms period) must
        // shoot it, and the request still gets an answer instead of
        // hanging until the stall ends... the stall itself is not
        // interruptible, but the budget observes the cancellation at
        // the next probe, so the response arrives right after.
        let plan = qrel_faults::FaultPlan::new(0x57A1).with_rule(
            &qrel_faults::points::rung_stall("exact"),
            1.0,
            900,
            1,
        );
        let _guard = plan.arm();
        let (addr, handle, join) = boot_drain(ServerConfig {
            workers: 1,
            watchdog_period: Duration::from_millis(50),
            ..example_config()
        });
        let started = Instant::now();
        let (status, _, body) = http(
            addr,
            "POST",
            "/v1/solve",
            r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact","timeout_ms":100}"#,
        );
        let elapsed = started.elapsed();
        // The answer is an explicit outcome (degraded 200 or tagged
        // 422), never a hang: the stall bounds the response time.
        assert!(status == 200 || status == 422, "{status}: {body}");
        assert!(elapsed < Duration::from_secs(5), "request took {elapsed:?}");
        assert!(handle.watchdog_cancels() >= 1, "watchdog never fired");
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.watchdog_cancels, handle.watchdog_cancels());
        // The cancel happened during serving, not during the drain.
        assert!(!report.forced, "{report:?}");
    }

    #[test]
    fn clean_drain_reports_unforced() {
        // Hold the fault session so a concurrently running
        // fault-armed test cannot inject into this server.
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot_drain(example_config());
        assert_eq!(http(addr, "GET", "/healthz", "").0, 200);
        handle.shutdown();
        let report = join.join().unwrap();
        assert!(!report.forced);
        assert_eq!(report.watchdog_cancels, 0);
    }

    #[test]
    fn self_heal_off_disables_breakers_and_watchdog() {
        let plan = qrel_faults::FaultPlan::new(0x0FF).with_rule(
            &qrel_faults::points::rung_panic("exact"),
            1.0,
            0,
            0,
        );
        let _guard = plan.arm();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            self_heal: false,
            breaker_threshold: 1,
            ..example_config()
        });
        // Every request fails (no retries), but the breaker never
        // opens: the "before" arm keeps failing loudly instead.
        let body = r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact"}"#;
        for _ in 0..3 {
            let (status, _, resp) = http(addr, "POST", "/v1/solve", body);
            assert_eq!(status, 422, "{resp}");
        }
        let (_, _, health) = http(addr, "GET", "/healthz", "");
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn job_round_trip_result_is_bit_identical_and_replayable() {
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(example_config());
        let body =
            r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact","seed":7}"#;
        let (s, _, accepted) = http(addr, "POST", "/v1/jobs", body);
        assert_eq!(s, 202, "{accepted}");
        let id = json_u64(&accepted, "job_id");
        assert!(accepted.contains("\"coalesced\":false"), "{accepted}");
        let (_, _, status) = poll_job(addr, &[], id);
        assert!(status.contains("\"state\":\"done\""), "{status}");
        assert!(status.contains("\"result\":{\"status\":200,"), "{status}");
        assert!(status.contains("\"error\":null"), "{status}");
        // The stored result replays bit-identically on every fetch...
        let (s1, h1, r1) = http(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
        let (s2, _, r2) = http(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
        assert_eq!((s1, s2), (200, 200), "{r1}");
        assert_eq!(r1, r2, "result fetches must be byte-identical");
        assert!(header(&h1, "X-Qrel-Cache").is_some());
        // ...and matches what the synchronous facade returns for the
        // same request (served from cache, as the job already solved).
        let (s3, h3, facade) = http(addr, "POST", "/v1/solve", body);
        assert_eq!(s3, 200);
        assert_eq!(header(&h3, "X-Qrel-Cache"), Some("hit"));
        assert_eq!(facade, r1, "facade body must equal the job result");
        // The job shows up in the tenant's list.
        let (s4, _, list) = http(addr, "GET", "/v1/jobs", "");
        assert_eq!(s4, 200);
        assert!(list.contains(&format!("\"job_id\":{id}")), "{list}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn job_cancel_before_start_marks_cancelled() {
        let _quiet = qrel_faults::quiesce();
        // One scheduler worker, several HTTP workers: occupy the solve
        // slot so a second job is queued and can be cancelled unstarted.
        let (addr, handle, join) = boot(ServerConfig {
            workers: 2,
            sched_workers: 1,
            ..example_config()
        });
        let occupier =
            std::thread::spawn(move || http(addr, "POST", "/v1/jobs", &slow_solve_body(600, 0)));
        std::thread::sleep(Duration::from_millis(100));
        let (s, _, accepted) = http(addr, "POST", "/v1/jobs", &slow_solve_body(600, 1));
        assert_eq!(s, 202, "{accepted}");
        assert!(accepted.contains("\"state\":\"queued\""), "{accepted}");
        let id = json_u64(&accepted, "job_id");
        let (s, _, cancelled) = http(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
        assert_eq!(s, 200, "{cancelled}");
        assert!(cancelled.contains("\"state\":\"cancelled\""), "{cancelled}");
        let (_, _, status) = poll_job(addr, &[], id);
        assert!(status.contains("\"state\":\"cancelled\""), "{status}");
        assert!(status.contains("\"code\":\"cancelled\""), "{status}");
        // Its result is refused with a conflict, not invented.
        let (s, _, result) = http(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
        assert_eq!(s, 409, "{result}");
        // Cancelling again reports the terminal state.
        let (s, _, again) = http(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
        assert_eq!(s, 409, "{again}");
        assert!(again.contains("already cancelled"), "{again}");
        // The occupying job was untouched.
        let (s, _, first) = occupier.join().unwrap();
        assert_eq!(s, 202, "{first}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn job_cancel_mid_solve_frees_the_worker() {
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 2,
            sched_workers: 1,
            ..example_config()
        });
        let (s, _, accepted) = http(addr, "POST", "/v1/jobs", &slow_solve_body(2_000, 2));
        assert_eq!(s, 202, "{accepted}");
        let id = json_u64(&accepted, "job_id");
        std::thread::sleep(Duration::from_millis(100));
        let started = Instant::now();
        let (s, _, cancelled) = http(addr, "DELETE", &format!("/v1/jobs/{id}"), "");
        assert_eq!(s, 200, "{cancelled}");
        let (_, _, status) = poll_job(addr, &[], id);
        assert!(status.contains("\"state\":\"cancelled\""), "{status}");
        // The cancel propagated into the running solve's budget: the
        // worker frees up well before the job's 2s deadline.
        let (s, _, quick) = http(
            addr,
            "POST",
            "/v1/solve",
            r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact"}"#,
        );
        assert_eq!(s, 200, "{quick}");
        assert!(
            started.elapsed() < Duration::from_millis(1_900),
            "cancelled solve pinned the worker for {:?}",
            started.elapsed()
        );
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn coalesced_duplicate_survives_cancelling_the_other_member() {
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(ServerConfig {
            workers: 3,
            sched_workers: 1,
            ..example_config()
        });
        // Occupy the single scheduler worker so the duplicates coalesce
        // while their shared group is still queued.
        let occupier =
            std::thread::spawn(move || http(addr, "POST", "/v1/jobs", &slow_solve_body(500, 8)));
        std::thread::sleep(Duration::from_millis(100));
        let body = slow_solve_body(400, 9);
        let (sa, _, a) = http(addr, "POST", "/v1/jobs", &body);
        let (sb, _, b) = http(addr, "POST", "/v1/jobs", &body);
        assert_eq!((sa, sb), (202, 202), "{a} / {b}");
        assert!(a.contains("\"coalesced\":false"), "{a}");
        assert!(b.contains("\"coalesced\":true"), "{b}");
        let (id_a, id_b) = (json_u64(&a, "job_id"), json_u64(&b, "job_id"));
        assert_ne!(id_a, id_b, "coalesced members keep distinct ids");
        // Cancelling one member must not take the other down with it.
        let (s, _, cancelled) = http(addr, "DELETE", &format!("/v1/jobs/{id_a}"), "");
        assert_eq!(s, 200, "{cancelled}");
        let (_, _, status_b) = poll_job(addr, &[], id_b);
        assert!(status_b.contains("\"state\":\"done\""), "{status_b}");
        let (s1, _, r1) = http(addr, "GET", &format!("/v1/jobs/{id_b}/result"), "");
        let (s2, _, r2) = http(addr, "GET", &format!("/v1/jobs/{id_b}/result"), "");
        assert_eq!((s1, s2), (200, 200), "{r1}");
        assert_eq!(r1, r2, "shared group result must replay identically");
        let (_, _, status_a) = poll_job(addr, &[], id_a);
        assert!(status_a.contains("\"state\":\"cancelled\""), "{status_a}");
        let _ = occupier.join().unwrap();
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn unknown_job_ids_get_envelope_404s() {
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(example_config());
        for path in [
            "/v1/jobs/999999",
            "/v1/jobs/999999/result",
            "/v1/jobs/bogus",
        ] {
            let (s, _, body) = http(addr, "GET", path, "");
            assert_eq!(s, 404, "{path}: {body}");
            let env = crate::protocol::ErrorEnvelope::from_body(body.as_bytes())
                .unwrap_or_else(|e| panic!("{path}: {e}: {body}"));
            assert_eq!(env.code, "not_found", "{path}");
            assert!(!env.retryable, "{path}");
        }
        let (s, _, body) = http(addr, "DELETE", "/v1/jobs/999999", "");
        assert_eq!(s, 404, "{body}");
        // PATCH on a job id is a method problem, not a missing job.
        assert_eq!(http(addr, "PATCH", "/v1/jobs/1", "").0, 405);
        handle.shutdown();
        join.join().unwrap();
    }

    /// A two-dataset store on disk for the store-backed server tests.
    fn build_store(dir: &std::path::Path) {
        let _ = std::fs::remove_dir_all(dir);
        let mut store = Store::init(dir).unwrap();
        let db = qrel_db::DatabaseBuilder::new()
            .universe_size(3)
            .relation("Admin", 1)
            .tuples("Admin", [vec![0u32]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(
            &qrel_db::Fact::new(0, vec![0]),
            qrel_arith::BigRational::from_ratio(1, 10),
        )
        .unwrap();
        let spec = UnreliableDatabaseSpec::from_model(&ud);
        store.ingest_spec("alpha", &spec).unwrap();
        // beta gets a different error probability so the two datasets
        // have distinct content hashes (the cache is content-addressed).
        ud.set_error(
            &qrel_db::Fact::new(0, vec![0]),
            qrel_arith::BigRational::from_ratio(1, 5),
        )
        .unwrap();
        let spec = UnreliableDatabaseSpec::from_model(&ud);
        store.ingest_spec("beta", &spec).unwrap();
    }

    #[test]
    fn store_mutations_update_health_and_invalidate_precisely() {
        let _quiet = qrel_faults::quiesce();
        let dir = std::env::temp_dir().join(format!("qrel-serve-store-{}", std::process::id()));
        build_store(&dir);
        let (addr, handle, join) = boot(ServerConfig {
            workers: 2,
            store: Some(dir.clone()),
            ..ServerConfig::default()
        });
        // `/healthz` reports the stored datasets with live fact counts.
        let (s, _, health) = http(addr, "GET", "/healthz", "");
        assert_eq!(s, 200);
        assert!(
            health.contains(r#"{"name":"alpha","facts":1,"stored":true}"#),
            "{health}"
        );
        // Warm the cache on both datasets.
        let alpha = r#"{"dataset":"alpha","query":"exists x. Admin(x)","method":"exact"}"#;
        let beta = r#"{"dataset":"beta","query":"exists x. Admin(x)","method":"exact"}"#;
        let (_, h, alpha_before) = http(addr, "POST", "/v1/solve", alpha);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("miss"));
        let (_, h, _) = http(addr, "POST", "/v1/solve", alpha);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("hit"));
        let (_, h, _) = http(addr, "POST", "/v1/solve", beta);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("miss"));
        let (_, h, _) = http(addr, "POST", "/v1/solve", beta);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("hit"));
        // Mutate alpha: a batched upsert lands a new uncertain fact.
        let (s, _, commit) = http(
            addr,
            "POST",
            "/v1/datasets/alpha/facts",
            r#"{"facts":[{"relation":"Admin","tuple":[1],"present":true,"mu":"1/4"}]}"#,
        );
        assert_eq!(s, 200, "{commit}");
        assert!(commit.contains("\"rows\":1"), "{commit}");
        assert!(commit.contains("\"live_facts\":2"), "{commit}");
        // The health surface reflects the mutation immediately.
        let (_, _, health) = http(addr, "GET", "/healthz", "");
        assert!(
            health.contains(r#"{"name":"alpha","facts":2,"stored":true}"#),
            "{health}"
        );
        // Exactly the mutated dataset's cache entries invalidate: alpha
        // misses (and answers differently)...
        let (_, h, alpha_after) = http(addr, "POST", "/v1/solve", alpha);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("miss"), "{alpha_after}");
        assert_ne!(alpha_before, alpha_after);
        // ...while beta's entry stays hot.
        let (_, h, _) = http(addr, "POST", "/v1/solve", beta);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("hit"));
        // Deleting the fact restores the original model — and, by the
        // XOR hash algebra, the original db-hash, so the pre-mutation
        // cache entry becomes reachable again: an immediate hit with
        // the original bytes.
        let (s, _, del) = http(
            addr,
            "DELETE",
            "/v1/datasets/alpha/facts",
            r#"{"facts":[{"relation":"Admin","tuple":[1]}]}"#,
        );
        assert_eq!(s, 200, "{del}");
        let (_, h, alpha_restored) = http(addr, "POST", "/v1/solve", alpha);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("hit"), "{alpha_restored}");
        assert_eq!(alpha_before, alpha_restored);
        // `GET /v1/datasets` lists both with their hashes, and the
        // store gauges render.
        let (s, _, list) = http(addr, "GET", "/v1/datasets", "");
        assert_eq!(s, 200);
        assert!(list.contains("\"name\":\"alpha\""), "{list}");
        assert!(list.contains("\"db_hash\":\""), "{list}");
        let metrics = handle.metrics_text();
        assert!(metrics.contains("qrel_store_segments"), "{metrics}");
        assert!(metrics.contains("qrel_store_live_facts"), "{metrics}");
        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_cache_survives_fact_mutations_result_memo_does_not() {
        let _quiet = qrel_faults::quiesce();
        let dir = std::env::temp_dir().join(format!("qrel-serve-plan-{}", std::process::id()));
        build_store(&dir);
        let (addr, handle, join) = boot(ServerConfig {
            workers: 2,
            store: Some(dir.clone()),
            ..ServerConfig::default()
        });
        // Cold solve under auto: the safe query routes to the plan rung
        // — freshly compiled ("miss"), answered exactly.
        let alpha = r#"{"dataset":"alpha","query":"exists x. Admin(x)","method":"auto"}"#;
        let beta = r#"{"dataset":"beta","query":"exists x. Admin(x)","method":"auto"}"#;
        let (s, h, alpha_before) = http(addr, "POST", "/v1/solve", alpha);
        assert_eq!(s, 200, "{alpha_before}");
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("miss"));
        assert_eq!(header(&h, "X-Qrel-Plan"), Some("miss"));
        assert!(
            alpha_before.contains("\"method\":\"plan\""),
            "{alpha_before}"
        );
        assert!(
            alpha_before.contains("\"confidence\":\"exact\""),
            "{alpha_before}"
        );
        // Repeat: served from the result memo; no solve, no plan lookup.
        let (_, h, b) = http(addr, "POST", "/v1/solve", alpha);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("hit"));
        assert_eq!(header(&h, "X-Qrel-Plan"), None);
        assert_eq!(alpha_before, b, "memo hit must be byte-identical");
        // beta shares the query text and schema, so its first solve is
        // already a *plan* hit even though its result memo misses.
        let (_, h, _) = http(addr, "POST", "/v1/solve", beta);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("miss"));
        assert_eq!(header(&h, "X-Qrel-Plan"), Some("hit"));
        // Mutate one fact in alpha. The store's incremental db-hash
        // moves alpha's memo keys; the plan is db-independent.
        let (s, _, commit) = http(
            addr,
            "POST",
            "/v1/datasets/alpha/facts",
            r#"{"facts":[{"relation":"Admin","tuple":[1],"present":true,"mu":"1/4"}]}"#,
        );
        assert_eq!(s, 200, "{commit}");
        // Result memo misses and recomputes; plan cache still hits.
        let (_, h, alpha_after) = http(addr, "POST", "/v1/solve", alpha);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("miss"), "{alpha_after}");
        assert_eq!(header(&h, "X-Qrel-Plan"), Some("hit"));
        assert_ne!(alpha_before, alpha_after, "mutation must change the answer");
        // The re-memoized answer replays the recompute bit-for-bit.
        let (_, h, b) = http(addr, "POST", "/v1/solve", alpha);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("hit"));
        assert_eq!(alpha_after, b);
        // Other datasets are untouched: beta's memo entry stays hot.
        let (_, h, _) = http(addr, "POST", "/v1/solve", beta);
        assert_eq!(header(&h, "X-Qrel-Cache"), Some("hit"));
        // An unsafe shape under auto: declined ("unsafe"), answered by
        // the enumeration ladder instead.
        let sj =
            r#"{"dataset":"alpha","query":"exists x y. (Admin(x) & Admin(y))","method":"auto"}"#;
        let (s, h, body) = http(addr, "POST", "/v1/solve", sj);
        assert_eq!(s, 200, "{body}");
        assert_eq!(header(&h, "X-Qrel-Plan"), Some("unsafe"));
        assert!(body.contains("\"method\":\"exact\""), "{body}");
        // The /metrics counters saw all of it: one fresh compile, plan
        // hits from the re-solves, one unsafe lookup.
        let metrics = handle.metrics_text();
        assert!(
            metrics.contains("qrel_plan_cache_misses_total 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("qrel_plan_cache_hits_total 2"),
            "{metrics}"
        );
        assert!(metrics.contains("qrel_plan_unsafe_total 1"), "{metrics}");
        assert!(
            metrics.contains("qrel_solve_total{method=\"plan\"} 3"),
            "{metrics}"
        );
        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_mutation_error_paths() {
        let _quiet = qrel_faults::quiesce();
        // Without a store, mutations are refused with a conflict.
        let (addr, handle, join) = boot(example_config());
        let (s, _, body) = http(
            addr,
            "POST",
            "/v1/datasets/example/facts",
            r#"{"facts":[]}"#,
        );
        assert_eq!(s, 409, "{body}");
        assert!(body.contains("--store"), "{body}");
        handle.shutdown();
        join.join().unwrap();
        // With a store: 404 for unknown datasets, 400 for bad batches,
        // 405 for wrong methods.
        let dir = std::env::temp_dir().join(format!("qrel-serve-store-err-{}", std::process::id()));
        build_store(&dir);
        let (addr, handle, join) = boot(ServerConfig {
            workers: 1,
            store: Some(dir.clone()),
            ..ServerConfig::default()
        });
        let good = r#"{"facts":[{"relation":"Admin","tuple":[1]}]}"#;
        assert_eq!(http(addr, "POST", "/v1/datasets/nope/facts", good).0, 404);
        for bad in [
            "not json",
            r#"{"facts":7}"#,
            r#"{"facts":[{"relation":"Zed","tuple":[0]}]}"#,
            r#"{"facts":[{"relation":"Admin","tuple":[0,1]}]}"#,
            r#"{"facts":[{"relation":"Admin","tuple":[99]}]}"#,
            r#"{"facts":[{"relation":"Admin","tuple":[0],"mu":"3/2"}]}"#,
            r#"{"facts":[{"relation":"Admin","tuple":[0],"mu":"nope"}]}"#,
            r#"{"facts":[{"relation":"Admin","tuple":[0],"surprise":1}]}"#,
        ] {
            let (s, _, body) = http(addr, "POST", "/v1/datasets/alpha/facts", bad);
            assert_eq!(s, 400, "accepted {bad}: {body}");
        }
        // DELETE items must not carry upsert fields.
        let (s, _, body) = http(
            addr,
            "DELETE",
            "/v1/datasets/alpha/facts",
            r#"{"facts":[{"relation":"Admin","tuple":[0],"mu":"1/2"}]}"#,
        );
        assert_eq!(s, 400, "{body}");
        assert_eq!(http(addr, "PATCH", "/v1/datasets/alpha/facts", good).0, 405);
        assert_eq!(http(addr, "DELETE", "/v1/datasets", "").0, 405);
        assert_eq!(http(addr, "GET", "/v1/datasets/alpha", "").0, 404);
        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jobs_are_tenant_scoped() {
        let _quiet = qrel_faults::quiesce();
        let (addr, handle, join) = boot(example_config());
        let alice = [("X-Qrel-Tenant", "alice")];
        let bob = [("X-Qrel-Tenant", "bob")];
        let body = r#"{"dataset":"example","query":"exists x. Admin(x)","method":"exact"}"#;
        let (s, _, accepted) = http_with(addr, "POST", "/v1/jobs", &alice, body);
        assert_eq!(s, 202, "{accepted}");
        let id = json_u64(&accepted, "job_id");
        poll_job(addr, &alice, id);
        // Another tenant can neither see nor cancel it.
        let (s, _, b) = http_with(addr, "GET", &format!("/v1/jobs/{id}"), &bob, "");
        assert_eq!(s, 404, "{b}");
        let (s, _, b) = http_with(addr, "DELETE", &format!("/v1/jobs/{id}"), &bob, "");
        assert_eq!(s, 404, "{b}");
        let (_, _, list) = http_with(addr, "GET", "/v1/jobs", &bob, "");
        assert!(list.contains("\"jobs\":[]"), "{list}");
        let (_, _, list) = http_with(addr, "GET", "/v1/jobs", &alice, "");
        assert!(list.contains(&format!("\"job_id\":{id}")), "{list}");
        handle.shutdown();
        join.join().unwrap();
    }
}
