//! `qrel-serve`: the query-reliability engine as a networked service.
//!
//! A std-only HTTP/1.1 server (no new dependencies — raw
//! [`std::net::TcpListener`], a fixed worker thread pool) exposing:
//!
//! - `POST /v1/jobs` — enqueue a reliability solve as an asynchronous
//!   job on the [`qrel_sched`] scheduler (bounded per-tenant queues,
//!   priorities, coalescing of cache-equivalent requests), answered
//!   with a `202` receipt carrying the job id;
//! - `GET /v1/jobs` / `GET /v1/jobs/{id}` / `GET /v1/jobs/{id}/result`
//!   / `DELETE /v1/jobs/{id}` — tenant-scoped list, status (with live
//!   progress), stored-result replay, and cancellation;
//! - `POST /v1/solve` — the synchronous facade over the same
//!   scheduler: enqueue and block until terminal. Solves run in
//!   [`qrel_runtime::Solver`] under a per-request
//!   [`qrel_budget::Budget`] deadline;
//! - `GET /healthz` — liveness plus the loaded dataset names;
//! - `GET /metrics` — Prometheus text: request/status counts, per-rung
//!   solve counts, latency histogram, cache hits/misses, queue depth,
//!   scheduler depth/occupancy/transitions, backpressure rejections.
//!
//! Every failure, on every endpoint, is one structured envelope:
//! `{"error":{"code","message","retryable","retry_after_ms"}}` (see
//! [`protocol::ErrorEnvelope`]), with `retry_after_ms` mirroring the
//! `Retry-After` header whenever one is sent.
//!
//! Operational properties, in the same spirit as the solver's
//! degradation ladder (overload degrades service *predictably* instead
//! of failing chaotically):
//!
//! - **Admission control**: a bounded queue between the acceptor and
//!   the workers; when it is full new connections get `429` +
//!   `Retry-After` instead of queueing without bound.
//! - **Result caching**: a sharded, byte-capped LRU keyed by the
//!   canonical database hash, canonical query, method, ε/δ bits, and
//!   seed. Only deterministic reports are cached (wall-clock or
//!   cancellation trips are machine-dependent), so a cache hit is
//!   *bit-identical* to the fresh solve it replaces.
//! - **Input hardening**: connection read deadline, maximum body size
//!   checked before the body is read, JSON nesting-depth limits.
//! - **Graceful shutdown**: SIGTERM/ctrl-c stops accepting, drains the
//!   admitted queue, and — only past the grace period — cancels
//!   in-flight budgets through the shared
//!   [`qrel_budget::CancelToken`].

pub mod cache;
pub mod health;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use cache::{canonical_f64_bits, CacheKey, ResultCache};
pub use health::{compute_retry_after, Admission, BreakerState, Breakers, HealthState};
pub use metrics::{canonical_endpoint, render_sched, Metrics};
pub use protocol::{
    error_body, error_code_for_status, job_accepted_body, job_list_body, job_status_body,
    solve_response_body, status_is_retryable, DbRef, ErrorEnvelope, SolveRequest,
};
pub use qrel_sched::Priority;
pub use server::{
    canonical_db_hash, install_shutdown_signals, DrainReport, ServeError, Server, ServerConfig,
    ServerHandle,
};
